"""Inter-catalog reference resolution: virtual data hyperlinks.

Figure 2 of the paper shows transformation and derivation records
distributed across sites, joined by ``vdp://`` hyperlinks; Figure 3
shows provenance chains spanning personal, group, and collaboration
catalogs.  Two pieces implement this:

* :class:`CatalogNetwork` — the set of reachable catalogs, keyed by
  authority name (our stand-in for DNS + OGSA service discovery);
* :class:`ReferenceResolver` — chases a :class:`~repro.core.naming.VDPRef`
  to the object it denotes, and provides *scope-chain* lookup
  (personal → group → collaboration) for names that are not pinned to
  an authority, mirroring how Fig 3's personal derivations depend on
  collaboration-level datasets without hard-coding their location.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.catalog.base import VirtualDataCatalog
from repro.core.dataset import Dataset
from repro.core.derivation import Derivation
from repro.core.naming import VDPRef
from repro.core.transformation import Transformation
from repro.errors import ReferenceError_


class CatalogNetwork:
    """All catalogs reachable from this process, keyed by authority."""

    def __init__(self):
        self._catalogs: dict[str, VirtualDataCatalog] = {}

    def register(self, catalog: VirtualDataCatalog) -> VirtualDataCatalog:
        """Make ``catalog`` reachable; it must have an authority name."""
        if not catalog.authority:
            raise ReferenceError_(
                "only catalogs with an authority can join a network"
            )
        self._catalogs[catalog.authority] = catalog
        return catalog

    def catalog(self, authority: str) -> VirtualDataCatalog:
        try:
            return self._catalogs[authority]
        except KeyError:
            raise ReferenceError_(
                f"no catalog registered for authority {authority!r}"
            ) from None

    def authorities(self) -> list[str]:
        return sorted(self._catalogs)

    def __iter__(self) -> Iterator[VirtualDataCatalog]:
        for authority in self.authorities():
            yield self._catalogs[authority]

    def __contains__(self, authority: str) -> bool:
        return authority in self._catalogs

    def __len__(self) -> int:
        return len(self._catalogs)


class ReferenceResolver:
    """Resolves references relative to a *home* catalog and a network.

    ``scope_chain`` is an ordered list of authorities searched for
    authority-less references that the home catalog cannot satisfy —
    typically ``[group, collaboration]`` for a personal catalog.
    """

    def __init__(
        self,
        home: VirtualDataCatalog,
        network: Optional[CatalogNetwork] = None,
        scope_chain: Optional[list[str]] = None,
    ):
        self.home = home
        # `network or ...` would discard an empty (falsy) network that
        # the caller intends to populate later; test identity instead.
        self.network = network if network is not None else CatalogNetwork()
        self.scope_chain = list(scope_chain or [])

    # -- catalog-level resolution ------------------------------------------

    def _catalogs_for(self, ref: VDPRef) -> Iterator[VirtualDataCatalog]:
        if not ref.is_local:
            if (
                self.home.authority
                and ref.authority == self.home.authority
            ):
                yield self.home
            else:
                yield self.network.catalog(ref.authority)
            return
        yield self.home
        for authority in self.scope_chain:
            if authority in self.network:
                yield self.network.catalog(authority)

    # -- typed lookups ----------------------------------------------------------

    def transformation(
        self, ref: VDPRef, version: Optional[str] = None
    ) -> tuple[Transformation, VirtualDataCatalog]:
        """Resolve a transformation reference; returns (object, catalog)."""
        for catalog in self._catalogs_for(ref):
            if catalog.has_transformation(ref.name, version):
                return catalog.get_transformation(ref.name, version), catalog
        raise ReferenceError_(
            f"cannot resolve transformation reference {ref.uri()!r}"
        )

    def derivation(self, ref: VDPRef) -> tuple[Derivation, VirtualDataCatalog]:
        """Resolve a derivation reference; returns (object, catalog)."""
        for catalog in self._catalogs_for(ref):
            if catalog.has_derivation(ref.name):
                return catalog.get_derivation(ref.name), catalog
        raise ReferenceError_(
            f"cannot resolve derivation reference {ref.uri()!r}"
        )

    def dataset(self, ref: VDPRef) -> tuple[Dataset, VirtualDataCatalog]:
        """Resolve a dataset reference; returns (object, catalog)."""
        for catalog in self._catalogs_for(ref):
            if catalog.has_dataset(ref.name):
                return catalog.get_dataset(ref.name), catalog
        raise ReferenceError_(f"cannot resolve dataset reference {ref.uri()!r}")

    # -- cross-catalog provenance hooks ------------------------------------------

    def producers_of(self, dataset_name: str) -> list[tuple[Derivation, str]]:
        """Find producing derivations of a dataset across the scope chain.

        Returns ``(derivation, authority)`` pairs; the home catalog is
        reported with its own authority (or ``"local"``).  This is the
        query that lets a lineage walk cross server boundaries (Fig 3).
        """
        out = []
        seen: set[tuple[str, str]] = set()
        for catalog in self._catalogs_for(VDPRef(name=dataset_name)):
            where = catalog.authority or "local"
            for dv in catalog.producers_of(dataset_name):
                if (where, dv.name) not in seen:
                    seen.add((where, dv.name))
                    out.append((dv, where))
        return out

    def consumers_of(self, dataset_name: str) -> list[tuple[Derivation, str]]:
        """Find consuming derivations of a dataset across the scope chain."""
        out = []
        seen: set[tuple[str, str]] = set()
        for catalog in self._catalogs_for(VDPRef(name=dataset_name)):
            where = catalog.authority or "local"
            for dv in catalog.consumers_of(dataset_name):
                if (where, dv.name) not in seen:
                    seen.add((where, dv.name))
                    out.append((dv, where))
        return out

    def expand_compound(
        self, tr: Transformation, version: Optional[str] = None
    ) -> dict[int, Transformation]:
        """Resolve every callee of a compound transformation.

        Returns ``{call_index: callee}``.  Raises
        :class:`~repro.errors.ReferenceError_` when a hyperlink dangles.
        """
        from repro.core.transformation import CompoundTransformation

        if not isinstance(tr, CompoundTransformation):
            return {}
        out = {}
        for i, call in enumerate(tr.calls):
            callee, _ = self.transformation(call.target)
            out[i] = callee
        return out
