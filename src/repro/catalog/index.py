"""Catalog fast paths: secondary indexes and a decoded-payload cache.

Real virtual-data campaigns push tens of thousands of derivations into
a catalog (*Virtual Data in CMS Production*, cs/0306009), and lineage
queries — "which derivations produce/consume this dataset", "which
replicas exist" — are the planner's hottest loop.  This module gives
every backend two fast paths:

* :class:`CatalogIndexes` — incremental producer/consumer/replica/
  invocation/by-transformation indexes, maintained through the
  catalog's mutation-subscriber hook (the same change-event stream the
  federated index of Fig 4 consumes), so lineage queries are O(1) dict
  lookups instead of full-store scans;
* :class:`PayloadCache` — a bounded LRU of decoded payload documents,
  invalidated by the same mutation events, so repeated lookups skip
  the backend's disk read / JSON decode entirely.

Both structures observe events only; the storage primitives remain the
single source of truth and :meth:`CatalogIndexes.rebuild` reconstructs
everything from a cold store (catalog open).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

from repro.core.invocation import observe_invocation_id
from repro.core.naming import VDPRef
from repro.core.replica import observe_replica_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.catalog.base import VirtualDataCatalog

#: Default number of decoded payloads kept hot.  A whole SDSS stripe
#: (~5000 derivations plus their datasets) fits with room to spare.
DEFAULT_CACHE_CAPACITY = 8192


class PayloadCache:
    """A bounded LRU of decoded ``(kind, key) -> payload`` documents.

    The cache owns its payloads: callers must copy before mutating
    (the catalog deep-copies on the way out, preserving each backend's
    isolation contract).  ``hits``/``misses`` are plain counters read
    by the benchmarks and mirrored into the metrics registry by the
    catalog.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple[str, str], dict] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, kind: str, key: str) -> Optional[dict]:
        entry = self._entries.get((kind, key))
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end((kind, key))
        self.hits += 1
        return entry

    def put(self, kind: str, key: str, payload: dict) -> None:
        entries = self._entries
        entries[(kind, key)] = payload
        entries.move_to_end((kind, key))
        while len(entries) > self.capacity:
            entries.popitem(last=False)

    def invalidate(self, kind: str, key: str) -> None:
        self._entries.pop((kind, key), None)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "capacity": self.capacity,
        }


def _derivation_edges(payload: dict) -> tuple[set[str], set[str], str]:
    """(inputs, outputs, transformation name) straight off a payload."""
    inputs: set[str] = set()
    outputs: set[str] = set()
    for actual in payload.get("actuals", {}).values():
        if not isinstance(actual, dict):
            continue
        direction = actual.get("direction", "input")
        if direction in ("input", "inout"):
            inputs.add(actual["dataset"])
        if direction in ("output", "inout"):
            outputs.add(actual["dataset"])
    tr_name = VDPRef.parse(
        payload["transformation"], default_kind="transformation"
    ).name
    return inputs, outputs, tr_name


class CatalogIndexes:
    """Secondary indexes kept current by catalog mutation events.

    The catalog registers :meth:`on_event` as its first mutation
    subscriber, so by the time any external listener (federation, a
    test) observes a ``put``/``delete`` the indexes already reflect it.
    Deletions are unindexed from per-key *shadow* records captured at
    put time — the store no longer holds the payload when a delete
    event fires, so the index must remember what it indexed.
    """

    def __init__(self, catalog: "VirtualDataCatalog"):
        self._catalog = catalog
        #: dataset -> derivation names that output it.
        self.produced_by: dict[str, set[str]] = {}
        #: dataset -> derivation names that read it.
        self.consumed_by: dict[str, set[str]] = {}
        #: dataset -> replica ids.
        self.replicas_of: dict[str, set[str]] = {}
        #: derivation -> invocation ids.
        self.invocations_of: dict[str, set[str]] = {}
        #: transformation name -> registered version strings.
        self.tr_versions: dict[str, set[str]] = {}
        #: transformation name -> derivation names calling it.
        self.by_transformation: dict[str, set[str]] = {}
        # Shadows for event-driven unindexing.
        self._derivation_shadow: dict[str, tuple[set[str], set[str], str]] = {}
        self._replica_shadow: dict[str, str] = {}
        self._invocation_shadow: dict[str, str] = {}
        catalog.subscribe(self.on_event)

    # -- event plumbing ---------------------------------------------------

    def on_event(self, event: str, kind: str, key: str) -> None:
        if kind == "derivation":
            if event == "put":
                self._index_derivation(key)
            else:
                self._unindex_derivation(key)
        elif kind == "replica":
            if event == "put":
                self._index_replica(key)
            else:
                self._unindex_replica(key)
        elif kind == "invocation":
            if event == "put":
                self._index_invocation(key)
            else:
                self._unindex_invocation(key)
        elif kind == "transformation":
            name, _, version = key.rpartition("@")
            if event == "put":
                self.tr_versions.setdefault(name, set()).add(version)
            else:
                self.tr_versions.get(name, set()).discard(version)

    # -- derivations ------------------------------------------------------

    def _index_derivation(self, key: str) -> None:
        payload = self._catalog._cached_payload("derivation", key)
        if payload is None:  # racing delete; nothing to index
            return
        if key in self._derivation_shadow:
            self._unindex_derivation(key)
        inputs, outputs, tr_name = _derivation_edges(payload)
        for dataset in outputs:
            self.produced_by.setdefault(dataset, set()).add(key)
        for dataset in inputs:
            self.consumed_by.setdefault(dataset, set()).add(key)
        self.by_transformation.setdefault(tr_name, set()).add(key)
        self._derivation_shadow[key] = (inputs, outputs, tr_name)

    def _unindex_derivation(self, key: str) -> None:
        shadow = self._derivation_shadow.pop(key, None)
        if shadow is None:
            return
        inputs, outputs, tr_name = shadow
        for dataset in outputs:
            self.produced_by.get(dataset, set()).discard(key)
        for dataset in inputs:
            self.consumed_by.get(dataset, set()).discard(key)
        self.by_transformation.get(tr_name, set()).discard(key)

    # -- replicas ---------------------------------------------------------

    def _index_replica(self, key: str) -> None:
        payload = self._catalog._cached_payload("replica", key)
        if payload is None:
            return
        dataset = payload["dataset_name"]
        old = self._replica_shadow.get(key)
        if old is not None and old != dataset:
            self.replicas_of.get(old, set()).discard(key)
        self.replicas_of.setdefault(dataset, set()).add(key)
        self._replica_shadow[key] = dataset

    def _unindex_replica(self, key: str) -> None:
        dataset = self._replica_shadow.pop(key, None)
        if dataset is not None:
            self.replicas_of.get(dataset, set()).discard(key)

    # -- invocations ------------------------------------------------------

    def _index_invocation(self, key: str) -> None:
        payload = self._catalog._cached_payload("invocation", key)
        if payload is None:
            return
        derivation = payload["derivation_name"]
        old = self._invocation_shadow.get(key)
        if old is not None and old != derivation:
            self.invocations_of.get(old, set()).discard(key)
        self.invocations_of.setdefault(derivation, set()).add(key)
        self._invocation_shadow[key] = derivation

    def _unindex_invocation(self, key: str) -> None:
        derivation = self._invocation_shadow.pop(key, None)
        if derivation is not None:
            self.invocations_of.get(derivation, set()).discard(key)

    # -- cold start -------------------------------------------------------

    def clear(self) -> None:
        self.produced_by.clear()
        self.consumed_by.clear()
        self.replicas_of.clear()
        self.invocations_of.clear()
        self.tr_versions.clear()
        self.by_transformation.clear()
        self._derivation_shadow.clear()
        self._replica_shadow.clear()
        self._invocation_shadow.clear()

    def rebuild(self) -> None:
        """Reconstruct every index by scanning storage (catalog open).

        Also advances the process-wide replica/invocation ID allocators
        past persisted IDs and registers transformation versions, the
        side effects the old inline rebuild performed.
        """
        catalog = self._catalog
        self.clear()
        for key in catalog._store_keys("derivation"):
            self._index_derivation(key)
        for key in catalog._store_keys("replica"):
            self._index_replica(key)
            observe_replica_id(key)
        for key in catalog._store_keys("invocation"):
            self._index_invocation(key)
            observe_invocation_id(key)
        for key in catalog._store_keys("transformation"):
            name, _, version = key.rpartition("@")
            self.tr_versions.setdefault(name, set()).add(version)
            catalog.versions.register(name, version)
