"""Federated indexes over multiple virtual data catalogs (Fig 4).

"A variety of federated indexes integrate information about selected
objects from multiple such catalogs.  Presumably such federating
indexes would be differentiated according to their scope (user
interest, all community data, community approved data, etc.), accuracy
(depth of index, update frequency), cost, access control, and so
forth." (§4.1)

:class:`FederatedIndex` implements exactly those axes:

* **scope** — which catalogs are attached, plus an optional per-entry
  filter (e.g. "community approved data" via a quality attribute);
* **depth** — ``"shallow"`` indexes names and types only; ``"deep"``
  also indexes attribute snapshots, enabling attribute queries at the
  index without touching member catalogs;
* **freshness** — ``"live"`` subscribes to catalog change events;
  ``"periodic"`` indexes go stale until :meth:`refresh` is called (the
  staleness/latency trade-off is measured by the FIG4 benchmark).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.catalog.base import VirtualDataCatalog
from repro.core.naming import VDPRef
from repro.core.types import DatasetType, TypeRegistry, default_registry
from repro.errors import FederationError


@dataclass(frozen=True)
class IndexEntry:
    """One indexed object: enough metadata to answer discovery queries
    and a :class:`VDPRef` to fetch the full record from its catalog."""

    kind: str
    key: str
    authority: str
    name: str
    dataset_type: Optional[DatasetType] = None
    attributes: tuple[tuple[str, Any], ...] = ()

    def ref(self) -> VDPRef:
        ref_kind = self.kind if self.kind in (
            "dataset", "replica", "transformation", "derivation", "invocation"
        ) else None
        return VDPRef(name=self.name, authority=self.authority, kind=ref_kind)

    def attribute(self, key: str, default: Any = None) -> Any:
        for k, v in self.attributes:
            if k == key:
                return v
        return default


#: Filter predicate deciding whether an entry belongs in an index.
EntryFilter = Callable[[IndexEntry], bool]


class FederatedIndex:
    """An index integrating object metadata from multiple catalogs."""

    def __init__(
        self,
        name: str,
        depth: str = "shallow",
        mode: str = "live",
        kinds: tuple[str, ...] = ("dataset", "transformation", "derivation"),
        entry_filter: Optional[EntryFilter] = None,
        registry: Optional[TypeRegistry] = None,
    ):
        if depth not in ("shallow", "deep"):
            raise FederationError(f"invalid index depth {depth!r}")
        if mode not in ("live", "periodic"):
            raise FederationError(f"invalid index mode {mode!r}")
        self.name = name
        self.depth = depth
        self.mode = mode
        self.kinds = kinds
        self.entry_filter = entry_filter
        self.types = registry or default_registry()
        self._members: list[VirtualDataCatalog] = []
        # (kind, authority, key) -> IndexEntry
        self._entries: dict[tuple[str, str, str], IndexEntry] = {}
        #: Count of member-catalog mutations not yet reflected (periodic
        #: mode only); a staleness measure for the FIG4 benchmark.
        self.pending_updates = 0

    # -- membership ----------------------------------------------------------

    def attach(self, catalog: VirtualDataCatalog) -> None:
        """Add a member catalog and index its current contents."""
        if not catalog.authority:
            raise FederationError(
                "only catalogs with an authority can be federated"
            )
        if catalog in self._members:
            return
        self._members.append(catalog)
        catalog.subscribe(self._make_listener(catalog))
        self._index_catalog(catalog)

    def _make_listener(self, catalog: VirtualDataCatalog):
        def listener(event: str, kind: str, key: str) -> None:
            if kind not in self.kinds:
                return
            if self.mode == "periodic":
                self.pending_updates += 1
                return
            if event == "delete":
                self._entries.pop((kind, catalog.authority, key), None)
            else:
                self._index_object(catalog, kind, key)

        return listener

    def members(self) -> list[str]:
        return [c.authority for c in self._members]

    # -- maintenance ------------------------------------------------------------

    def refresh(self) -> int:
        """Rebuild the index by scanning all members; returns entry count.

        For ``periodic`` indexes this is the explicit update step; for
        ``live`` indexes it repairs any divergence.
        """
        self._entries.clear()
        for catalog in self._members:
            self._index_catalog(catalog)
        self.pending_updates = 0
        return len(self._entries)

    def _index_catalog(self, catalog: VirtualDataCatalog) -> None:
        if "dataset" in self.kinds:
            for key in catalog.dataset_names():
                self._index_object(catalog, "dataset", key)
        if "transformation" in self.kinds:
            for key in catalog._store_keys("transformation"):
                self._index_object(catalog, "transformation", key)
        if "derivation" in self.kinds:
            for key in catalog.derivation_names():
                self._index_object(catalog, "derivation", key)

    def _index_object(
        self, catalog: VirtualDataCatalog, kind: str, key: str
    ) -> None:
        entry = self._build_entry(catalog, kind, key)
        if entry is None:
            return
        if self.entry_filter is not None and not self.entry_filter(entry):
            self._entries.pop((kind, catalog.authority, key), None)
            return
        self._entries[(kind, catalog.authority, key)] = entry

    def _build_entry(
        self, catalog: VirtualDataCatalog, kind: str, key: str
    ) -> Optional[IndexEntry]:
        authority = catalog.authority
        if kind == "dataset":
            if not catalog.has_dataset(key):
                return None
            ds = catalog.get_dataset(key)
            attrs = (
                tuple(sorted(ds.attributes.as_dict().items()))
                if self.depth == "deep"
                else ()
            )
            return IndexEntry(
                kind=kind,
                key=key,
                authority=authority,
                name=ds.name,
                dataset_type=ds.dataset_type,
                attributes=attrs,
            )
        if kind == "transformation":
            payload = catalog._store_get("transformation", key)
            if payload is None:
                return None
            attrs = (
                tuple(sorted(payload.get("attributes", {}).items()))
                if self.depth == "deep"
                else ()
            )
            return IndexEntry(
                kind=kind,
                key=key,
                authority=authority,
                name=payload["name"],
                attributes=attrs,
            )
        if kind == "derivation":
            if not catalog.has_derivation(key):
                return None
            dv = catalog.get_derivation(key)
            attrs = (
                tuple(sorted(dv.attributes.as_dict().items()))
                if self.depth == "deep"
                else ()
            )
            return IndexEntry(
                kind=kind,
                key=key,
                authority=authority,
                name=dv.name,
                attributes=attrs,
            )
        return None

    # -- queries ---------------------------------------------------------------

    def find(
        self,
        kind: str,
        name_glob: Optional[str] = None,
        conforms_to: Optional[DatasetType] = None,
        attributes: Optional[dict[str, Any]] = None,
    ) -> list[IndexEntry]:
        """Discovery over the index without touching member catalogs.

        Attribute queries require a ``deep`` index; asking them of a
        shallow index raises :class:`~repro.errors.FederationError`
        (the shallow index genuinely does not have the data — the
        cost/accuracy trade-off of §4.1).
        """
        if attributes and self.depth != "deep":
            raise FederationError(
                f"index {self.name!r} is shallow; attribute queries need "
                f"a deep index"
            )
        out = []
        for (entry_kind, _, _), entry in sorted(self._entries.items()):
            if entry_kind != kind:
                continue
            if name_glob and not fnmatch.fnmatch(entry.name, name_glob):
                continue
            if conforms_to is not None:
                if entry.dataset_type is None:
                    continue
                if not self.types.conforms(entry.dataset_type, conforms_to):
                    continue
            if attributes and not all(
                entry.attribute(k) == v for k, v in attributes.items()
            ):
                continue
            out.append(entry)
        return out

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<FederatedIndex {self.name!r} depth={self.depth} "
            f"mode={self.mode} entries={len(self._entries)} "
            f"members={self.members()}>"
        )


def scan_catalogs(
    catalogs: list[VirtualDataCatalog],
    kind: str,
    name_glob: Optional[str] = None,
    conforms_to: Optional[DatasetType] = None,
    attributes: Optional[dict[str, Any]] = None,
) -> list[tuple[str, str]]:
    """The *unindexed* baseline: scan every catalog directly.

    Returns ``(authority, key)`` pairs.  The FIG4 benchmark compares
    this against :meth:`FederatedIndex.find` as catalog count and
    catalog size grow.
    """
    out = []
    for catalog in catalogs:
        authority = catalog.authority or "local"
        if kind == "dataset":
            for ds in catalog.find_datasets(
                name_glob=name_glob,
                conforms_to=conforms_to,
                attributes=attributes,
            ):
                out.append((authority, ds.name))
        elif kind == "transformation":
            for tr in catalog.find_transformations(
                name_glob=name_glob, attributes=attributes
            ):
                out.append((authority, tr.name))
        elif kind == "derivation":
            for dv in catalog.find_derivations(name_glob=name_glob):
                out.append((authority, dv.name))
    return out
