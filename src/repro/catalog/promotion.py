"""Promotion: publishing virtual data definitions between catalogs.

"We envision that in an effective collaborative process, data and
knowledge definitions will propagate across, up, and around the web of
each virtual organization's knowledge servers as information is
created, reprocessed, annotated, validated, and approved for broader
use, trust, and distribution." (§4.1)

:func:`promote` copies one dataset's definition — and, transitively,
the derivations, transformations and dataset records needed to make it
*reproducible* at the destination — from a source catalog (resolved
through a :class:`~repro.catalog.resolver.ReferenceResolver`, so
dependencies may already live across several servers) into a
destination catalog.  Invocation history and replica records stay
behind by default: they describe *where the work happened*, not the
recipe, and the paper's promotion story is about recipes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.catalog.base import VirtualDataCatalog
from repro.catalog.resolver import ReferenceResolver
from repro.core.naming import VDPRef
from repro.errors import NotFoundError


@dataclass
class PromotionReport:
    """What one promotion copied (names per object kind)."""

    datasets: list[str] = field(default_factory=list)
    derivations: list[str] = field(default_factory=list)
    transformations: list[str] = field(default_factory=list)
    #: Objects skipped because the destination already had them.
    skipped: list[str] = field(default_factory=list)

    def total(self) -> int:
        return (
            len(self.datasets)
            + len(self.derivations)
            + len(self.transformations)
        )


def promote(
    dataset_name: str,
    resolver: ReferenceResolver,
    destination: VirtualDataCatalog,
    include_provenance: bool = True,
    signer=None,
    authority: Optional[str] = None,
) -> PromotionReport:
    """Publish ``dataset_name``'s definition into ``destination``.

    * ``include_provenance=True`` walks producing derivations
      recursively (the full recipe); ``False`` copies only the dataset
      record itself.
    * When ``signer`` and ``authority`` are given, every promoted
      entry is signed on the way in — the "approved for broader use"
      step of §4.1.

    Raises :class:`~repro.errors.NotFoundError` when the dataset is
    unknown everywhere in the resolver's scope.
    """
    report = PromotionReport()
    _promote_dataset(
        dataset_name,
        resolver,
        destination,
        include_provenance,
        signer,
        authority,
        report,
        seen=set(),
    )
    return report


def _sign(obj, signer, authority) -> None:
    if signer is not None and authority is not None:
        signer.sign_entry(obj, authority)


def _promote_dataset(
    name: str,
    resolver: ReferenceResolver,
    destination: VirtualDataCatalog,
    include_provenance: bool,
    signer,
    authority,
    report: PromotionReport,
    seen: set[str],
) -> None:
    if name in seen:
        return
    seen.add(name)
    try:
        dataset, _ = resolver.dataset(VDPRef(name, kind="dataset"))
    except Exception:
        raise NotFoundError(
            f"dataset {name!r} not resolvable for promotion"
        ) from None
    if destination.has_dataset(name):
        report.skipped.append(f"dataset/{name}")
    else:
        _sign(dataset, signer, authority)
        destination.add_dataset(dataset)
        report.datasets.append(name)
    if not include_provenance:
        return
    for dv, _ in resolver.producers_of(name):
        if destination.has_derivation(dv.name):
            report.skipped.append(f"derivation/{dv.name}")
        else:
            _promote_transformation(
                dv.transformation, resolver, destination, signer, authority,
                report,
            )
            _sign(dv, signer, authority)
            # Localize: once promoted, the reference resolves at the
            # destination rather than pointing back across the grid.
            dv.transformation = dv.transformation.localized()
            # auto_declare=False: input/output dataset records are
            # promoted explicitly below with their real definitions,
            # not synthesized placeholders.
            destination.add_derivation(dv, validate=False, auto_declare=False)
            report.derivations.append(dv.name)
        for input_name in dv.inputs():
            _promote_dataset(
                input_name,
                resolver,
                destination,
                include_provenance,
                signer,
                authority,
                report,
                seen,
            )


def _promote_transformation(
    ref: VDPRef,
    resolver: ReferenceResolver,
    destination: VirtualDataCatalog,
    signer,
    authority,
    report: PromotionReport,
) -> None:
    try:
        tr, _ = resolver.transformation(ref)
    except Exception:
        return  # unresolvable callee: promote the derivation anyway
    if destination.has_transformation(tr.name, tr.version):
        report.skipped.append(f"transformation/{tr.qualified_name}")
        return
    _sign(tr, signer, authority)
    destination.add_transformation(tr)
    report.transformations.append(tr.qualified_name)
    # Compound callees must come along or the promoted definition
    # would dangle at the destination.
    from repro.core.transformation import CompoundTransformation

    if isinstance(tr, CompoundTransformation):
        for call in tr.calls:
            _promote_transformation(
                call.target, resolver, destination, signer, authority, report
            )
