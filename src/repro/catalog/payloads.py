"""Fast structural copies for catalog payload documents.

Every payload a catalog stores is a JSON document by construction —
the persistent backends round-trip them through ``json.dumps`` — so
isolation copies never need :func:`copy.deepcopy`'s cycle detection,
memo table, or ``__deepcopy__`` dispatch.  :func:`json_copy` walks the
dict/list/scalar structure directly, which profiles 4-6x faster and
dominates both bulk graph registration and cold planning at 10^5-10^6
catalog objects.
"""

from __future__ import annotations

from typing import Any

#: Immutable leaf types a JSON payload may contain.  Tuples appear only
#: transiently (in-memory payloads built from dataclasses); they are
#: copied as lists, matching what a JSON round trip would produce.
_ATOMIC = (str, int, float, bool, type(None))


def json_copy(document: Any) -> Any:
    """An owned structural copy of a JSON-shaped document.

    Handles dicts, lists/tuples and scalar leaves; anything else falls
    back to :func:`copy.deepcopy` so a payload that smuggles in an
    unexpected object is still copied correctly (just not quickly).
    """
    if isinstance(document, _ATOMIC):
        return document
    if isinstance(document, dict):
        return {key: json_copy(value) for key, value in document.items()}
    if isinstance(document, (list, tuple)):
        return [json_copy(item) for item in document]
    import copy

    return copy.deepcopy(document)
