"""Fine-grained (row-level) provenance for relational datasets.

§8 future work: "A model for tracking the provenance of datasets that
reside in relational or object-oriented databases at a fine level of
granularity."  This module implements that model on top of
:class:`~repro.core.descriptors.SQLRowsDescriptor`: because a
relational dataset's identity includes the primary keys it addresses,
lineage can be computed per *row*, not just per dataset.

How rows map through a transformation is declared on the
transformation itself via the ``row.mapping`` attribute:

* ``"identity"`` — output row k derives from input row k (filters,
  per-row enrichments);
* ``"aggregate"`` — every output row derives from *all* input rows
  (joins, group-bys, statistical summaries).  This is the conservative
  default: claiming too much lineage is safe, too little is not.

:func:`row_lineage` walks producing derivations upward, narrowing or
widening the key set per the mapping, and returns which keys of which
upstream relational datasets contributed to the queried rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.catalog.base import VirtualDataCatalog
from repro.core.descriptors import SQLRowsDescriptor

#: Recognized row-mapping declarations.
ROW_MAPPINGS = ("identity", "aggregate")


@dataclass
class RowLineage:
    """Row-level provenance of a set of rows in one dataset.

    ``contributions`` maps upstream dataset names to the key sets that
    contributed; ``via`` records the derivation path walked; datasets
    without relational descriptors appear in ``opaque`` — they
    contributed as wholes (file-grain provenance takes over there).
    """

    dataset: str
    keys: frozenset[str]
    contributions: dict[str, set[str]] = field(default_factory=dict)
    via: list[str] = field(default_factory=list)
    opaque: set[str] = field(default_factory=set)

    def contributing_keys(self, dataset: str) -> set[str]:
        return set(self.contributions.get(dataset, ()))


def _descriptor_of(
    catalog: VirtualDataCatalog, dataset: str
) -> Optional[SQLRowsDescriptor]:
    if not catalog.has_dataset(dataset):
        return None
    descriptor = catalog.get_dataset(dataset).descriptor
    return descriptor if isinstance(descriptor, SQLRowsDescriptor) else None


def _mapping_of(catalog: VirtualDataCatalog, tr_name: str) -> str:
    if catalog.has_transformation(tr_name):
        declared = catalog.get_transformation(tr_name).attributes.get(
            "row.mapping"
        )
        if declared in ROW_MAPPINGS:
            return declared
    return "aggregate"


def row_lineage(
    catalog: VirtualDataCatalog,
    dataset: str,
    keys: Optional[Iterable[str]] = None,
    max_depth: int = 64,
) -> RowLineage:
    """Trace which upstream rows contributed to ``keys`` of ``dataset``.

    ``keys=None`` means "all rows the dataset's descriptor addresses".
    Traversal stops at datasets without relational descriptors (they
    are reported opaque) and at source datasets.
    """
    own = _descriptor_of(catalog, dataset)
    if keys is None:
        keys = own.keys if own is not None else ()
    result = RowLineage(dataset=dataset, keys=frozenset(keys))
    _walk(catalog, dataset, set(result.keys), result, set(), max_depth)
    return result


def _walk(
    catalog: VirtualDataCatalog,
    dataset: str,
    keys: set[str],
    result: RowLineage,
    seen: set[str],
    depth: int,
) -> None:
    if depth <= 0 or dataset in seen:
        return
    seen = seen | {dataset}
    for dv in catalog.producers_of(dataset):
        result.via.append(dv.name)
        mapping = _mapping_of(catalog, dv.transformation.name)
        for input_name in dv.inputs():
            descriptor = _descriptor_of(catalog, input_name)
            if descriptor is None:
                result.opaque.add(input_name)
                continue
            input_keys = set(descriptor.keys)
            if mapping == "identity":
                contributed = keys & input_keys if input_keys else set(keys)
            else:  # aggregate: all addressed input rows contribute
                contributed = input_keys or set(keys)
            if not contributed:
                continue
            bucket = result.contributions.setdefault(input_name, set())
            new_keys = contributed - bucket
            bucket |= contributed
            if new_keys:
                _walk(
                    catalog, input_name, new_keys, result, seen, depth - 1
                )


def rows_affected_by(
    catalog: VirtualDataCatalog,
    dataset: str,
    bad_keys: Iterable[str],
    max_depth: int = 64,
) -> dict[str, set[str]]:
    """The forward question: which downstream rows are tainted when
    ``bad_keys`` of ``dataset`` are found to be wrong?

    Returns ``{downstream_dataset: tainted_keys}``; an empty key set
    means the whole dataset is tainted (it crossed an aggregate or an
    opaque container, so no row-level claim can be made).
    """
    tainted: dict[str, set[str]] = {}
    frontier: list[tuple[str, set[str], int]] = [
        (dataset, set(bad_keys), max_depth)
    ]
    visited: set[str] = set()
    while frontier:
        current, keys, depth = frontier.pop()
        if depth <= 0 or current in visited:
            continue
        visited.add(current)
        for dv in catalog.consumers_of(current):
            mapping = _mapping_of(catalog, dv.transformation.name)
            for output_name in dv.outputs():
                descriptor = _descriptor_of(catalog, output_name)
                if mapping == "identity" and descriptor is not None:
                    output_keys = set(descriptor.keys)
                    hit = keys & output_keys if output_keys else set(keys)
                    if not hit:
                        continue  # the bad rows were filtered out here
                    if output_name in tainted and not tainted[output_name]:
                        pass  # already tainted wholesale; keep that
                    else:
                        tainted.setdefault(output_name, set()).update(hit)
                    frontier.append((output_name, hit, depth - 1))
                else:
                    # Aggregate or opaque: no row-level claim survives.
                    tainted[output_name] = set()
                    frontier.append((output_name, set(), depth - 1))
    return tainted
