"""Equivalence and similarity between data products (§8 future work).

"Two datasets created by the same derivation at different points in
time may not be bitwise identical, but may be equivalent in their
behavior and semantics for a certain class of transformations."

Three graded notions are implemented:

* **bitwise** — replicas with equal content digests;
* **recipe** — datasets produced by the *same derivation record*
  (same transformation + same actuals), the strongest virtual-data
  equivalence that survives re-execution;
* **semantic** — datasets produced by derivations whose
  transformations are version-equivalent under a
  :class:`~repro.core.versioning.VersionRegistry` compatibility
  assertion and whose non-dataset actuals agree.

The planner consults :meth:`EquivalenceChecker.substitutable` when
deciding whether existing derived data can satisfy a request —
"determine whether a requested computation has been performed
previously, and whether it is cheaper to rerun it or to retrieve
previously generated data" (§1).
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.base import VirtualDataCatalog
from repro.core.derivation import DatasetArg, Derivation

#: Equivalence grades, strongest first.
GRADES = ("bitwise", "recipe", "semantic")


class EquivalenceChecker:
    """Answers dataset-equivalence queries against one catalog."""

    def __init__(self, catalog: VirtualDataCatalog):
        self._catalog = catalog

    # -- grades ------------------------------------------------------------

    def bitwise_equal(self, dataset_a: str, dataset_b: str) -> bool:
        """True when both datasets have replicas with equal digests.

        Conservative: returns False when digests are missing.
        """
        digests_a = {
            r.digest for r in self._catalog.replicas_of(dataset_a) if r.digest
        }
        digests_b = {
            r.digest for r in self._catalog.replicas_of(dataset_b) if r.digest
        }
        return bool(digests_a and digests_a & digests_b)

    def recipe_equal(self, dataset_a: str, dataset_b: str) -> bool:
        """True when both are outputs of derivations with identical
        recipes: same transformation name, same string actuals, and
        recursively recipe-equal dataset inputs."""
        if dataset_a == dataset_b:
            return True
        return self._recipes_match(dataset_a, dataset_b, semantic=False, seen=set())

    def semantic_equal(self, dataset_a: str, dataset_b: str) -> bool:
        """Like :meth:`recipe_equal` but transformations may differ in
        version when a compatibility assertion covers the pair."""
        if dataset_a == dataset_b:
            return True
        return self._recipes_match(dataset_a, dataset_b, semantic=True, seen=set())

    def grade(self, dataset_a: str, dataset_b: str) -> Optional[str]:
        """The strongest grade holding between two datasets, or None."""
        if self.bitwise_equal(dataset_a, dataset_b):
            return "bitwise"
        if self.recipe_equal(dataset_a, dataset_b):
            return "recipe"
        if self.semantic_equal(dataset_a, dataset_b):
            return "semantic"
        return None

    def substitutable(
        self, wanted: str, candidate: str, minimum_grade: str = "semantic"
    ) -> bool:
        """Whether ``candidate`` may stand in for ``wanted``.

        ``minimum_grade`` names the weakest acceptable grade.
        """
        got = self.grade(wanted, candidate)
        if got is None:
            return False
        return GRADES.index(got) <= GRADES.index(minimum_grade)

    # -- internals ----------------------------------------------------------

    def _producer(self, dataset_name: str) -> Optional[Derivation]:
        producers = self._catalog.producers_of(dataset_name)
        return producers[0] if len(producers) == 1 else None

    def _recipes_match(
        self, a: str, b: str, semantic: bool, seen: set[tuple[str, str]]
    ) -> bool:
        if a == b:
            return True
        key = (min(a, b), max(a, b))
        if key in seen:
            return True  # cycle guard; assume match on the back edge
        seen = seen | {key}
        dv_a = self._producer(a)
        dv_b = self._producer(b)
        if dv_a is None or dv_b is None:
            return False
        if not self._transformations_match(dv_a, dv_b, semantic):
            return False
        if set(dv_a.actuals) != set(dv_b.actuals):
            return False
        # Outputs must correspond positionally by formal name; the
        # queried datasets must be bound to the same formal.
        if self._formal_of(dv_a, a) != self._formal_of(dv_b, b):
            return False
        for formal, value_a in dv_a.actuals.items():
            value_b = dv_b.actuals[formal]
            if isinstance(value_a, str) or isinstance(value_b, str):
                if value_a != value_b:
                    return False
                continue
            assert isinstance(value_a, DatasetArg) and isinstance(
                value_b, DatasetArg
            )
            if value_a.is_output and value_b.is_output:
                continue  # other outputs need not match
            if not self._recipes_match(
                value_a.dataset, value_b.dataset, semantic, seen
            ):
                return False
        return True

    def _transformations_match(
        self, dv_a: Derivation, dv_b: Derivation, semantic: bool
    ) -> bool:
        name_a = dv_a.transformation.name
        name_b = dv_b.transformation.name
        if name_a != name_b:
            return False
        if not semantic:
            return True
        version_a = dv_a.attributes.get("transformation_version")
        version_b = dv_b.attributes.get("transformation_version")
        if version_a is None or version_b is None or version_a == version_b:
            return True
        return self._catalog.versions.equivalent(name_a, version_a, version_b)

    @staticmethod
    def _formal_of(dv: Derivation, dataset_name: str) -> Optional[str]:
        for formal, value in dv.actuals.items():
            if isinstance(value, DatasetArg) and value.dataset == dataset_name:
                return formal
        return None


def equivalence_classes(
    catalog: VirtualDataCatalog,
    dataset_names: list[str],
    grade: str = "recipe",
) -> list[set[str]]:
    """Partition datasets into equivalence classes at the given grade.

    Quadratic in the class count, linear in class sizes — fine for the
    per-workflow scales the paper discusses.
    """
    checker = EquivalenceChecker(catalog)
    check = {
        "bitwise": checker.bitwise_equal,
        "recipe": checker.recipe_equal,
        "semantic": checker.semantic_equal,
    }[grade]
    classes: list[set[str]] = []
    for name in dataset_names:
        for cls in classes:
            representative = next(iter(cls))
            if check(name, representative):
                cls.add(name)
                break
        else:
            classes.append({name})
    return classes
