"""Invalidation and staleness propagation.

Answers the §2 provenance question: "I've detected a calibration error
in an instrument and want to know which derived data to recompute."

Two mechanisms:

* :func:`invalidated_by` — given bad *datasets* and/or bad
  *transformations* (e.g. a buggy version), compute the transitive set
  of derived datasets and the derivations that must be re-run;
* :class:`StalenessTracker` — ``make``-style incremental
  rematerialization (§8 future work): datasets carry modification
  stamps; a dataset is stale when any upstream dataset is newer, and
  the planner can prune up-to-date derivations from a plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.provenance.graph import (
    DATASET,
    DERIVATION,
    DerivationGraph,
    dataset_node,
    derivation_node,
)


@dataclass
class InvalidationReport:
    """The blast radius of an invalidation event."""

    #: Datasets asserted bad by the caller (the roots).
    bad_datasets: set[str] = field(default_factory=set)
    #: Transformations asserted bad by the caller.
    bad_transformations: set[str] = field(default_factory=set)
    #: Derived datasets that can no longer be trusted.
    tainted_datasets: set[str] = field(default_factory=set)
    #: Derivations that must be re-executed to repair the damage.
    rerun_derivations: set[str] = field(default_factory=set)

    def total_affected(self) -> int:
        return len(self.tainted_datasets) + len(self.rerun_derivations)


def invalidated_by(
    graph: DerivationGraph,
    bad_datasets: Iterable[str] = (),
    bad_transformations: Iterable[str] = (),
) -> InvalidationReport:
    """Compute everything downstream of bad data or bad code.

    * A bad dataset taints every dataset downstream of it; every
      derivation on those paths must re-run (once its inputs are
      repaired).
    * A bad transformation taints the outputs of every derivation that
      invokes it, and everything downstream of those outputs.
    """
    report = InvalidationReport(
        bad_datasets=set(bad_datasets),
        bad_transformations=set(bad_transformations),
    )
    roots = set()
    for name in report.bad_datasets:
        node = dataset_node(name)
        if node in graph:
            roots.add(node)
    for tr_name in report.bad_transformations:
        for dv_name in graph.derivation_names():
            dv = graph.derivation(dv_name)
            if dv.transformation.name == tr_name:
                roots.add(derivation_node(dv_name))
    for root in roots:
        if root.kind == DERIVATION:
            report.rerun_derivations.add(root.name)
        for node in graph.descendants(root):
            if node.kind == DATASET:
                report.tainted_datasets.add(node.name)
            else:
                report.rerun_derivations.add(node.name)
    # The bad datasets themselves are not "derived", so they are not
    # tainted; but if a bad dataset is itself derived the caller likely
    # wants its producer re-run too — expose that via rerun set.
    for name in report.bad_datasets:
        node = dataset_node(name)
        if node in graph:
            for pred in graph.predecessors(node):
                report.rerun_derivations.add(pred.name)
    return report


class StalenessTracker:
    """``make``-style staleness over a derivation graph.

    Stamps are arbitrary monotonically comparable numbers (logical
    clocks or epoch seconds).  A *materialized* dataset is stale when
    some upstream materialized dataset has a newer stamp, or when any
    upstream dataset is missing/stale.  Unstamped datasets are treated
    as missing — they were never materialized.
    """

    def __init__(self, graph: DerivationGraph):
        self._graph = graph
        self._stamps: dict[str, float] = {}

    def stamp(self, dataset_name: str, when: float) -> None:
        """Record that ``dataset_name`` was (re)materialized at ``when``."""
        self._stamps[dataset_name] = when

    def stamp_of(self, dataset_name: str) -> Optional[float]:
        return self._stamps.get(dataset_name)

    def is_materialized(self, dataset_name: str) -> bool:
        return dataset_name in self._stamps

    def is_stale(self, dataset_name: str) -> bool:
        """Whether the dataset needs rematerialization.

        Source datasets are never stale (they are ground truth); a
        derived dataset is stale if unmaterialized, or if any direct
        input is stale, missing, or newer than it.
        """
        return dataset_name in self.stale_datasets({dataset_name})

    def stale_datasets(
        self, targets: Optional[Iterable[str]] = None
    ) -> set[str]:
        """All stale datasets among ``targets`` and their ancestry.

        With ``targets=None`` the whole graph is checked.
        """
        order = self._graph.topological_order()
        state: dict[str, bool] = {}  # name -> stale?
        for node in order:
            if node.kind != DATASET:
                continue
            preds = self._graph.predecessors(node)
            if not preds:
                state[node.name] = False  # sources are ground truth
                continue
            my_stamp = self._stamps.get(node.name)
            if my_stamp is None:
                state[node.name] = True
                continue
            stale = False
            for dv_node in preds:
                for input_node in self._graph.predecessors(dv_node):
                    input_name = input_node.name
                    if state.get(input_name, False):
                        stale = True
                        break
                    input_stamp = self._stamps.get(input_name)
                    is_source = not self._graph.predecessors(input_node)
                    if input_stamp is None and not is_source:
                        stale = True
                        break
                    if input_stamp is not None and input_stamp > my_stamp:
                        stale = True
                        break
                if stale:
                    break
            state[node.name] = stale
        if targets is None:
            return {name for name, stale in state.items() if stale}
        wanted = set(targets)
        relevant = set(wanted)
        for name in wanted:
            relevant |= self._graph.upstream_datasets(name)
        return {
            name
            for name in relevant
            if state.get(name, name not in self._stamps)
        }

    def derivations_to_run(self, target: str) -> set[str]:
        """Minimum derivations needed to freshen ``target`` (make -n).

        A derivation must run iff any of its outputs on the path to the
        target is stale.
        """
        stale = self.stale_datasets([target])
        needed = set()
        sub = self._graph.required_for(target)
        for dv_name in sub.derivation_names():
            dv = sub.derivation(dv_name)
            if any(output in stale for output in dv.outputs()):
                needed.add(dv_name)
        return needed
