"""Lineage reports: the complete audit trail behind a dataset.

"Provenance: determining the validity of data by gaining access to a
complete audit trail describing how the data was produced from the
datasets and previous data derivations on which it depends." (§2)

Two entry points:

* :func:`lineage_report` — the full recursive audit trail for one
  dataset within one catalog, including transformation versions,
  string parameters, and invocation records (when available);
* :func:`cross_catalog_lineage` — the same walk but following
  dataset-dependency hyperlinks across servers via a
  :class:`~repro.catalog.resolver.ReferenceResolver` (Fig 3).

The paper's §6 goal — "produce, for each data point in the final graph,
a detailed data lineage report on the datasets that contributed to the
creation of that point" — is served by :func:`lineage_report` applied
to fine-grained datasets (e.g. SQL row-range descriptors), exercised by
the MULTI benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.catalog.base import VirtualDataCatalog
from repro.catalog.resolver import ReferenceResolver
from repro.core.derivation import Derivation
from repro.core.invocation import Invocation


@dataclass
class LineageStep:
    """One derivation in an audit trail, with its execution evidence."""

    derivation: Derivation
    authority: str = "local"
    transformation_version: Optional[str] = None
    invocations: list[Invocation] = field(default_factory=list)
    #: Lineage of each input dataset, keyed by dataset name.
    inputs: dict[str, "LineageReport"] = field(default_factory=dict)

    def parameters(self) -> dict[str, str]:
        """The string (pass-by-value) actuals of this step."""
        return {
            k: v for k, v in self.derivation.actuals.items() if isinstance(v, str)
        }


@dataclass
class LineageReport:
    """The audit trail of one dataset.

    ``steps`` lists the derivations that produced the dataset (normally
    one; multiple producers are reported, not hidden, since they are a
    data-quality signal).  An empty ``steps`` means the dataset is a
    source: raw data with no recorded derivation.
    """

    dataset: str
    steps: list[LineageStep] = field(default_factory=list)

    @property
    def is_source(self) -> bool:
        return not self.steps

    def depth(self) -> int:
        """Longest chain of derivations in this report."""
        if self.is_source:
            return 0
        return 1 + max(
            (
                inp.depth()
                for step in self.steps
                for inp in step.inputs.values()
            ),
            default=0,
        )

    def all_source_datasets(self) -> set[str]:
        """Every raw dataset this dataset transitively derives from."""
        if self.is_source:
            return {self.dataset}
        out: set[str] = set()
        for step in self.steps:
            for report in step.inputs.values():
                out |= report.all_source_datasets()
        return out

    def all_derivations(self) -> set[str]:
        """Every derivation name appearing anywhere in the trail."""
        out: set[str] = set()
        for step in self.steps:
            out.add(step.derivation.name)
            for report in step.inputs.values():
                out |= report.all_derivations()
        return out

    def total_cpu_seconds(self) -> float:
        """Sum of recorded cpu time over all invocations in the trail."""
        total = 0.0
        for step in self.steps:
            total += sum(inv.usage.cpu_seconds for inv in step.invocations)
            for report in step.inputs.values():
                total += report.total_cpu_seconds()
        return total

    def render(self, indent: int = 0) -> str:
        """Human-readable multi-line audit trail."""
        pad = "  " * indent
        if self.is_source:
            return f"{pad}{self.dataset}  [source]"
        lines = [f"{pad}{self.dataset}"]
        for step in self.steps:
            dv = step.derivation
            version = (
                f" (v{step.transformation_version})"
                if step.transformation_version
                else ""
            )
            runs = f", {len(step.invocations)} run(s)" if step.invocations else ""
            where = f" @{step.authority}" if step.authority != "local" else ""
            lines.append(
                f"{pad}  <- {dv.name} -> {dv.transformation.name}"
                f"{version}{where}{runs}"
            )
            params = step.parameters()
            if params:
                rendered = ", ".join(f"{k}={v!r}" for k, v in sorted(params.items()))
                lines.append(f"{pad}     params: {rendered}")
            for name in sorted(step.inputs):
                lines.append(step.inputs[name].render(indent + 3))
        return "\n".join(lines)


def lineage_report(
    catalog: VirtualDataCatalog,
    dataset_name: str,
    include_invocations: bool = True,
    max_depth: Optional[int] = None,
) -> LineageReport:
    """Build the full audit trail of ``dataset_name`` within ``catalog``.

    ``max_depth`` truncates the recursion (deeper inputs are reported
    as sources), which keeps reports tractable on very deep chains.
    """
    return _report(
        dataset_name,
        producers=lambda name: [
            (dv, "local") for dv in catalog.producers_of(name)
        ],
        invocations=(
            catalog.invocations_of if include_invocations else lambda _: []
        ),
        version_of=_version_lookup(catalog),
        max_depth=max_depth,
        seen=set(),
    )


def cross_catalog_lineage(
    resolver: ReferenceResolver,
    dataset_name: str,
    include_invocations: bool = True,
    max_depth: Optional[int] = None,
) -> LineageReport:
    """Audit trail following hyperlinks across catalogs (Fig 3).

    Producers are located through the resolver's scope chain, so a
    personal derivation depending on a collaboration dataset reports
    the collaboration-side derivation with its authority.
    """

    def invocations(name: str) -> list[Invocation]:
        if not include_invocations:
            return []
        out = []
        for catalog in [resolver.home] + [
            resolver.network.catalog(a)
            for a in resolver.scope_chain
            if a in resolver.network
        ]:
            out.extend(catalog.invocations_of(name))
        return out

    return _report(
        dataset_name,
        producers=resolver.producers_of,
        invocations=invocations,
        version_of=_version_lookup(resolver.home),
        max_depth=max_depth,
        seen=set(),
    )


def _version_lookup(catalog: VirtualDataCatalog):
    def version_of(dv: Derivation) -> Optional[str]:
        name = dv.transformation.name
        if dv.transformation.is_local and catalog.has_transformation(name):
            return catalog.get_transformation(name).version
        return None

    return version_of


def _report(
    dataset_name: str,
    producers,
    invocations,
    version_of,
    max_depth: Optional[int],
    seen: set[str],
) -> LineageReport:
    report = LineageReport(dataset=dataset_name)
    if max_depth is not None and max_depth <= 0:
        return report
    if dataset_name in seen:
        return report  # cycle guard: report as source rather than recurse
    seen = seen | {dataset_name}
    for dv, authority in producers(dataset_name):
        step = LineageStep(
            derivation=dv,
            authority=authority,
            transformation_version=version_of(dv),
            invocations=list(invocations(dv.name)),
        )
        for input_name in dv.inputs():
            step.inputs[input_name] = _report(
                input_name,
                producers,
                invocations,
                version_of,
                None if max_depth is None else max_depth - 1,
                seen,
            )
        report.steps.append(step)
    return report
