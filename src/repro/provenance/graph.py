"""The derivation dependency graph.

Provenance in the virtual data model is a bipartite directed acyclic
graph: *dataset* nodes and *derivation* nodes, with edges

    input dataset -> derivation -> output dataset.

"When a derivation uses as input the output of a previous derivation, a
dependency graph is created." (Appendix A)

:class:`DerivationGraph` materializes that graph from a catalog (or any
collection of derivations) and provides the traversals every other
provenance feature builds on: ancestry, descent, topological order,
cycle detection, and target-rooted subgraphs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.core.derivation import Derivation
from repro.errors import CyclicDerivationError

#: Node kinds in the bipartite graph.
DATASET = "dataset"
DERIVATION = "derivation"


@dataclass(frozen=True)
class Node:
    """A graph node: a dataset or a derivation, by name."""

    kind: str
    name: str

    def __str__(self) -> str:
        return f"{self.kind}:{self.name}"


def dataset_node(name: str) -> Node:
    return Node(DATASET, name)


def derivation_node(name: str) -> Node:
    return Node(DERIVATION, name)


class DerivationGraph:
    """A bipartite provenance graph over datasets and derivations."""

    def __init__(self, derivations: Iterable[Derivation] = ()):
        self._succ: dict[Node, set[Node]] = {}
        self._pred: dict[Node, set[Node]] = {}
        #: name -> Derivation, or None for lazily-registered nodes whose
        #: object is decoded on first :meth:`derivation` access.
        self._derivations: dict[str, Optional[Derivation]] = {}
        #: Decoder for lazy nodes (typically ``catalog.get_derivation``).
        self._loader: Optional[Callable[[str], Derivation]] = None
        for dv in derivations:
            self.add_derivation(dv)

    @classmethod
    def from_catalog(cls, catalog) -> "DerivationGraph":
        """Build the graph over every derivation in a catalog.

        Edges come straight off the stored payload documents — the
        Derivation objects themselves are decoded lazily on first
        access, which at 10^5-10^6 derivations is the difference
        between milliseconds and minutes of graph construction.
        """
        from repro.catalog.index import _derivation_edges

        graph = cls()
        loader = getattr(catalog, "_decode_derivation", None)
        graph.set_loader(loader or catalog.get_derivation)
        for key, payload in catalog._store_scan("derivation"):
            inputs, outputs, _ = _derivation_edges(payload)
            graph.add_derivation_edges(key, inputs, outputs)
        return graph

    # -- construction ------------------------------------------------------

    def add_derivation(self, dv: Derivation) -> None:
        """Add a derivation and its dataset edges."""
        self._derivations[dv.name] = dv
        self._link(dv.name, dv.inputs(), dv.outputs())

    def set_loader(self, loader: Callable[[str], Derivation]) -> None:
        """Install the decoder lazy nodes resolve through."""
        self._loader = loader

    def add_derivation_edges(
        self, name: str, inputs: Iterable[str], outputs: Iterable[str]
    ) -> None:
        """Add a derivation node by name and edges only (lazy object).

        The Derivation itself is decoded through the loader on first
        :meth:`derivation` access.  Re-adding a name resets any decoded
        object, so callers can use this to invalidate stale decodes.
        """
        if name in self._derivations:
            self.remove_derivation(name)
        self._derivations[name] = None
        self._link(name, inputs, outputs)

    def _link(
        self, name: str, inputs: Iterable[str], outputs: Iterable[str]
    ) -> None:
        dnode = derivation_node(name)
        self._ensure(dnode)
        for dep in inputs:
            self._add_edge(dataset_node(dep), dnode)
        for out in outputs:
            self._add_edge(dnode, dataset_node(out))

    def _ensure(self, node: Node) -> None:
        # Membership test instead of setdefault: setdefault builds its
        # throwaway set() argument on every call, and edge insertion is
        # the inner loop of whole-catalog graph builds.
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def remove_derivation(self, name: str) -> None:
        """Remove a derivation node, its edges, and now-orphan datasets.

        Dataset nodes exist only because some derivation mentions them,
        so ones left with no edges are dropped — the result matches a
        cold rebuild without the removed derivation.
        """
        self._derivations.pop(name, None)
        dnode = derivation_node(name)
        if dnode not in self._succ:
            return
        for succ in self._succ.pop(dnode, set()):
            self._pred.get(succ, set()).discard(dnode)
            self._drop_if_isolated(succ)
        for pred in self._pred.pop(dnode, set()):
            self._succ.get(pred, set()).discard(dnode)
            self._drop_if_isolated(pred)

    def _drop_if_isolated(self, node: Node) -> None:
        if not self._succ.get(node) and not self._pred.get(node):
            self._succ.pop(node, None)
            self._pred.pop(node, None)

    def _add_edge(self, src: Node, dst: Node) -> None:
        self._ensure(src)
        self._ensure(dst)
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    # -- basic accessors ----------------------------------------------------

    def derivation(self, name: str) -> Derivation:
        dv = self._derivations[name]
        if dv is None:
            if self._loader is None:
                raise KeyError(
                    f"derivation {name!r} registered lazily but the graph "
                    f"has no loader"
                )
            dv = self._derivations[name] = self._loader(name)
        return dv

    def nodes(self) -> list[Node]:
        return sorted(self._succ, key=lambda n: (n.kind, n.name))

    def dataset_names(self) -> list[str]:
        return sorted(n.name for n in self._succ if n.kind == DATASET)

    def derivation_names(self) -> list[str]:
        return sorted(self._derivations)

    def successors(self, node: Node) -> set[Node]:
        return set(self._succ.get(node, ()))

    def predecessors(self, node: Node) -> set[Node]:
        return set(self._pred.get(node, ()))

    def iter_predecessors(self, node: Node) -> Iterable[Node]:
        """Non-copying predecessor view — treat as read-only.

        Hot-loop companion to :meth:`predecessors`, which copies the
        edge set on every call; planning walks millions of edges.
        """
        return self._pred.get(node, ())

    def producer_names(self, dataset_name: str) -> list[str]:
        """Names of derivations producing a dataset (no set copies).

        Empty both for producer-less datasets and for names absent
        from the graph entirely.
        """
        preds = self._pred.get(dataset_node(dataset_name))
        if not preds:
            return []
        return [n.name for n in preds]

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def edge_count(self) -> int:
        return sum(len(s) for s in self._succ.values())

    # -- traversals -----------------------------------------------------------

    def ancestors(self, node: Node) -> set[Node]:
        """All nodes reachable *backwards* from ``node`` (exclusive)."""
        return self._reach(node, self._pred)

    def descendants(self, node: Node) -> set[Node]:
        """All nodes reachable *forwards* from ``node`` (exclusive)."""
        return self._reach(node, self._succ)

    def _reach(self, start: Node, adjacency: dict[Node, set[Node]]) -> set[Node]:
        seen: set[Node] = set()
        frontier = deque(adjacency.get(start, ()))
        while frontier:
            node = frontier.popleft()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(adjacency.get(node, ()))
        return seen

    def upstream_datasets(self, dataset_name: str) -> set[str]:
        """Names of all datasets the given dataset (transitively) depends on."""
        return {
            n.name
            for n in self.ancestors(dataset_node(dataset_name))
            if n.kind == DATASET
        }

    def downstream_datasets(self, dataset_name: str) -> set[str]:
        """Names of all datasets that (transitively) depend on the given one."""
        return {
            n.name
            for n in self.descendants(dataset_node(dataset_name))
            if n.kind == DATASET
        }

    def topological_order(self) -> list[Node]:
        """Kahn topological sort; raises on cycles.

        A cycle in a derivation graph means some dataset transitively
        depends on itself — an invalid virtual data space.
        """
        in_degree = {node: len(preds) for node, preds in self._pred.items()}
        ready = deque(
            sorted(
                (n for n, d in in_degree.items() if d == 0),
                key=lambda n: (n.kind, n.name),
            )
        )
        order: list[Node] = []
        while ready:
            node = ready.popleft()
            order.append(node)
            for succ in sorted(
                self._succ.get(node, ()), key=lambda n: (n.kind, n.name)
            ):
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._succ):
            cyclic = sorted(
                str(n) for n, d in in_degree.items() if d > 0
            )
            raise CyclicDerivationError(
                f"derivation graph contains a cycle involving: {cyclic[:6]}"
            )
        return order

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
            return True
        except CyclicDerivationError:
            return False

    # -- target-rooted subgraphs (what the planner expands) --------------------

    def required_for(self, dataset_name: str) -> "DerivationGraph":
        """The subgraph of derivations needed to produce a dataset.

        Walks backwards from the target through producing derivations;
        source datasets (no producer in this graph) become leaves.
        """
        sub = DerivationGraph()
        target = dataset_node(dataset_name)
        if target not in self._succ:
            return sub
        seen: set[Node] = set()
        frontier = deque([target])
        while frontier:
            node = frontier.popleft()
            if node in seen:
                continue
            seen.add(node)
            if node.kind == DATASET:
                frontier.extend(self._pred.get(node, ()))
            else:
                sub.add_derivation(self.derivation(node.name))
                frontier.extend(self._pred.get(node, ()))
        return sub

    def source_datasets(self) -> set[str]:
        """Datasets with no producing derivation in this graph (raw inputs)."""
        return {
            n.name
            for n in self._succ
            if n.kind == DATASET and not self._pred.get(n)
        }

    def sink_datasets(self) -> set[str]:
        """Datasets no derivation in this graph consumes (final products)."""
        return {
            n.name
            for n in self._succ
            if n.kind == DATASET and not self._succ.get(n)
        }

    def depth(self) -> int:
        """Longest derivation chain length (number of derivation nodes)."""
        order = self.topological_order()
        longest: dict[Node, int] = {}
        best = 0
        for node in order:
            here = max(
                (longest.get(p, 0) for p in self._pred.get(node, ())),
                default=0,
            )
            if node.kind == DERIVATION:
                here += 1
            longest[node] = here
            best = max(best, here)
        return best
