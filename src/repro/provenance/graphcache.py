"""An event-maintained cache of the catalog's derivation graph.

``Planner._plan`` used to rebuild ``DerivationGraph.from_catalog()`` on
every ``plan()`` call — the classic scheduler scalability trap the
data-grid taxonomy literature warns about: planning cost grows with the
whole catalog, not with what changed.  :class:`GraphCache` builds the
graph once and then keeps it current through the catalog's
mutation-subscription hook (the same change-event stream the
federated index and ``repro.analysis.incremental`` consume).

Invalidation is node/edge-level and *lazy*: events only mark derivation
keys dirty (O(1) per mutation, so bulk loads are not slowed down), and
the next :meth:`graph` call patches exactly the dirty nodes — or falls
back to a full raw-payload rebuild when so much changed that patching
would be slower.  The served graph object is shared and must be treated
as read-only by callers; it mutates only inside :meth:`graph`.
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.index import _derivation_edges
from repro.provenance.graph import DerivationGraph

#: Patch the cached graph while dirty keys are at most this fraction of
#: its derivations; beyond that a raw-payload rebuild is cheaper.
REBUILD_FRACTION = 0.25


class GraphCache:
    """Keeps one :class:`DerivationGraph` current against a catalog.

    ``hits`` counts :meth:`graph` calls served from the cached graph
    (including ones that applied node-level patches), ``misses`` counts
    full (re)builds, and ``patches`` counts individual derivations
    re-read incrementally.  ``version`` bumps whenever the served graph
    differs from the previous call's, so callers can cheaply detect
    staleness of anything they derived from it.
    """

    def __init__(self, catalog):
        self._catalog = catalog
        self._graph: Optional[DerivationGraph] = None
        self._dirty: set[str] = set()
        self.hits = 0
        self.misses = 0
        self.patches = 0
        self.version = 0
        catalog.subscribe(self._on_event)

    # -- event plumbing ---------------------------------------------------

    def _on_event(self, event: str, kind: str, key: str) -> None:
        # Only derivations define graph structure; dataset records are
        # nodes solely by virtue of being mentioned in derivation edges.
        if kind == "derivation":
            self._dirty.add(key)

    def invalidate(self) -> None:
        """Drop the cached graph (catalog reopen / snapshot import)."""
        self._graph = None
        self._dirty.clear()

    # -- the cache --------------------------------------------------------

    def graph(self) -> DerivationGraph:
        """The current graph; patched or rebuilt as needed.

        Runs under the catalog lock so patches never race mutation
        events; the returned graph is shared — treat it as read-only.
        """
        with self._catalog._lock:
            graph = self._graph
            if graph is None:
                self._graph = graph = DerivationGraph.from_catalog(
                    self._catalog
                )
                self._dirty.clear()
                self.misses += 1
                self.version += 1
                return graph
            if not self._dirty:
                self.hits += 1
                return graph
            known = len(graph._derivations)
            if len(self._dirty) > max(REBUILD_FRACTION * known, 8):
                self._graph = graph = DerivationGraph.from_catalog(
                    self._catalog
                )
                self._dirty.clear()
                self.misses += 1
                self.version += 1
                return graph
            for key in sorted(self._dirty):
                payload = self._catalog._cached_payload("derivation", key)
                if payload is None:
                    graph.remove_derivation(key)
                else:
                    inputs, outputs, _ = _derivation_edges(payload)
                    graph.add_derivation_edges(key, inputs, outputs)
                self.patches += 1
            self._dirty.clear()
            self.hits += 1
            self.version += 1
            return graph

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "patches": self.patches,
            "version": self.version,
            "dirty": len(self._dirty),
        }
