"""Provenance: dependency graphs, lineage, invalidation, equivalence (§2, §8)."""

from repro.provenance.equivalence import EquivalenceChecker, equivalence_classes
from repro.provenance.finegrained import (
    ROW_MAPPINGS,
    RowLineage,
    row_lineage,
    rows_affected_by,
)
from repro.provenance.graph import (
    DATASET,
    DERIVATION,
    DerivationGraph,
    Node,
    dataset_node,
    derivation_node,
)
from repro.provenance.invalidation import (
    InvalidationReport,
    StalenessTracker,
    invalidated_by,
)
from repro.provenance.lineage import (
    LineageReport,
    LineageStep,
    cross_catalog_lineage,
    lineage_report,
)

__all__ = [
    "DATASET",
    "DERIVATION",
    "DerivationGraph",
    "EquivalenceChecker",
    "InvalidationReport",
    "LineageReport",
    "LineageStep",
    "Node",
    "ROW_MAPPINGS",
    "RowLineage",
    "StalenessTracker",
    "cross_catalog_lineage",
    "dataset_node",
    "derivation_node",
    "equivalence_classes",
    "invalidated_by",
    "lineage_report",
    "row_lineage",
    "rows_affected_by",
]
