"""XML serialization of VDL objects.

"We show the textual version of VDL here; an XML version is also
implemented for machine-to-machine interfaces." (Appendix A)

The format is a straightforward element tree::

    <vdl>
      <transformation name="t1" version="1.0" kind="simple">
        <formal direction="output" name="a2"/>
        <formal direction="none" name="pa" default="500"/>
        <argument name="parg"><text>-p </text><ref name="pa" direction="none"/></argument>
        <exec path="/usr/bin/app3"/>
        <env variable="MAXMEM"><ref name="env" direction="none"/></env>
        <profile key="hints.pfnHint" value="..."/>
        <call target="vdp://host/tr"><binding formal="a2"><ref .../></binding></call>
      </transformation>
      <derivation name="d1" target="example1::t1">
        <actual formal="a2"><lfn direction="output" name="..." temporary="false"/></actual>
        <actual formal="pa"><string>600</string></actual>
      </derivation>
    </vdl>

Round-trip fidelity (text -> objects -> XML -> objects) is covered by
the test suite.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Iterable, Union

from repro.core.derivation import DatasetArg, Derivation
from repro.core.naming import VDPRef
from repro.core.transformation import (
    ArgumentTemplate,
    CompoundTransformation,
    FormalArg,
    FormalRef,
    SimpleTransformation,
    Transformation,
    TransformationCall,
)
from repro.core.types import DatasetType, TypeUnion
from repro.errors import VDLError


def _template_to_xml(parent: ET.Element, parts) -> None:
    for part in parts:
        if isinstance(part, FormalRef):
            ref = ET.SubElement(parent, "ref", name=part.name)
            if part.direction:
                ref.set("direction", part.direction)
        else:
            text = ET.SubElement(parent, "text")
            text.text = part


def _template_from_xml(element: ET.Element) -> tuple:
    parts = []
    for child in element:
        if child.tag == "ref":
            parts.append(
                FormalRef(name=child.get("name"), direction=child.get("direction"))
            )
        elif child.tag == "text":
            parts.append(child.text or "")
        elif child.tag in ("string", "lfn", "binding"):
            continue
        else:
            raise VDLError(f"unexpected template element <{child.tag}>")
    return tuple(parts)


def _type_to_attr(union: TypeUnion) -> str:
    return "|".join(
        f"{m.content}/{m.format}/{m.encoding}" for m in union.members
    )


def _type_from_attr(text: str) -> TypeUnion:
    members = []
    for chunk in text.split("|"):
        content, fmt, enc = chunk.split("/")
        members.append(DatasetType(content=content, format=fmt, encoding=enc))
    return TypeUnion(members=tuple(members))


def transformation_to_xml(tr: Transformation) -> ET.Element:
    """Serialize one transformation to an Element."""
    kind = "compound" if tr.is_compound else "simple"
    element = ET.Element(
        "transformation", name=tr.name, version=tr.version, kind=kind
    )
    for formal in tr.signature.formals:
        f = ET.SubElement(
            element, "formal", direction=formal.direction, name=formal.name
        )
        if not formal.is_string:
            f.set("types", _type_to_attr(formal.dataset_types))
        if formal.default is not None:
            f.set("default", formal.default)
            if formal.temporary_default:
                f.set("temporary", "true")
    if isinstance(tr, SimpleTransformation):
        for template in tr.arguments:
            arg = ET.SubElement(element, "argument")
            if template.name:
                arg.set("name", template.name)
            _template_to_xml(arg, template.parts)
        if tr.executable:
            ET.SubElement(element, "exec", path=tr.executable)
        for var in sorted(tr.environment):
            env = ET.SubElement(element, "env", variable=var)
            _template_to_xml(env, tr.environment[var].parts)
        for key in sorted(tr.profile_hints):
            ET.SubElement(
                element, "profile", key=key, value=tr.profile_hints[key]
            )
    elif isinstance(tr, CompoundTransformation):
        for call in tr.calls:
            call_el = ET.SubElement(element, "call", target=call.target.vdl_text())
            for formal_name, value in call.bindings.items():
                binding = ET.SubElement(call_el, "binding", formal=formal_name)
                if isinstance(value, FormalRef):
                    _template_to_xml(binding, (value,))
                else:
                    s = ET.SubElement(binding, "string")
                    s.text = value
    return element


def transformation_from_xml(element: ET.Element) -> Transformation:
    """Rebuild a transformation from :func:`transformation_to_xml` output."""
    name = element.get("name")
    version = element.get("version", "1.0")
    kind = element.get("kind", "simple")
    formals = []
    for f in element.findall("formal"):
        types_attr = f.get("types")
        formals.append(
            FormalArg(
                name=f.get("name"),
                direction=f.get("direction"),
                dataset_types=(
                    _type_from_attr(types_attr) if types_attr else TypeUnion()
                ),
                default=f.get("default"),
                temporary_default=f.get("temporary") == "true",
            )
        )
    if kind == "compound":
        calls = []
        for call_el in element.findall("call"):
            bindings = {}
            for binding in call_el.findall("binding"):
                string_el = binding.find("string")
                if string_el is not None:
                    bindings[binding.get("formal")] = string_el.text or ""
                else:
                    parts = _template_from_xml(binding)
                    if len(parts) != 1 or not isinstance(parts[0], FormalRef):
                        raise VDLError(
                            "call binding must contain exactly one <ref>"
                        )
                    bindings[binding.get("formal")] = parts[0]
            calls.append(
                TransformationCall(
                    target=VDPRef.parse(
                        call_el.get("target"), default_kind="transformation"
                    ),
                    bindings=bindings,
                )
            )
        return CompoundTransformation(
            name=name, formals=formals, calls=calls, version=version
        )
    arguments = []
    for arg in element.findall("argument"):
        arguments.append(
            ArgumentTemplate(parts=_template_from_xml(arg), name=arg.get("name"))
        )
    exec_el = element.find("exec")
    environment = {}
    for env in element.findall("env"):
        environment[env.get("variable")] = ArgumentTemplate(
            parts=_template_from_xml(env), name=None
        )
    profile_hints = {
        p.get("key"): p.get("value") for p in element.findall("profile")
    }
    return SimpleTransformation(
        name=name,
        formals=formals,
        executable=exec_el.get("path") if exec_el is not None else "",
        arguments=arguments,
        environment=environment,
        profile_hints=profile_hints,
        version=version,
    )


def derivation_to_xml(dv: Derivation) -> ET.Element:
    """Serialize one derivation to an Element."""
    element = ET.Element(
        "derivation", name=dv.name, target=dv.transformation.vdl_text()
    )
    for formal_name, value in dv.actuals.items():
        actual = ET.SubElement(element, "actual", formal=formal_name)
        if isinstance(value, DatasetArg):
            lfn = ET.SubElement(
                actual,
                "lfn",
                direction=value.direction,
                name=value.dataset,
            )
            if value.temporary:
                lfn.set("temporary", "true")
        else:
            s = ET.SubElement(actual, "string")
            s.text = value
    for var, val in sorted(dv.environment.items()):
        ET.SubElement(element, "env", variable=var, value=val)
    return element


def derivation_from_xml(element: ET.Element) -> Derivation:
    """Rebuild a derivation from :func:`derivation_to_xml` output."""
    actuals: dict[str, Union[str, DatasetArg]] = {}
    for actual in element.findall("actual"):
        formal_name = actual.get("formal")
        lfn = actual.find("lfn")
        if lfn is not None:
            actuals[formal_name] = DatasetArg(
                dataset=lfn.get("name"),
                direction=lfn.get("direction", "input"),
                temporary=lfn.get("temporary") == "true",
            )
        else:
            string_el = actual.find("string")
            actuals[formal_name] = (
                string_el.text or "" if string_el is not None else ""
            )
    environment = {
        env.get("variable"): env.get("value", "")
        for env in element.findall("env")
    }
    return Derivation(
        name=element.get("name"),
        transformation=VDPRef.parse(
            element.get("target"), default_kind="transformation"
        ),
        actuals=actuals,
        environment=environment,
    )


def to_xml(
    transformations: Iterable[Transformation] = (),
    derivations: Iterable[Derivation] = (),
) -> str:
    """Serialize a program to an XML document string."""
    root = ET.Element("vdl")
    for tr in transformations:
        root.append(transformation_to_xml(tr))
    for dv in derivations:
        root.append(derivation_to_xml(dv))
    return ET.tostring(root, encoding="unicode")


def from_xml(document: str) -> tuple[list[Transformation], list[Derivation]]:
    """Parse an XML document back into (transformations, derivations)."""
    root = ET.fromstring(document)
    if root.tag != "vdl":
        raise VDLError(f"expected <vdl> document, got <{root.tag}>")
    transformations = [
        transformation_from_xml(el) for el in root.findall("transformation")
    ]
    derivations = [derivation_from_xml(el) for el in root.findall("derivation")]
    return transformations, derivations
