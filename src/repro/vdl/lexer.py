"""Lexer for the Chimera Virtual Data Language (Appendix A).

Produces a flat stream of :class:`Token` objects.  The only lexical
subtleties are:

* ``->`` (the derivation arrow) must win over ``-`` inside identifiers
  such as ``srch-muon``;
* identifiers may embed ``::`` (namespaces), ``.`` (dotted keys such as
  ``env.MAXMEM`` and ``hints.pfnHint``), ``@`` (versions) and ``-``;
* ``${`` and ``@{`` open formal and actual dataset references;
* strings are double-quoted with backslash escapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import VDLSyntaxError

#: Token types.
TT_IDENT = "IDENT"
TT_STRING = "STRING"
TT_LPAREN = "LPAREN"
TT_RPAREN = "RPAREN"
TT_LBRACE = "LBRACE"
TT_RBRACE = "RBRACE"
TT_DOLLAR_LBRACE = "DOLLAR_LBRACE"  # ${
TT_AT_LBRACE = "AT_LBRACE"          # @{
TT_COMMA = "COMMA"
TT_SEMI = "SEMI"
TT_COLON = "COLON"
TT_EQUALS = "EQUALS"
TT_ARROW = "ARROW"                  # ->
TT_PIPE = "PIPE"                    # |
TT_SLASH = "SLASH"                  # /
TT_EOF = "EOF"

_SINGLE_CHARS = {
    "(": TT_LPAREN,
    ")": TT_RPAREN,
    "{": TT_LBRACE,
    "}": TT_RBRACE,
    ",": TT_COMMA,
    ";": TT_SEMI,
    ":": TT_COLON,
    "=": TT_EQUALS,
    "|": TT_PIPE,
    "/": TT_SLASH,
}

_IDENT_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)
# Note: ':' is deliberately NOT an identifier character — namespace
# qualifiers (example1::t1) and direction prefixes (${input:a1}) are
# reassembled by the parser from COLON tokens.
_IDENT_CONT = _IDENT_START | set(".-@+")

_ESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    type: str
    value: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.type}({self.value!r})@{self.line}:{self.column}"


class Lexer:
    """A one-pass scanner over VDL source text."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokens(self) -> list[Token]:
        """Scan the whole source and return all tokens plus a final EOF."""
        return list(self._scan())

    # -- internals -----------------------------------------------------

    def _scan(self) -> Iterator[Token]:
        src = self._source
        n = len(src)
        while self._pos < n:
            ch = src[self._pos]
            if ch in " \t\r\n":
                self._advance(ch)
                continue
            # Line comments use '#' only: '//' would be ambiguous with
            # the '//' inside vdp:// references.
            if ch == "#":
                self._skip_line_comment()
                continue
            if ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
                continue
            line, column = self._line, self._column
            if ch == '"':
                yield self._string(line, column)
                continue
            if ch == "$" and self._peek(1) == "{":
                self._advance_n(2)
                yield Token(TT_DOLLAR_LBRACE, "${", line, column)
                continue
            if ch == "@" and self._peek(1) == "{":
                self._advance_n(2)
                yield Token(TT_AT_LBRACE, "@{", line, column)
                continue
            if ch == "-" and self._peek(1) == ">":
                self._advance_n(2)
                yield Token(TT_ARROW, "->", line, column)
                continue
            if ch in _IDENT_START:
                yield self._ident(line, column)
                continue
            if ch in _SINGLE_CHARS:
                self._advance(ch)
                yield Token(_SINGLE_CHARS[ch], ch, line, column)
                continue
            raise VDLSyntaxError(f"unexpected character {ch!r}", line, column)
        yield Token(TT_EOF, "", self._line, self._column)

    def _ident(self, line: int, column: int) -> Token:
        src = self._source
        start = self._pos
        while self._pos < len(src):
            ch = src[self._pos]
            if ch == "-" and self._peek(1) == ">":
                break  # the arrow, not part of the name
            if ch not in _IDENT_CONT:
                break
            self._advance(ch)
        text = src[start:self._pos]
        # A dangling trailing separator is never part of a name.
        while text and text[-1] in ".-":
            text = text[:-1]
            self._pos -= 1
            self._column -= 1
        return Token(TT_IDENT, text, line, column)

    def _string(self, line: int, column: int) -> Token:
        src = self._source
        self._advance('"')
        out = []
        while self._pos < len(src):
            ch = src[self._pos]
            if ch == '"':
                self._advance(ch)
                return Token(TT_STRING, "".join(out), line, column)
            if ch == "\\":
                self._advance(ch)
                if self._pos >= len(src):
                    break
                esc = src[self._pos]
                self._advance(esc)
                out.append(_ESCAPES.get(esc, esc))
                continue
            if ch == "\n":
                raise VDLSyntaxError("unterminated string literal", line, column)
            self._advance(ch)
            out.append(ch)
        raise VDLSyntaxError("unterminated string literal", line, column)

    def _skip_line_comment(self) -> None:
        src = self._source
        while self._pos < len(src) and src[self._pos] != "\n":
            self._advance(src[self._pos])

    def _skip_block_comment(self) -> None:
        line, column = self._line, self._column
        src = self._source
        self._advance_n(2)
        while self._pos < len(src):
            if src[self._pos] == "*" and self._peek(1) == "/":
                self._advance_n(2)
                return
            self._advance(src[self._pos])
        raise VDLSyntaxError("unterminated block comment", line, column)

    def _peek(self, ahead: int) -> str:
        pos = self._pos + ahead
        return self._source[pos] if pos < len(self._source) else ""

    def _advance(self, ch: str) -> None:
        self._pos += 1
        if ch == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1

    def _advance_n(self, count: int) -> None:
        for _ in range(count):
            self._advance(self._source[self._pos])


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: scan ``source`` into a token list."""
    return Lexer(source).tokens()
