"""Abstract syntax tree for the Virtual Data Language.

The AST is deliberately close to the concrete syntax of Appendix A;
:mod:`repro.vdl.semantics` lowers it onto the core schema objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class TypeExprNode:
    """A dataset-type expression: ``content/format/encoding`` triples
    joined by ``|`` into a union.  A ``-`` component means "dimension
    root".  This is a (documented) extension over VDL 1.0, which had
    untyped formals.
    """

    members: tuple[tuple[str, str, str], ...]


@dataclass(frozen=True)
class FormalRefNode:
    """``${direction:name}`` or ``${name}`` inside templates/bindings."""

    name: str
    direction: Optional[str] = None
    line: int = 0


@dataclass(frozen=True)
class DatasetRefNode:
    """``@{direction:"lfn"}`` with optional trailing ``:""`` marking a
    temporary scratch dataset (``@{inout:"somewhere":""}``)."""

    direction: str
    lfn: str
    temporary: bool = False
    line: int = 0


#: Template parts interleave literal strings and formal references.
TemplatePartNode = Union[str, FormalRefNode]


@dataclass(frozen=True)
class FormalDeclNode:
    """One formal parameter of a TR declaration."""

    direction: str
    name: str
    type_expr: Optional[TypeExprNode] = None
    #: Default actual: a string literal or a dataset reference.
    default: Optional[Union[str, DatasetRefNode]] = None
    line: int = 0


@dataclass(frozen=True)
class ArgumentStmtNode:
    """``argument [name] = part part ... ;``"""

    parts: tuple[TemplatePartNode, ...]
    name: Optional[str] = None
    line: int = 0


@dataclass(frozen=True)
class ExecStmtNode:
    """``exec = "/usr/bin/app" ;``"""

    path: str
    line: int = 0


@dataclass(frozen=True)
class EnvStmtNode:
    """``env.VAR = part part ... ;``"""

    variable: str
    parts: tuple[TemplatePartNode, ...]
    line: int = 0


@dataclass(frozen=True)
class ProfileStmtNode:
    """``profile ns.key = "value" ;``"""

    key: str
    value: str
    line: int = 0


@dataclass(frozen=True)
class CallStmtNode:
    """``callee( formal=${...}, formal="literal", ... ) ;`` inside a
    compound TR body.  ``target`` is the raw (possibly vdp://) name."""

    target: str
    bindings: tuple[tuple[str, Union[str, FormalRefNode]], ...]
    line: int = 0


BodyStmtNode = Union[
    ArgumentStmtNode, ExecStmtNode, EnvStmtNode, ProfileStmtNode, CallStmtNode
]


@dataclass(frozen=True)
class TransformationDeclNode:
    """A ``TR name( formals ) { body }`` declaration."""

    name: str
    formals: tuple[FormalDeclNode, ...]
    body: tuple[BodyStmtNode, ...]
    version: Optional[str] = None
    line: int = 0

    def is_compound(self) -> bool:
        return any(isinstance(s, CallStmtNode) for s in self.body)


@dataclass(frozen=True)
class DerivationDeclNode:
    """A ``DV name->target( actuals ) ;`` declaration."""

    name: str
    target: str
    actuals: tuple[tuple[str, Union[str, DatasetRefNode]], ...]
    line: int = 0


DeclNode = Union[TransformationDeclNode, DerivationDeclNode]


@dataclass(frozen=True)
class ProgramNode:
    """A whole VDL compilation unit: a sequence of TR/DV declarations."""

    declarations: tuple[DeclNode, ...] = ()

    def transformations(self) -> tuple[TransformationDeclNode, ...]:
        return tuple(
            d for d in self.declarations if isinstance(d, TransformationDeclNode)
        )

    def derivations(self) -> tuple[DerivationDeclNode, ...]:
        return tuple(
            d for d in self.declarations if isinstance(d, DerivationDeclNode)
        )
