"""Pretty-printer: core schema objects back to textual VDL.

``parse -> analyze -> unparse`` round-trips modulo whitespace, which the
test suite verifies by re-parsing the output and comparing objects.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.core.derivation import DatasetArg, Derivation
from repro.core.transformation import (
    CompoundTransformation,
    FormalArg,
    FormalRef,
    SimpleTransformation,
    Transformation,
)
from repro.core.types import DatasetType, TypeUnion


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _quote(text: str) -> str:
    return f'"{_escape(text)}"'


def _type_triple(dtype: DatasetType) -> str:
    if dtype.is_any():
        return "Dataset"
    parts = []
    for dim in ("content", "format", "encoding"):
        name = getattr(dtype, dim)
        parts.append(name)
    return "/".join(parts)


def _type_union(union: TypeUnion) -> str:
    return " | ".join(_type_triple(m) for m in union.members)


def _formal(formal: FormalArg) -> str:
    out = f"{formal.direction} {formal.name}"
    if not formal.is_string and not all(m.is_any() for m in formal.dataset_types.members):
        out += f" : {_type_union(formal.dataset_types)}"
    if formal.default is not None:
        if formal.is_string:
            out += f" = {_quote(formal.default)}"
        else:
            trailer = ':""' if formal.temporary_default else ""
            out += ' = @{%s:%s%s}' % (
                formal.direction,
                _quote(formal.default),
                trailer,
            )
    return out


def _template(parts: Iterable[Union[str, FormalRef]]) -> str:
    out = []
    for part in parts:
        if isinstance(part, FormalRef):
            if part.direction:
                out.append("${%s:%s}" % (part.direction, part.name))
            else:
                out.append("${%s}" % part.name)
        else:
            out.append(_quote(part))
    return "".join(out)


def unparse_transformation(tr: Transformation) -> str:
    """Render one transformation as a ``TR`` declaration."""
    versioned = tr.name if tr.version == "1.0" else f"{tr.name}@{tr.version}"
    header = f"TR {versioned}( " + ", ".join(
        _formal(f) for f in tr.signature.formals
    ) + " ) {"
    lines = [header]
    if isinstance(tr, SimpleTransformation):
        for template in tr.arguments:
            name = f" {template.name}" if template.name else ""
            lines.append(f"  argument{name} = {_template(template.parts)};")
        if tr.executable and tr.executable != tr.profile_hints.get("hints.pfnHint"):
            lines.append(f"  exec = {_quote(tr.executable)};")
        for var in sorted(tr.environment):
            lines.append(f"  env.{var} = {_template(tr.environment[var].parts)};")
        for key in sorted(tr.profile_hints):
            lines.append(f"  profile {key} = {_quote(tr.profile_hints[key])};")
    elif isinstance(tr, CompoundTransformation):
        for call in tr.calls:
            bindings = ", ".join(
                f"{name}={_binding(value)}"
                for name, value in call.bindings.items()
            )
            lines.append(f"  {call.target.vdl_text()}( {bindings} );")
    lines.append("}")
    return "\n".join(lines)


def _binding(value: Union[str, FormalRef]) -> str:
    if isinstance(value, FormalRef):
        if value.direction:
            return "${%s:%s}" % (value.direction, value.name)
        return "${%s}" % value.name
    return _quote(value)


def _actual(value: Union[str, DatasetArg]) -> str:
    if isinstance(value, DatasetArg):
        trailer = ':""' if value.temporary else ""
        return '@{%s:%s%s}' % (value.direction, _quote(value.dataset), trailer)
    return _quote(value)


def unparse_derivation(dv: Derivation) -> str:
    """Render one derivation as a ``DV`` declaration."""
    actuals = ", ".join(
        f"{name}={_actual(value)}" for name, value in dv.actuals.items()
    )
    return f"DV {dv.name}->{dv.transformation.vdl_text()}( {actuals} );"


def unparse(
    transformations: Iterable[Transformation] = (),
    derivations: Iterable[Derivation] = (),
) -> str:
    """Render a whole program: all TRs, then all DVs."""
    chunks = [unparse_transformation(tr) for tr in transformations]
    chunks.extend(unparse_derivation(dv) for dv in derivations)
    return "\n\n".join(chunks) + ("\n" if chunks else "")
