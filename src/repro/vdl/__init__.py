"""The Chimera Virtual Data Language front-end (Appendix A).

``parse`` turns VDL text into an AST; ``analyze``/``compile_vdl`` lower
it onto core schema objects; ``unparse*`` pretty-print objects back to
VDL; ``to_xml``/``from_xml`` implement the machine-to-machine format.
"""

from repro.vdl.ast import ProgramNode
from repro.vdl.lexer import Lexer, Token, tokenize
from repro.vdl.parser import Parser, parse
from repro.vdl.semantics import Analyzer, ProgramObjects, analyze, compile_vdl
from repro.vdl.unparser import (
    unparse,
    unparse_derivation,
    unparse_transformation,
)
from repro.vdl.xml_io import (
    derivation_from_xml,
    derivation_to_xml,
    from_xml,
    to_xml,
    transformation_from_xml,
    transformation_to_xml,
)

__all__ = [
    "Analyzer",
    "Lexer",
    "Parser",
    "ProgramNode",
    "ProgramObjects",
    "Token",
    "analyze",
    "compile_vdl",
    "derivation_from_xml",
    "derivation_to_xml",
    "from_xml",
    "parse",
    "to_xml",
    "tokenize",
    "transformation_from_xml",
    "transformation_to_xml",
    "unparse",
    "unparse_derivation",
    "unparse_transformation",
]
