"""Semantic analysis: lowering VDL ASTs onto core schema objects.

The analyzer enforces the rules the grammar cannot express:

* a TR body is either *simple* (argument/exec/env/profile statements)
  or *compound* (call statements) — never both;
* a simple TR must name an executable (``exec`` or a
  ``hints.pfnHint`` profile);
* every ``${...}`` reference must name a declared formal, and when the
  reference carries a direction it must be consistent with the formal's
  declaration (an ``inout`` formal may be referenced as input or
  output; others must match exactly);
* formal defaults must match the formal's kind (string for ``none``,
  ``@{...}`` for dataset formals);
* type expressions must resolve against the supplied
  :class:`~repro.core.types.TypeRegistry`.

Derivation-vs-transformation checks (arity, directions, dataset types)
happen later, at catalog registration time, because the callee may live
in a *different* catalog (Fig 2).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.derivation import DatasetArg, Derivation
from repro.core.naming import VDPRef
from repro.core.transformation import (
    ArgumentTemplate,
    CompoundTransformation,
    FormalArg,
    FormalRef,
    SimpleTransformation,
    Transformation,
    TransformationCall,
)
from repro.core.types import (
    DIMENSION_ROOTS,
    DIMENSIONS,
    DatasetType,
    TypeRegistry,
    TypeUnion,
    default_registry,
)
from repro.errors import UnknownTypeError, VDLSemanticError
from repro.vdl.ast import (
    ArgumentStmtNode,
    CallStmtNode,
    DatasetRefNode,
    DerivationDeclNode,
    EnvStmtNode,
    ExecStmtNode,
    FormalRefNode,
    ProfileStmtNode,
    ProgramNode,
    TransformationDeclNode,
    TypeExprNode,
)


def resolve_type_triple(
    registry: TypeRegistry, content: str, fmt: str, enc: str
) -> DatasetType:
    """Resolve one ``content/format/encoding`` triple against a registry.

    A ``-`` component means "dimension root"; the single-name form
    (``fmt == enc == "-"``) searches every dimension for the name.
    Raises :class:`~repro.errors.UnknownTypeError` on unregistered
    names.  Shared by the analyzer and :mod:`repro.analysis`.
    """
    if fmt == "-" and enc == "-":
        # Single-name form: find which dimension knows the name.
        for dim in DIMENSIONS:
            if registry.knows(dim, content):
                kwargs = {d: DIMENSION_ROOTS[d] for d in DIMENSIONS}
                kwargs[dim] = content
                return DatasetType(**kwargs)
        raise UnknownTypeError(
            f"type name {content!r} is not registered in any dimension"
        )
    resolved = {}
    for dim, name in (("content", content), ("format", fmt), ("encoding", enc)):
        if name == "-":
            resolved[dim] = DIMENSION_ROOTS[dim]
            continue
        if not registry.knows(dim, name):
            raise UnknownTypeError(
                f"type name {name!r} is not registered in dimension {dim!r}"
            )
        resolved[dim] = name
    return DatasetType(**resolved)


class ProgramObjects:
    """The result of analyzing one VDL program."""

    def __init__(
        self,
        transformations: list[Transformation],
        derivations: list[Derivation],
    ):
        self.transformations = transformations
        self.derivations = derivations

    def transformation(self, name: str) -> Transformation:
        for tr in self.transformations:
            if tr.name == name:
                return tr
        raise KeyError(name)

    def derivation(self, name: str) -> Derivation:
        for dv in self.derivations:
            if dv.name == name:
                return dv
        raise KeyError(name)


class Analyzer:
    """Lowers a :class:`ProgramNode` using a dataset-type registry."""

    def __init__(self, registry: Optional[TypeRegistry] = None):
        self._registry = registry or default_registry()

    def analyze(self, program: ProgramNode) -> ProgramObjects:
        transformations = [
            self._transformation(decl) for decl in program.transformations()
        ]
        derivations = [self._derivation(decl) for decl in program.derivations()]
        return ProgramObjects(transformations, derivations)

    # -- transformations -------------------------------------------------

    def _transformation(self, decl: TransformationDeclNode) -> Transformation:
        formals = [self._formal(decl, f) for f in decl.formals]
        has_calls = any(isinstance(s, CallStmtNode) for s in decl.body)
        has_simple = any(
            isinstance(s, (ArgumentStmtNode, ExecStmtNode, EnvStmtNode))
            for s in decl.body
        )
        if has_calls and has_simple:
            raise VDLSemanticError(
                f"TR {decl.name!r} mixes call statements with "
                f"argument/exec/env statements; a transformation is "
                f"either simple or compound",
                line=decl.line,
            )
        version = decl.version or "1.0"
        formal_dirs = {f.name: f.direction for f in formals}
        if has_calls:
            calls = [
                self._call(decl, stmt, formal_dirs)
                for stmt in decl.body
                if isinstance(stmt, CallStmtNode)
            ]
            return CompoundTransformation(
                name=decl.name, formals=formals, calls=calls, version=version
            )
        return self._simple(decl, formals, formal_dirs, version)

    def _formal(
        self, decl: TransformationDeclNode, node
    ) -> FormalArg:
        default: Optional[str] = None
        temporary = False
        if node.default is not None:
            if node.direction == "none":
                if not isinstance(node.default, str):
                    raise VDLSemanticError(
                        f"TR {decl.name!r}: string formal {node.name!r} "
                        f"default must be a string literal",
                        line=node.line,
                    )
                default = node.default
            else:
                if not isinstance(node.default, DatasetRefNode):
                    raise VDLSemanticError(
                        f"TR {decl.name!r}: dataset formal {node.name!r} "
                        f"default must be an @{{...}} reference",
                        line=node.line,
                    )
                if node.default.direction != node.direction:
                    raise VDLSemanticError(
                        f"TR {decl.name!r}: default of {node.name!r} has "
                        f"direction {node.default.direction!r}, formal is "
                        f"{node.direction!r}",
                        line=node.line,
                    )
                default = node.default.lfn
                temporary = node.default.temporary
        types = (
            self._type_union(decl, node.type_expr)
            if node.type_expr is not None
            else TypeUnion()
        )
        return FormalArg(
            name=node.name,
            direction=node.direction,
            dataset_types=types,
            default=default,
            temporary_default=temporary,
        )

    def _type_union(
        self, decl: TransformationDeclNode, expr: TypeExprNode
    ) -> TypeUnion:
        members = []
        for content, fmt, enc in expr.members:
            members.append(self._resolve_triple(decl, content, fmt, enc))
        return TypeUnion(members=tuple(members))

    def _resolve_triple(
        self, decl: TransformationDeclNode, content: str, fmt: str, enc: str
    ) -> DatasetType:
        try:
            return resolve_type_triple(self._registry, content, fmt, enc)
        except UnknownTypeError as exc:
            raise VDLSemanticError(
                f"TR {decl.name!r}: {exc}", line=decl.line
            ) from None

    def _simple(
        self,
        decl: TransformationDeclNode,
        formals: list[FormalArg],
        formal_dirs: dict[str, str],
        version: str,
    ) -> SimpleTransformation:
        executable = ""
        arguments: list[ArgumentTemplate] = []
        environment: dict[str, ArgumentTemplate] = {}
        profile_hints: dict[str, str] = {}
        for stmt in decl.body:
            if isinstance(stmt, ExecStmtNode):
                if executable:
                    raise VDLSemanticError(
                        f"TR {decl.name!r}: multiple exec statements",
                        line=stmt.line,
                    )
                executable = stmt.path
            elif isinstance(stmt, ArgumentStmtNode):
                parts = self._template_parts(decl, stmt.parts, formal_dirs)
                arguments.append(ArgumentTemplate(parts=parts, name=stmt.name))
            elif isinstance(stmt, EnvStmtNode):
                parts = self._template_parts(decl, stmt.parts, formal_dirs)
                environment[stmt.variable] = ArgumentTemplate(
                    parts=parts, name=None
                )
            elif isinstance(stmt, ProfileStmtNode):
                profile_hints[stmt.key] = stmt.value
        if not executable:
            executable = profile_hints.get("hints.pfnHint", "")
        if not executable:
            raise VDLSemanticError(
                f"TR {decl.name!r}: simple transformation requires an exec "
                f"statement or a hints.pfnHint profile",
                line=decl.line,
            )
        return SimpleTransformation(
            name=decl.name,
            formals=formals,
            executable=executable,
            arguments=arguments,
            environment=environment,
            profile_hints=profile_hints,
            version=version,
        )

    def _template_parts(
        self,
        decl: TransformationDeclNode,
        parts,
        formal_dirs: dict[str, str],
    ) -> tuple:
        out = []
        for part in parts:
            if isinstance(part, FormalRefNode):
                self._check_ref(decl, part, formal_dirs)
                out.append(FormalRef(name=part.name, direction=part.direction))
            else:
                out.append(part)
        return tuple(out)

    def _check_ref(
        self,
        decl: TransformationDeclNode,
        ref: FormalRefNode,
        formal_dirs: dict[str, str],
    ) -> None:
        declared = formal_dirs.get(ref.name)
        if declared is None:
            raise VDLSemanticError(
                f"TR {decl.name!r}: ${{...}} references undeclared formal "
                f"{ref.name!r}",
                line=ref.line,
            )
        if ref.direction is None:
            return
        if declared == "inout":
            if ref.direction in ("input", "output", "inout"):
                return
        elif ref.direction == declared:
            return
        raise VDLSemanticError(
            f"TR {decl.name!r}: formal {ref.name!r} is {declared!r} but "
            f"referenced as {ref.direction!r}",
            line=ref.line,
        )

    def _call(
        self,
        decl: TransformationDeclNode,
        stmt: CallStmtNode,
        formal_dirs: dict[str, str],
    ) -> TransformationCall:
        bindings = {}
        for name, value in stmt.bindings:
            if isinstance(value, FormalRefNode):
                self._check_ref(decl, value, formal_dirs)
                bindings[name] = FormalRef(
                    name=value.name, direction=value.direction
                )
            else:
                bindings[name] = value
        return TransformationCall(
            target=VDPRef.parse(stmt.target, default_kind="transformation"),
            bindings=bindings,
        )

    # -- derivations --------------------------------------------------------

    def _derivation(self, decl: DerivationDeclNode) -> Derivation:
        actuals: dict[str, Union[str, DatasetArg]] = {}
        for name, value in decl.actuals:
            if name in actuals:
                raise VDLSemanticError(
                    f"DV {decl.name!r}: duplicate actual {name!r}",
                    line=decl.line,
                )
            if isinstance(value, DatasetRefNode):
                actuals[name] = DatasetArg(
                    dataset=value.lfn,
                    direction=value.direction,
                    temporary=value.temporary,
                )
            else:
                actuals[name] = value
        return Derivation(
            name=decl.name,
            transformation=VDPRef.parse(
                decl.target, default_kind="transformation"
            ),
            actuals=actuals,
        )


def analyze(
    program: ProgramNode, registry: Optional[TypeRegistry] = None
) -> ProgramObjects:
    """Convenience wrapper over :class:`Analyzer`."""
    return Analyzer(registry).analyze(program)


def compile_vdl(
    source: str, registry: Optional[TypeRegistry] = None
) -> ProgramObjects:
    """Parse and analyze VDL ``source`` in one step."""
    from repro.vdl.parser import parse

    return analyze(parse(source), registry)
