"""Recursive-descent parser for the Virtual Data Language.

Grammar (Appendix A of the paper, with the type-expression extension)::

    program        := declaration*
    declaration    := tr_decl | dv_decl
    tr_decl        := "TR" qname "(" formal_list? ")" "{" body_stmt* "}"
    formal_list    := formal ("," formal)*
    formal         := direction IDENT (":" type_expr)? ("=" default)?
    direction      := "input" | "output" | "inout" | "none"
    type_expr      := type_triple ("|" type_triple)*
    type_triple    := tname "/" tname "/" tname | tname
    default        := STRING | dataset_ref
    body_stmt      := argument_stmt | exec_stmt | env_stmt
                    | profile_stmt | call_stmt
    argument_stmt  := "argument" IDENT? "=" template ";"
    template       := (STRING | formal_ref)+
    exec_stmt      := "exec" "=" STRING ";"
    env_stmt       := ENV_KEY "=" template ";"          # ident "env.VAR"
    profile_stmt   := "profile" IDENT "=" STRING ";"
    call_stmt      := target "(" binding_list? ")" ";"
    binding_list   := binding ("," binding)*
    binding        := IDENT "=" (STRING | formal_ref)
    dv_decl        := "DV" qname "->" target
                      "(" actual_list? ")" ";"
    actual_list    := actual ("," actual)*
    actual         := IDENT "=" (STRING | dataset_ref)
    formal_ref     := "${" (direction ":")? IDENT "}"
    dataset_ref    := "@{" direction ":" STRING (":" STRING)? "}"
    qname          := IDENT ("::" IDENT)*
    target         := qname | "vdp" ":" "/" "/" IDENT ("/" IDENT)*

``TR`` and ``DV`` are recognized case-insensitively, as are the
direction keywords.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import VDLSyntaxError
from repro.vdl.ast import (
    ArgumentStmtNode,
    BodyStmtNode,
    CallStmtNode,
    DatasetRefNode,
    DerivationDeclNode,
    EnvStmtNode,
    ExecStmtNode,
    FormalDeclNode,
    FormalRefNode,
    ProfileStmtNode,
    ProgramNode,
    TemplatePartNode,
    TransformationDeclNode,
    TypeExprNode,
)
from repro.vdl.lexer import (
    TT_ARROW,
    TT_AT_LBRACE,
    TT_COLON,
    TT_COMMA,
    TT_DOLLAR_LBRACE,
    TT_EOF,
    TT_EQUALS,
    TT_IDENT,
    TT_LBRACE,
    TT_LPAREN,
    TT_PIPE,
    TT_RBRACE,
    TT_RPAREN,
    TT_SEMI,
    TT_SLASH,
    TT_STRING,
    Token,
    tokenize,
)

_DIRECTIONS = ("input", "output", "inout", "none")


class Parser:
    """Parses one VDL compilation unit into a :class:`ProgramNode`."""

    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._index = 0

    # -- public ----------------------------------------------------------

    def parse(self) -> ProgramNode:
        declarations = []
        while not self._at(TT_EOF):
            token = self._peek()
            keyword = token.value.lower() if token.type == TT_IDENT else ""
            if keyword == "tr":
                declarations.append(self._tr_decl())
            elif keyword == "dv":
                declarations.append(self._dv_decl())
            else:
                raise VDLSyntaxError(
                    f"expected TR or DV declaration, got {token.value!r}",
                    token.line,
                    token.column,
                )
        return ProgramNode(declarations=tuple(declarations))

    # -- declarations ------------------------------------------------------

    def _tr_decl(self) -> TransformationDeclNode:
        keyword = self._expect(TT_IDENT)
        name = self._qname()
        version: Optional[str] = None
        if "@" in name:
            name, _, version = name.rpartition("@")
        self._expect(TT_LPAREN)
        formals = []
        if not self._at(TT_RPAREN):
            formals.append(self._formal())
            while self._accept(TT_COMMA):
                formals.append(self._formal())
        self._expect(TT_RPAREN)
        self._expect(TT_LBRACE)
        body: list[BodyStmtNode] = []
        while not self._at(TT_RBRACE):
            body.append(self._body_stmt())
        self._expect(TT_RBRACE)
        return TransformationDeclNode(
            name=name,
            formals=tuple(formals),
            body=tuple(body),
            version=version,
            line=keyword.line,
        )

    def _formal(self) -> FormalDeclNode:
        token = self._expect(TT_IDENT)
        direction = token.value.lower()
        if direction not in _DIRECTIONS:
            raise VDLSyntaxError(
                f"expected argument direction, got {token.value!r}",
                token.line,
                token.column,
            )
        name = self._expect(TT_IDENT).value
        type_expr = None
        if self._at(TT_COLON) and self._peek(1).type in (TT_IDENT,):
            # Disambiguate from '::' (handled inside qname) — a single
            # colon after the name introduces a type expression.
            self._expect(TT_COLON)
            type_expr = self._type_expr()
        default: Optional[Union[str, DatasetRefNode]] = None
        if self._accept(TT_EQUALS):
            if self._at(TT_STRING):
                default = self._expect(TT_STRING).value
            elif self._at(TT_AT_LBRACE):
                default = self._dataset_ref()
            else:
                bad = self._peek()
                raise VDLSyntaxError(
                    "formal default must be a string or @{...} reference",
                    bad.line,
                    bad.column,
                )
        return FormalDeclNode(
            direction=direction,
            name=name,
            type_expr=type_expr,
            default=default,
            line=token.line,
        )

    def _type_expr(self) -> TypeExprNode:
        members = [self._type_triple()]
        while self._accept(TT_PIPE):
            members.append(self._type_triple())
        return TypeExprNode(members=tuple(members))

    def _type_triple(self) -> tuple[str, str, str]:
        content = self._expect(TT_IDENT).value
        if not self._accept(TT_SLASH):
            return (content, "-", "-")
        fmt = self._expect(TT_IDENT).value
        self._expect(TT_SLASH)
        enc = self._expect(TT_IDENT).value
        return (content, fmt, enc)

    def _body_stmt(self) -> BodyStmtNode:
        token = self._peek()
        if token.type != TT_IDENT:
            raise VDLSyntaxError(
                f"expected a body statement, got {token.value!r}",
                token.line,
                token.column,
            )
        keyword = token.value
        lowered = keyword.lower()
        if lowered == "argument":
            return self._argument_stmt()
        if lowered == "exec":
            return self._exec_stmt()
        if lowered == "profile":
            return self._profile_stmt()
        if lowered.startswith("env."):
            return self._env_stmt()
        return self._call_stmt()

    def _argument_stmt(self) -> ArgumentStmtNode:
        keyword = self._expect(TT_IDENT)
        name: Optional[str] = None
        if self._at(TT_IDENT):
            name = self._expect(TT_IDENT).value
        self._expect(TT_EQUALS)
        parts = self._template()
        self._expect(TT_SEMI)
        return ArgumentStmtNode(parts=parts, name=name, line=keyword.line)

    def _exec_stmt(self) -> ExecStmtNode:
        keyword = self._expect(TT_IDENT)
        self._expect(TT_EQUALS)
        path = self._expect(TT_STRING).value
        self._expect(TT_SEMI)
        return ExecStmtNode(path=path, line=keyword.line)

    def _env_stmt(self) -> EnvStmtNode:
        keyword = self._expect(TT_IDENT)
        variable = keyword.value[len("env."):]
        if not variable:
            raise VDLSyntaxError(
                "env statement requires a variable name (env.VAR = ...)",
                keyword.line,
                keyword.column,
            )
        self._expect(TT_EQUALS)
        parts = self._template()
        self._expect(TT_SEMI)
        return EnvStmtNode(variable=variable, parts=parts, line=keyword.line)

    def _profile_stmt(self) -> ProfileStmtNode:
        keyword = self._expect(TT_IDENT)
        key = self._expect(TT_IDENT).value
        self._expect(TT_EQUALS)
        value = self._expect(TT_STRING).value
        self._expect(TT_SEMI)
        return ProfileStmtNode(key=key, value=value, line=keyword.line)

    def _call_stmt(self) -> CallStmtNode:
        token = self._peek()
        target = self._target()
        self._expect(TT_LPAREN)
        bindings: list[tuple[str, Union[str, FormalRefNode]]] = []
        if not self._at(TT_RPAREN):
            bindings.append(self._binding())
            while self._accept(TT_COMMA):
                bindings.append(self._binding())
        self._expect(TT_RPAREN)
        self._expect(TT_SEMI)
        return CallStmtNode(
            target=target, bindings=tuple(bindings), line=token.line
        )

    def _binding(self) -> tuple[str, Union[str, FormalRefNode]]:
        name = self._expect(TT_IDENT).value
        self._expect(TT_EQUALS)
        if self._at(TT_STRING):
            return name, self._expect(TT_STRING).value
        if self._at(TT_DOLLAR_LBRACE):
            return name, self._formal_ref()
        bad = self._peek()
        raise VDLSyntaxError(
            "call binding must be a string or ${...} reference",
            bad.line,
            bad.column,
        )

    def _dv_decl(self) -> DerivationDeclNode:
        keyword = self._expect(TT_IDENT)
        name = self._qname()
        self._expect(TT_ARROW)
        target = self._target()
        self._expect(TT_LPAREN)
        actuals: list[tuple[str, Union[str, DatasetRefNode]]] = []
        if not self._at(TT_RPAREN):
            actuals.append(self._actual())
            while self._accept(TT_COMMA):
                actuals.append(self._actual())
        self._expect(TT_RPAREN)
        self._expect(TT_SEMI)
        return DerivationDeclNode(
            name=name, target=target, actuals=tuple(actuals), line=keyword.line
        )

    def _actual(self) -> tuple[str, Union[str, DatasetRefNode]]:
        name = self._expect(TT_IDENT).value
        self._expect(TT_EQUALS)
        if self._at(TT_STRING):
            return name, self._expect(TT_STRING).value
        if self._at(TT_AT_LBRACE):
            return name, self._dataset_ref()
        bad = self._peek()
        raise VDLSyntaxError(
            "derivation actual must be a string or @{...} reference",
            bad.line,
            bad.column,
        )

    # -- leaf constructs ---------------------------------------------------

    def _template(self) -> tuple[TemplatePartNode, ...]:
        parts: list[TemplatePartNode] = []
        while True:
            if self._at(TT_STRING):
                parts.append(self._expect(TT_STRING).value)
            elif self._at(TT_DOLLAR_LBRACE):
                parts.append(self._formal_ref())
            else:
                break
        if not parts:
            bad = self._peek()
            raise VDLSyntaxError(
                "expected a template (string literals and ${...} refs)",
                bad.line,
                bad.column,
            )
        return tuple(parts)

    def _formal_ref(self) -> FormalRefNode:
        opener = self._expect(TT_DOLLAR_LBRACE)
        first = self._expect(TT_IDENT).value
        direction: Optional[str] = None
        name = first
        if self._accept(TT_COLON):
            direction = first.lower()
            if direction not in _DIRECTIONS:
                raise VDLSyntaxError(
                    f"invalid direction {first!r} in ${{...}} reference",
                    opener.line,
                    opener.column,
                )
            name = self._expect(TT_IDENT).value
        self._expect(TT_RBRACE)
        return FormalRefNode(name=name, direction=direction, line=opener.line)

    def _dataset_ref(self) -> DatasetRefNode:
        opener = self._expect(TT_AT_LBRACE)
        direction = self._expect(TT_IDENT).value.lower()
        if direction not in _DIRECTIONS or direction == "none":
            raise VDLSyntaxError(
                f"invalid direction {direction!r} in @{{...}} reference",
                opener.line,
                opener.column,
            )
        self._expect(TT_COLON)
        lfn = self._expect(TT_STRING).value
        temporary = False
        if self._accept(TT_COLON):
            trailer = self._expect(TT_STRING).value
            if trailer:
                raise VDLSyntaxError(
                    "third component of @{...} must be the empty string",
                    opener.line,
                    opener.column,
                )
            temporary = True
        self._expect(TT_RBRACE)
        return DatasetRefNode(
            direction=direction, lfn=lfn, temporary=temporary, line=opener.line
        )

    def _qname(self) -> str:
        parts = [self._expect(TT_IDENT).value]
        while (
            self._at(TT_COLON)
            and self._peek(1).type == TT_COLON
            and self._peek(2).type == TT_IDENT
        ):
            self._expect(TT_COLON)
            self._expect(TT_COLON)
            parts.append(self._expect(TT_IDENT).value)
        return "::".join(parts)

    def _target(self) -> str:
        """A call/derivation target: qname or vdp://host/path."""
        first = self._peek()
        if (
            first.type == TT_IDENT
            and first.value.lower() == "vdp"
            and self._peek(1).type == TT_COLON
            and self._peek(2).type == TT_SLASH
            and self._peek(3).type == TT_SLASH
        ):
            self._expect(TT_IDENT)
            self._expect(TT_COLON)
            self._expect(TT_SLASH)
            self._expect(TT_SLASH)
            host = self._expect(TT_IDENT).value
            segments = []
            while self._accept(TT_SLASH):
                segments.append(self._qname())
            if not segments:
                raise VDLSyntaxError(
                    "vdp:// reference requires an object name",
                    first.line,
                    first.column,
                )
            return f"vdp://{host}/" + "/".join(segments)
        return self._qname()

    # -- token plumbing ------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, token_type: str) -> bool:
        return self._peek().type == token_type

    def _accept(self, token_type: str) -> Optional[Token]:
        if self._at(token_type):
            token = self._tokens[self._index]
            self._index += 1
            return token
        return None

    def _expect(self, token_type: str) -> Token:
        token = self._accept(token_type)
        if token is None:
            bad = self._peek()
            raise VDLSyntaxError(
                f"expected {token_type}, got {bad.type} {bad.value!r}",
                bad.line,
                bad.column,
            )
        return token


def parse(source: str) -> ProgramNode:
    """Parse VDL ``source`` into a :class:`ProgramNode`."""
    return Parser(source).parse()
