"""The virtual data system facade: the Fig 5 process flow in one object.

Wires a catalog, a simulated grid, the planner, the estimator and the
executors into the six facets the paper names — **composition**,
**planning**, **estimation**, **derivation**, **discovery**, and
**sharing** — so applications and examples drive the whole stack
through one coherent API::

    vds = VirtualDataSystem.with_grid(sites={"anl": 64, "uc": 32})
    vds.define(VDL_TEXT)                    # composition
    plan = vds.plan("result")               # planning
    estimate = vds.estimate(plan)           # estimation
    result = vds.materialize("result")      # derivation
    hits = vds.discover_datasets("run*")    # discovery
    vds.share_with(other_vds.catalog)       # sharing
"""

from __future__ import annotations

from typing import Any, Optional

from repro.catalog.base import VirtualDataCatalog
from repro.catalog.federation import FederatedIndex
from repro.catalog.memory import MemoryCatalog
from repro.catalog.resolver import CatalogNetwork, ReferenceResolver
from repro.core.dataset import Dataset
from repro.core.types import DatasetType
from repro.errors import PlanningError
from repro.estimator.cost import Estimator
from repro.estimator.workflow import WorkflowEstimate, estimate_plan
from repro.executor.grid_executor import GridExecutor
from repro.grid.gram import GridExecutionService
from repro.grid.network import NetworkTopology, uniform_topology
from repro.grid.replica_catalog import ReplicaLocationService
from repro.grid.simulator import Simulator
from repro.grid.site import Site
from repro.observability.instrument import NULL, Instrumentation
from repro.planner.dag import Plan
from repro.planner.request import MaterializationRequest
from repro.planner.scheduler import WorkflowResult
from repro.planner.strategies import ProcedureRegistry, SiteSelector
from repro.provenance.lineage import LineageReport, lineage_report
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.policies import RecoveryConfig
from repro.resilience.rescue import RescueFile


class VirtualDataSystem:
    """One community's virtual data system instance."""

    def __init__(
        self,
        catalog: Optional[VirtualDataCatalog] = None,
        authority: Optional[str] = None,
        instrumentation: Optional[Instrumentation] = None,
    ):
        self.obs = instrumentation or NULL
        self.catalog = catalog or MemoryCatalog(
            authority=authority, instrumentation=self.obs
        )
        if catalog is not None and self.obs.enabled:
            # Adopt a caller-supplied catalog into this system's
            # observability scope unless it already has its own.
            if not self.catalog.obs.enabled:
                self.catalog.obs = self.obs
        self.network: Optional[NetworkTopology] = None
        self.simulator: Optional[Simulator] = None
        self.grid: Optional[GridExecutionService] = None
        self.selector: Optional[SiteSelector] = None
        self.executor: Optional[GridExecutor] = None
        self.estimator = Estimator(self.catalog, instrumentation=self.obs)
        self.catalogs = CatalogNetwork()
        self.resolver = ReferenceResolver(self.catalog, self.catalogs)

    # -- construction -----------------------------------------------------------

    @classmethod
    def with_grid(
        cls,
        sites: dict[str, int],
        authority: Optional[str] = None,
        catalog: Optional[VirtualDataCatalog] = None,
        bandwidth: float = 10e6,
        host_speed: float = 1.0,
        failure_rate: float = 0.0,
        seed: int = 0,
        instrumentation: Optional[Instrumentation] = None,
        fault_plan: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryConfig] = None,
    ) -> "VirtualDataSystem":
        """Build a system attached to a fresh simulated grid.

        ``sites`` maps site names to host counts — e.g. the paper's
        SDSS testbed is ``{"anl": 200, "uc": 200, "uw": 200,
        "ufl": 200}`` (four sites, ~800 hosts).

        ``fault_plan`` attaches a deterministic
        :class:`~repro.resilience.FaultInjector` to the grid (outages,
        transfer faults, stragglers, corruption); ``recovery`` sets the
        scheduler's recovery posture (backoff, breakers, failover —
        see :meth:`~repro.resilience.RecoveryConfig.hardened`).

        Passing an :class:`~repro.observability.Instrumentation`
        threads one tracer + metrics registry through the catalog,
        planner, scheduler, executor and grid, with spans stamped in
        both wall and simulation time.
        """
        vds = cls(
            catalog=catalog,
            authority=authority,
            instrumentation=instrumentation,
        )
        vds.simulator = Simulator(instrumentation=vds.obs)
        vds.obs.bind_simulator(vds.simulator)
        vds.network = uniform_topology(sorted(sites), bandwidth=bandwidth)
        vds.network.obs = vds.obs
        site_objects = {
            name: Site(name, hosts=count, speed=host_speed)
            for name, count in sites.items()
        }
        replicas = ReplicaLocationService(vds.network)
        injector = None
        if fault_plan is not None and not fault_plan.is_null:
            injector = FaultInjector(fault_plan, instrumentation=vds.obs)
        vds.grid = GridExecutionService(
            vds.simulator,
            site_objects,
            vds.network,
            replicas,
            failure_rate=failure_rate,
            seed=seed,
            instrumentation=vds.obs,
            injector=injector,
        )
        vds.selector = SiteSelector(
            site_objects, vds.network, replicas, ProcedureRegistry()
        )
        vds.executor = GridExecutor(
            vds.catalog,
            vds.grid,
            vds.selector,
            estimator=vds.estimator,
            instrumentation=vds.obs,
            recovery=recovery,
        )
        return vds

    @property
    def replicas(self) -> ReplicaLocationService:
        self._require_grid()
        return self.grid.replicas

    def _require_grid(self) -> None:
        if self.grid is None:
            raise PlanningError(
                "this VirtualDataSystem has no grid; build it with "
                "VirtualDataSystem.with_grid(...)"
            )

    # -- composition (§5.1) -------------------------------------------------------

    def define(self, vdl_source: str, replace: bool = False) -> "VirtualDataSystem":
        """Register VDL definitions (transformations and derivations)."""
        with self.obs.span("vds.define"):
            self.catalog.define(vdl_source, replace=replace)
        return self

    def lint(self, source: Optional[str] = None, incremental: bool = False):
        """Statically analyze VDL ``source``, or the whole catalog.

        Returns a :class:`repro.analysis.LintResult`; see
        ``docs/LINTING.md`` for the diagnostic codes.  With
        ``incremental=True`` (catalog mode only) the rules run over the
        live analysis context maintained by the catalog's incremental
        analyzer instead of re-exporting and re-parsing the VDL.
        """
        from repro.analysis import Linter

        linter = Linter(obs=self.obs)
        if source is None:
            return linter.lint_catalog(self.catalog, incremental=incremental)
        return linter.lint_source(source, catalog=self.catalog)

    def analyze(self, passes: Optional[tuple[str, ...]] = None):
        """Whole-graph dataflow analysis of the catalog.

        Runs the incremental analyzer's passes (staleness, dead-data,
        type-flow, output-conflict — or the subset named in
        ``passes``) and returns a :class:`repro.analysis.LintResult`.
        Repeated calls after catalog mutations re-solve only the dirty
        region of the derivation graph.
        """
        from repro.analysis.linter import LintResult

        analyzer = self.catalog.live_analyzer()
        result = LintResult(file=analyzer.file)
        result.diagnostics = analyzer.diagnostics(passes=passes)
        return result

    def seed_dataset(self, name: str, site: str, size: int) -> None:
        """Place a raw source dataset on the grid (and in the catalog)."""
        self._require_grid()
        site_obj = self.grid.sites[site]
        site_obj.storage.store(name, size, self.simulator.now)
        self.replicas.register(name, site, size)
        if not self.catalog.has_dataset(name):
            self.catalog.add_dataset(Dataset(name=name, attributes={"size": size}))

    # -- planning (§5.2) -------------------------------------------------------------

    def plan(
        self,
        targets: str | tuple[str, ...],
        reuse: str = "cost",
        pattern: str = "ship-data",
        max_hosts: Optional[int] = None,
    ) -> Plan:
        """Expand a materialization request into a workflow DAG."""
        request = MaterializationRequest(
            targets=targets if not isinstance(targets, str) else (targets,),
            reuse=reuse,
            pattern=pattern,
            max_hosts=max_hosts,
        )
        with self.obs.span("vds.plan"), self.obs.phase("plan"):
            if self.executor is not None:
                return self.executor.plan(request)
            from repro.planner.dag import Planner

            return Planner(
                self.catalog,
                cpu_estimate=self.estimator.estimate_derivation,
                instrumentation=self.obs,
            ).plan(request)

    # -- estimation (§5.3) ---------------------------------------------------------------

    def estimate(
        self, plan: Plan, host_count: Optional[int] = None
    ) -> WorkflowEstimate:
        """Predict a plan's cost before committing resources."""
        if host_count is None:
            if self.grid is not None:
                host_count = sum(
                    s.compute.host_count for s in self.grid.sites.values()
                )
            else:
                host_count = 1
        with self.obs.span("vds.estimate", steps=len(plan.steps)):
            return estimate_plan(
                plan, host_count=host_count, include_intermediates=True
            )

    def can_meet_deadline(self, targets: str, deadline_seconds: float) -> bool:
        """The §5.3 interactive feasibility query."""
        return self.estimate(self.plan(targets)).meets_deadline(deadline_seconds)

    def train_on_history(self, history) -> dict[str, Any]:
        """Refit cost models from a run-history metastore.

        ``history`` is a
        :class:`~repro.observability.history.HistoryStore`; every
        successful invocation it has ingested feeds the per-
        transformation fits (see
        :meth:`~repro.estimator.cost.Estimator.train_on_history`).
        """
        return self.estimator.train_on_history(history)

    def apply_site_health(
        self, health, scale: float = 60.0
    ) -> dict[str, float]:
        """Feed observed grid health into site selection.

        ``health`` is either a
        :class:`~repro.observability.health.HealthReport` or an
        already-computed ``{site: penalty_seconds}`` mapping.  The
        penalties are installed on this system's
        :class:`~repro.planner.strategies.SiteSelector` as soft
        phantom queue time: degraded sites are avoided when
        alternatives exist but remain usable — the closing of the
        history → planning feedback loop.  Returns the applied table.
        """
        self._require_grid()
        if isinstance(health, dict):
            penalties = dict(health)
        else:
            from repro.observability.health import health_penalties

            penalties = health_penalties(health, scale=scale)
        known = {s: p for s, p in penalties.items() if s in self.selector.sites}
        self.selector.set_penalties(known)
        if self.obs.enabled:
            for site, seconds in sorted(known.items()):
                self.obs.gauge(
                    "planner.site.penalty",
                    seconds,
                    site=site,
                    help="health-derived soft site penalty (seconds)",
                )
        return known

    # -- derivation (§5.4) ----------------------------------------------------------------

    def materialize(
        self,
        targets: str | tuple[str, ...],
        reuse: str = "cost",
        pattern: str = "ship-data",
        max_hosts: Optional[int] = None,
        rescue: Optional[RescueFile | str] = None,
        until: Optional[float] = None,
    ) -> WorkflowResult:
        """Plan and execute on the grid, recording full provenance.

        ``rescue`` resumes a killed/failed run from a rescue file
        (only unfinished steps re-execute); ``until`` kills this run
        at that simulation time and returns the partial result.
        """
        self._require_grid()
        request = MaterializationRequest(
            targets=targets if not isinstance(targets, str) else (targets,),
            reuse=reuse,
            pattern=pattern,
            max_hosts=max_hosts,
        )
        with self.obs.span(
            "vds.materialize",
            targets=",".join(request.targets),
            reuse=reuse,
            pattern=pattern,
        ), self.obs.phase("schedule"):
            # The grid path plans, selects sites and dispatches inside
            # WorkflowExecutor.materialize — profile it as the
            # scheduling phase (sim-time execution costs no wall time).
            return self.executor.materialize(
                request, rescue=rescue, until=until
            )

    # -- discovery (§5.5) ---------------------------------------------------------------------

    def discover_datasets(
        self,
        name_glob: Optional[str] = None,
        conforms_to: Optional[DatasetType] = None,
        attributes: Optional[dict[str, Any]] = None,
    ) -> list[Dataset]:
        return self.catalog.find_datasets(
            name_glob=name_glob,
            conforms_to=conforms_to,
            attributes=attributes,
        )

    def discover_transformations(self, **kwargs):
        return self.catalog.find_transformations(**kwargs)

    def lineage(self, dataset_name: str) -> LineageReport:
        """The complete audit trail of a dataset (§2 Provenance)."""
        return lineage_report(self.catalog, dataset_name)

    # -- sharing (Fig 3/4) --------------------------------------------------------------------

    def share_with(self, other: VirtualDataCatalog) -> None:
        """Make another community catalog reachable for resolution."""
        self.catalogs.register(other)
        if other.authority not in self.resolver.scope_chain:
            self.resolver.scope_chain.append(other.authority)

    def build_index(
        self, name: str, depth: str = "shallow", mode: str = "live"
    ) -> FederatedIndex:
        """A federated index over this catalog plus all shared ones."""
        index = FederatedIndex(name, depth=depth, mode=mode)
        if self.catalog.authority:
            index.attach(self.catalog)
        for catalog in self.catalogs:
            index.attach(catalog)
        return index
