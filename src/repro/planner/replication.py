"""Dynamic replication strategies for a high-performance data grid.

Implements the strategy family the paper's planning section leans on
("make decisions to replicate popular datasets and procedures either on
demand and/or via pre-staging [18, 19]" — Ranganathan & Foster's
replication studies).  The model follows those papers: a hierarchical
grid (one tier-0 root that owns all data, tier-1 regional centres,
leaf client sites), clients issue file accesses with skewed popularity
and geographic locality, and a strategy decides where copies live:

* ``none`` — all reads hit the root;
* ``caching`` — the requesting leaf keeps an LRU-bounded local copy;
* ``cascading`` — popular files cascade one tier down the path toward
  the requesting client each time their access count passes a
  threshold at the current holder;
* ``best-client`` — when a file's accesses pass the threshold, a copy
  is pushed to its single most frequent client;
* ``cascading-caching`` — cascading plus client-side caching (the
  best performer in [19]).

The REPL benchmark reports mean response time and wide-area bytes per
strategy; the expected shape (cascading/caching beat none under skewed
access) mirrors the cited results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import PlanningError
from repro.grid.network import NetworkTopology
from repro.grid.site import StorageElement

STRATEGIES = ("none", "caching", "cascading", "best-client", "cascading-caching")


@dataclass
class HierarchyConfig:
    """Shape and physics of the simulated hierarchy."""

    tier1_count: int = 4
    leaves_per_tier1: int = 3
    file_count: int = 200
    file_size: int = 1_000_000_000  # 1 GB, as in [19]
    root_bandwidth: float = 20e6  # root <-> tier1
    regional_bandwidth: float = 50e6  # tier1 <-> leaf
    leaf_storage: int = 20_000_000_000
    tier1_storage: int = 100_000_000_000
    replication_threshold: int = 6
    zipf_exponent: float = 1.2
    #: Probability that a client re-draws from its home region's
    #: preferred file subset (geographic locality of interest).
    locality: float = 0.7


@dataclass
class ReplicationResult:
    """Metrics of one simulated access trace under one strategy."""

    strategy: str
    accesses: int
    mean_response_seconds: float
    total_wide_area_bytes: int
    replicas_created: int
    evictions: int

    def row(self) -> tuple:
        return (
            self.strategy,
            self.accesses,
            round(self.mean_response_seconds, 3),
            self.total_wide_area_bytes,
            self.replicas_created,
            self.evictions,
        )


class ReplicationSimulation:
    """One hierarchy + one access trace, replayable per strategy."""

    def __init__(self, config: Optional[HierarchyConfig] = None, seed: int = 7):
        self.config = config or HierarchyConfig()
        self._seed = seed
        cfg = self.config
        self.root = "tier0"
        self.tier1 = [f"tier1-{i}" for i in range(cfg.tier1_count)]
        self.leaves = [
            f"leaf-{i}-{j}"
            for i in range(cfg.tier1_count)
            for j in range(cfg.leaves_per_tier1)
        ]
        self.parent = {self.root: None}
        for i, t1 in enumerate(self.tier1):
            self.parent[t1] = self.root
            for j in range(cfg.leaves_per_tier1):
                self.parent[f"leaf-{i}-{j}"] = t1
        self.network = NetworkTopology(fully_connected=False)
        for t1 in self.tier1:
            self.network.connect(self.root, t1, bandwidth=cfg.root_bandwidth)
        for leaf in self.leaves:
            self.network.connect(
                self.parent[leaf], leaf, bandwidth=cfg.regional_bandwidth
            )
        self.files = [f"file-{k:04d}" for k in range(cfg.file_count)]
        self.trace = self._generate_trace()

    # -- workload -----------------------------------------------------------

    def _generate_trace(self, accesses_per_leaf: int = 50) -> list[tuple[str, str]]:
        """A deterministic (client, file) access trace.

        Popularity is Zipf-like; each region has a preferred slice of
        the file space it draws from with probability ``locality``.
        """
        cfg = self.config
        rng = random.Random(self._seed)
        weights = [1.0 / (rank + 1) ** cfg.zipf_exponent for rank in
                   range(cfg.file_count)]
        trace: list[tuple[str, str]] = []
        slice_size = max(1, cfg.file_count // cfg.tier1_count)
        for leaf in self.leaves:
            region = int(leaf.split("-")[1])
            lo = region * slice_size
            hi = min(cfg.file_count, lo + slice_size)
            region_weights = [
                w if lo <= k < hi else 0.0 for k, w in enumerate(weights)
            ]
            for _ in range(accesses_per_leaf):
                pool = (
                    region_weights
                    if rng.random() < cfg.locality and sum(region_weights)
                    else weights
                )
                file = rng.choices(self.files, weights=pool, k=1)[0]
                trace.append((leaf, file))
        rng.shuffle(trace)
        return trace

    # -- path helpers ------------------------------------------------------------

    def path_to_root(self, node: str) -> list[str]:
        """Nodes from ``node`` up to and including the root."""
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path

    def _hop_time(self, child: str, size: int) -> float:
        return self.network.transfer_time(size, self.parent[child], child)

    # -- execution --------------------------------------------------------------

    def run(self, strategy: str) -> ReplicationResult:
        """Replay the trace under ``strategy`` and collect metrics."""
        if strategy not in STRATEGIES:
            raise PlanningError(
                f"unknown replication strategy {strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        cfg = self.config
        holders: dict[str, set[str]] = {f: {self.root} for f in self.files}
        stores: dict[str, StorageElement] = {}
        for t1 in self.tier1:
            stores[t1] = StorageElement(t1, capacity=cfg.tier1_storage)
        for leaf in self.leaves:
            stores[leaf] = StorageElement(leaf, capacity=cfg.leaf_storage)
        access_counts: dict[tuple[str, str], int] = {}  # (holder,file) -> n
        client_counts: dict[tuple[str, str], int] = {}  # (file,leaf) -> n
        total_seconds = 0.0
        wide_area_bytes = 0
        replicas_created = 0
        clock = 0.0

        def place(file: str, node: str) -> None:
            nonlocal replicas_created
            if node == self.root or node in holders[file]:
                return
            evicted = stores[node].store(file, cfg.file_size, clock)
            for victim in evicted:
                holders[victim].discard(node)
            holders[file].add(node)
            replicas_created += 1

        caching = strategy in ("caching", "cascading-caching")
        cascading = strategy in ("cascading", "cascading-caching")
        best_client = strategy == "best-client"

        for leaf, file in self.trace:
            clock += 1.0
            path = self.path_to_root(leaf)
            # Nearest holder along the path to the root.
            source_index = next(
                i for i, node in enumerate(path) if node in holders[file]
            )
            source = path[source_index]
            if source == leaf:
                stores[leaf].touch(file, clock)
                response = 0.01  # local disk hit
            else:
                response = 0.0
                for i in range(source_index, 0, -1):
                    hop_child = path[i - 1]
                    response += self.network.record_transfer(
                        cfg.file_size, path[i], hop_child
                    )
                    wide_area_bytes += cfg.file_size
                # Intermediate tier nodes do not implicitly keep copies.
            client_counts[(file, leaf)] = client_counts.get((file, leaf), 0) + 1
            access_counts[(source, file)] = (
                access_counts.get((source, file), 0) + 1
            )
            if caching and source != leaf:
                place(file, leaf)
            if cascading and source != leaf:
                if access_counts[(source, file)] >= cfg.replication_threshold:
                    child_toward_client = path[source_index - 1]
                    if child_toward_client != leaf or caching:
                        place(file, child_toward_client)
                    elif child_toward_client in stores:
                        place(file, child_toward_client)
                    access_counts[(source, file)] = 0
            if best_client and source != leaf:
                total_for_file = sum(
                    n for (f, _), n in client_counts.items() if f == file
                )
                if total_for_file >= cfg.replication_threshold:
                    best_leaf = max(
                        (
                            (n, client)
                            for (f, client), n in client_counts.items()
                            if f == file
                        ),
                    )[1]
                    place(file, best_leaf)
                    for key in [
                        k for k in client_counts if k[0] == file
                    ]:
                        client_counts[key] = 0
            total_seconds += response

        evictions = sum(se.evictions for se in stores.values())
        return ReplicationResult(
            strategy=strategy,
            accesses=len(self.trace),
            mean_response_seconds=total_seconds / len(self.trace),
            total_wide_area_bytes=wide_area_bytes,
            replicas_created=replicas_created,
            evictions=evictions,
        )

    def compare(self, strategies: tuple[str, ...] = STRATEGIES) -> list[ReplicationResult]:
        """Run every strategy on the same trace (network stats reset)."""
        results = []
        for strategy in strategies:
            self.network.reset_stats()
            results.append(self.run(strategy))
        return results
