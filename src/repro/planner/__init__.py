"""Request planning: DAG expansion, site selection, scheduling (§5.2)."""

from repro.planner.dag import Plan, PlanStep, Planner
from repro.planner.replication import (
    HierarchyConfig,
    ReplicationResult,
    ReplicationSimulation,
    STRATEGIES,
)
from repro.planner.request import (
    MaterializationRequest,
    REUSE_POLICIES,
    SHIPPING_PATTERNS,
)
from repro.planner.scheduler import (
    StepOutcome,
    WorkflowResult,
    WorkflowScheduler,
)
from repro.planner.strategies import (
    ProcedureRegistry,
    SiteChoice,
    SiteSelector,
)

__all__ = [
    "HierarchyConfig",
    "MaterializationRequest",
    "Plan",
    "PlanStep",
    "Planner",
    "ProcedureRegistry",
    "REUSE_POLICIES",
    "ReplicationResult",
    "ReplicationSimulation",
    "SHIPPING_PATTERNS",
    "STRATEGIES",
    "SiteChoice",
    "SiteSelector",
    "StepOutcome",
    "WorkflowResult",
    "WorkflowScheduler",
]
