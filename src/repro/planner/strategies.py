"""Site selection: the four data/procedure shipping patterns (§5.2).

"The application of procedures to datasets can be performed in a
variety of ways, with the following being common patterns:
1. Procedure collocated with data. ... 2. Ship procedure to data. ...
3. Ship data to procedure. ... 4. Ship procedure and data to computer."

:class:`SiteSelector` scores candidate sites for one plan step under a
chosen pattern, accounting for where input replicas live, where the
procedure is installed, queue depth at each compute element, and the
network cost of whatever must move.  The SHIP benchmark sweeps dataset
size against compute demand to map which pattern wins where.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import PlanningError
from repro.grid.network import NetworkTopology
from repro.grid.replica_catalog import ReplicaLocationService
from repro.grid.site import Site
from repro.planner.dag import PlanStep

#: Nominal size of shipping a procedure (source/binary package).
DEFAULT_PROCEDURE_SIZE = 2_000_000


@dataclass
class SiteChoice:
    """The selector's verdict for one step."""

    site: str
    pattern: str
    #: Seconds of data movement implied by the choice.
    transfer_seconds: float
    #: Seconds of estimated queue wait at the chosen compute element.
    queue_seconds: float
    #: Whether the procedure must be installed (shipped) first.
    ship_procedure: bool
    #: Seconds of the transfer attributable to moving the procedure
    #: itself (charged as job setup time by the scheduler).
    procedure_seconds: float = 0.0

    @property
    def overhead_seconds(self) -> float:
        return self.transfer_seconds + self.queue_seconds


class ProcedureRegistry:
    """Where each transformation is installed (per site).

    Shipping a procedure to a new site costs one transfer of the
    procedure's package size and permanently installs it there —
    procedures are cached exactly like data.
    """

    def __init__(self):
        self._sites: dict[str, set[str]] = {}
        self._sizes: dict[str, int] = {}

    def install(self, transformation: str, site: str) -> None:
        self._sites.setdefault(transformation, set()).add(site)

    def installed_at(self, transformation: str) -> set[str]:
        return set(self._sites.get(transformation, ()))

    def is_installed(self, transformation: str, site: str) -> bool:
        return site in self._sites.get(transformation, ())

    def set_size(self, transformation: str, size: int) -> None:
        self._sizes[transformation] = size

    def size_of(self, transformation: str) -> int:
        return self._sizes.get(transformation, DEFAULT_PROCEDURE_SIZE)


class SiteSelector:
    """Scores sites for plan steps under a shipping pattern."""

    def __init__(
        self,
        sites: dict[str, Site],
        network: NetworkTopology,
        replicas: ReplicaLocationService,
        procedures: Optional[ProcedureRegistry] = None,
    ):
        if not sites:
            raise PlanningError("site selection requires at least one site")
        self.sites = dict(sites)
        self.network = network
        self.replicas = replicas
        self.procedures = procedures or ProcedureRegistry()
        #: Soft per-site penalties (phantom queue seconds) fed back
        #: from observed history — see
        #: :func:`repro.observability.health.health_penalties`.  Empty
        #: by default, so placement is unchanged until health data is
        #: wired in.
        self.penalties: dict[str, float] = {}

    # -- health feedback -------------------------------------------------------

    def set_penalties(self, penalties: dict[str, float]) -> None:
        """Replace the soft per-site penalty table (seconds)."""
        for site, seconds in penalties.items():
            if seconds < 0:
                raise PlanningError(
                    f"site penalty must be >= 0, got {seconds} for {site!r}"
                )
        self.penalties = dict(penalties)

    def set_penalty(self, site: str, seconds: float) -> None:
        if seconds < 0:
            raise PlanningError(
                f"site penalty must be >= 0, got {seconds} for {site!r}"
            )
        self.penalties[site] = seconds

    def penalty_seconds(self, site: str) -> float:
        """The health penalty charged against ``site`` (0 by default)."""
        return self.penalties.get(site, 0.0)

    # -- cost pieces -----------------------------------------------------------

    def data_pull_seconds(self, step: PlanStep, site: str) -> float:
        """Seconds to stage the step's inputs to ``site`` (serialized)."""
        total = 0.0
        for lfn in step.inputs:
            if not self.replicas.has(lfn):
                continue  # produced upstream in the same workflow
            if self.replicas.has(lfn, site):
                continue
            _, seconds = self.replicas.best_source(lfn, site)
            total += seconds
        return total

    def procedure_pull_seconds(self, step: PlanStep, site: str) -> float:
        """Seconds to install the step's procedure at ``site`` (0 if there)."""
        tr_name = step.transformation.name
        if self.procedures.is_installed(tr_name, site):
            return 0.0
        homes = self.procedures.installed_at(tr_name)
        if not homes:
            return 0.0  # nowhere registered: treat as universally available
        size = self.procedures.size_of(tr_name)
        return min(
            self.network.transfer_time(size, home, site) for home in sorted(homes)
        )

    def queue_estimate_seconds(self, site: str, now: float) -> float:
        """Rough queue delay: earliest host availability minus now."""
        ce = self.sites[site].compute
        earliest = min(h.busy_until for h in ce.hosts)
        return max(0.0, earliest - now)

    def input_bytes_at(self, step: PlanStep, site: str) -> int:
        """Input bytes already resident at ``site``."""
        total = 0
        for lfn in step.inputs:
            if self.replicas.has(lfn, site):
                total += self.replicas.size_of(lfn)
        return total

    # -- pattern implementations ------------------------------------------------------

    def choose(
        self,
        step: PlanStep,
        pattern: str,
        now: float = 0.0,
        candidates: Optional[list[str]] = None,
    ) -> SiteChoice:
        """Pick a site for ``step`` under ``pattern``.

        * ``collocate`` — only sites already holding both the data and
          the procedure qualify; falls back to ``ship-data`` when none.
        * ``ship-procedure`` — run where the most input bytes live;
          move the procedure there.
        * ``ship-data`` — run where the procedure lives (or the least
          loaded site when it is everywhere); move data there.
        * ``ship-both`` — free choice: minimize total estimated
          (transfer + queue) cost over all sites.
        """
        names = sorted(candidates or self.sites)
        if pattern == "collocate":
            qualified = [
                s
                for s in names
                if self.data_pull_seconds(step, s) == 0.0
                and self.procedure_pull_seconds(step, s) == 0.0
            ]
            if qualified:
                site = min(
                    qualified,
                    key=lambda s: (
                        self.queue_estimate_seconds(s, now)
                        + self.penalty_seconds(s),
                        s,
                    ),
                )
                return SiteChoice(
                    site=site,
                    pattern=pattern,
                    transfer_seconds=0.0,
                    queue_seconds=self.queue_estimate_seconds(site, now),
                    ship_procedure=False,
                )
            pattern = "ship-data"  # documented fallback
        if pattern == "ship-procedure":
            site = max(
                names,
                key=lambda s: (
                    self.input_bytes_at(step, s),
                    -(
                        self.queue_estimate_seconds(s, now)
                        + self.penalty_seconds(s)
                    ),
                    s,
                ),
            )
            proc = self.procedure_pull_seconds(step, site)
            return SiteChoice(
                site=site,
                pattern="ship-procedure",
                transfer_seconds=proc + self.data_pull_seconds(step, site),
                queue_seconds=self.queue_estimate_seconds(site, now),
                ship_procedure=proc > 0.0,
                procedure_seconds=proc,
            )
        if pattern == "ship-data":
            tr_name = step.transformation.name
            homes = self.procedures.installed_at(tr_name) & set(names)
            pool = sorted(homes) if homes else names
            site = min(
                pool,
                key=lambda s: (
                    self.queue_estimate_seconds(s, now)
                    + self.data_pull_seconds(step, s)
                    + self.penalty_seconds(s),
                    s,
                ),
            )
            return SiteChoice(
                site=site,
                pattern="ship-data",
                transfer_seconds=self.data_pull_seconds(step, site),
                queue_seconds=self.queue_estimate_seconds(site, now),
                ship_procedure=False,
            )
        if pattern == "ship-both":
            def total(s: str) -> float:
                return (
                    self.data_pull_seconds(step, s)
                    + self.procedure_pull_seconds(step, s)
                    + self.queue_estimate_seconds(s, now)
                    + self.penalty_seconds(s)
                )

            site = min(names, key=lambda s: (total(s), s))
            proc = self.procedure_pull_seconds(step, site)
            return SiteChoice(
                site=site,
                pattern="ship-both",
                transfer_seconds=self.data_pull_seconds(step, site) + proc,
                queue_seconds=self.queue_estimate_seconds(site, now),
                ship_procedure=proc > 0.0,
                procedure_seconds=proc,
            )
        raise PlanningError(f"unknown shipping pattern {pattern!r}")
