"""Plan construction: expanding requests into executable DAGs.

Planning turns a :class:`~repro.planner.request.MaterializationRequest`
into a :class:`Plan` — a DAG of concrete, *simple*-transformation steps:

1. walk backwards from each target dataset through producing
   derivations (the catalog's provenance graph);
2. expand compound transformations recursively into their constituent
   calls, synthesizing scratch LFNs for intermediate formals;
3. apply the reuse policy: prune sub-graphs whose outputs already have
   replicas ("determine whether a requested computation has been
   performed previously, and whether it is cheaper to rerun it or to
   retrieve previously generated data", §1).

The result is what the paper calls the "data derivation workflow graph"
(§5.3), ready for site selection (:mod:`repro.planner.strategies`) and
dispatch (:mod:`repro.planner.scheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Union

from repro.catalog.base import VirtualDataCatalog
from repro.catalog.resolver import ReferenceResolver
from repro.core.derivation import DatasetArg, Derivation
from repro.core.transformation import (
    CompoundTransformation,
    FormalRef,
    SimpleTransformation,
)
from repro.errors import (
    CycleError,
    CyclicDerivationError,
    PlanningError,
    UnderivableError,
)
from repro.observability.instrument import NULL, Instrumentation
from repro.planner.request import MaterializationRequest
from repro.provenance.graph import (
    DERIVATION,
    DerivationGraph,
    dataset_node,
    derivation_node,
)

# ---------------------------------------------------------------------------
# Shared topology helpers
#
# Both the planner and the incremental dataflow engine
# (:mod:`repro.analysis.dataflow`) need iterative, recursion-free graph
# walks that behave at 10^5-10^6 nodes.  They live here so there is one
# audited implementation of each.
# ---------------------------------------------------------------------------


def reachable(
    neighbors: Union[dict[str, set[str]], Callable[[str], Iterable[str]]],
    seeds: Iterable[str],
) -> set[str]:
    """The closure of ``seeds`` under ``neighbors`` (seeds included).

    ``neighbors`` is either an adjacency mapping (missing keys mean no
    edges) or a callable returning each node's successors.  Iterative
    BFS: safe on arbitrarily deep graphs and on cycles.
    """
    if callable(neighbors):
        expand = neighbors
    else:
        mapping = neighbors

        def expand(node: str) -> Iterable[str]:
            return mapping.get(node, ())

    seen: set[str] = set()
    frontier: list[str] = []
    for seed in seeds:
        if seed not in seen:
            seen.add(seed)
            frontier.append(seed)
    while frontier:
        node = frontier.pop()
        for nxt in expand(node):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def longest_chain(
    nodes: Iterable[str], deps: dict[str, Iterable[str]]
) -> int:
    """Length of the longest dependency chain over ``nodes``.

    ``deps`` maps a node to its predecessors; edges leaving ``nodes``
    are ignored.  Iterative (no recursion limit on deep graphs) and
    cycle-safe: raises :class:`~repro.errors.CycleError` instead of
    looping forever on a cyclic dependency map.
    """
    members = set(nodes)
    memo: dict[str, int] = {}
    on_stack: set[str] = set()
    for root in members:
        if root in memo:
            continue
        stack: list[str] = [root]
        while stack:
            name = stack[-1]
            if name in memo:
                stack.pop()
                on_stack.discard(name)
                continue
            pending = [
                d
                for d in deps.get(name, ())
                if d not in memo and d in members
            ]
            cyclic = [d for d in pending if d in on_stack]
            if cyclic:
                raise CycleError(
                    f"dependency cycle through node {cyclic[0]!r}"
                )
            if pending:
                on_stack.add(name)
                stack.extend(pending)
                continue
            memo[name] = 1 + max(
                (memo[d] for d in deps.get(name, ()) if d in memo),
                default=0,
            )
    return max(memo.values(), default=0)


@dataclass
class PlanStep:
    """One executable node: a concrete derivation of a simple TR."""

    name: str
    derivation: Derivation
    transformation: SimpleTransformation
    #: Estimated cpu seconds (filled by the estimator; default heuristic).
    cpu_seconds: float = 1.0
    #: Output LFN -> estimated size in bytes.
    output_sizes: dict[str, int] = field(default_factory=dict)

    @property
    def inputs(self) -> tuple[str, ...]:
        return self.derivation.inputs()

    @property
    def outputs(self) -> tuple[str, ...]:
        return self.derivation.outputs()


@dataclass
class Plan:
    """An executable workflow DAG plus its boundary conditions."""

    targets: tuple[str, ...]
    steps: dict[str, PlanStep] = field(default_factory=dict)
    #: step name -> names of steps that must complete first.
    dependencies: dict[str, set[str]] = field(default_factory=dict)
    #: Datasets satisfied from existing replicas (reuse decisions).
    reused: set[str] = field(default_factory=set)
    #: Raw source datasets that must pre-exist on the grid.
    sources: set[str] = field(default_factory=set)
    #: Scratch datasets that may be deleted after the workflow.
    temporaries: set[str] = field(default_factory=set)

    def check_frontier_consistency(self) -> None:
        """Verify the dependency map and step set agree.

        A step missing from ``dependencies`` would never be dispatched,
        and a dependency naming a step that is not in ``steps`` (e.g. a
        predecessor pruned as a reused subgraph without fixing up the
        edge) would leave its dependent unready forever.  Both used to
        pass silently; now they raise :class:`PlanningError`.

        The result is memoized against the (step count, dependency
        count) pair so frontier construction over a large unchanged
        plan does not re-pay an O(V+E) validation — mutations that
        preserve both counts exactly are not re-detected.
        """
        marker = (len(self.steps), len(self.dependencies))
        if self.__dict__.get("_consistent_at") == marker:
            return
        orphans = [name for name in self.steps if name not in self.dependencies]
        if orphans:
            raise PlanningError(
                f"plan inconsistent: steps missing from the dependency "
                f"map would never dispatch: {sorted(orphans)[:6]}"
            )
        # A real set, built once: ``deps - dict.keys()`` falls off the
        # set-difference fast path and turns this loop quadratic.
        step_names = set(self.steps)
        for name, deps in self.dependencies.items():
            if name not in step_names:
                raise PlanningError(
                    f"plan inconsistent: dependency entry for unknown "
                    f"step {name!r}"
                )
            dangling = deps - step_names
            if dangling:
                raise PlanningError(
                    f"plan inconsistent: step {name!r} depends on pruned "
                    f"or unknown steps {sorted(dangling)[:6]}"
                )
        self.__dict__["_consistent_at"] = marker

    def frontier_shape(
        self,
    ) -> tuple[dict[str, int], dict[str, list[str]]]:
        """Memoized frontier template: (missing counts, dependents).

        Building a :class:`Frontier` over a 10^5-10^6-step plan is an
        O(V+E) dict construction; re-plans and repeated frontiers over
        the same plan reuse this template (each frontier copies the
        mutable counts, the dependents map is shared read-only).
        Memoized against the (step count, dependency count) pair, like
        :meth:`check_frontier_consistency`.
        """
        marker = (len(self.steps), len(self.dependencies))
        cached = self.__dict__.get("_frontier_shape")
        if cached is not None and cached[0] == marker:
            return cached[1], cached[2]
        missing = {name: len(deps) for name, deps in self.dependencies.items()}
        dependents: dict[str, list[str]] = {}
        for name, deps in self.dependencies.items():
            for dep in deps:
                dependents.setdefault(dep, []).append(name)
        self.__dict__["_frontier_shape"] = (marker, missing, dependents)
        return missing, dependents

    def ready_steps(self, done: set[str]) -> list[str]:
        """Steps whose prerequisites are all in ``done`` and that are
        not themselves done, in name order (deterministic dispatch)."""
        self.check_frontier_consistency()
        return sorted(
            name
            for name, deps in self.dependencies.items()
            if name not in done and deps <= done
        )

    def frontier(self, done: Optional[set[str]] = None) -> "Frontier":
        """An incremental ready-set tracker over this plan's DAG."""
        return Frontier(self, done=done)

    def topological_order(self) -> list[str]:
        """Step names in a valid execution order.

        Raises :class:`~repro.errors.CyclicDerivationError` (a
        :class:`~repro.errors.CycleError`) naming the steps stuck on a
        cycle, matching what the static ``VDG301`` rule reports.
        """
        frontier = Frontier(self)
        order: list[str] = []
        while not frontier.exhausted:
            ready = frontier.ready()
            if not ready:
                stuck = sorted(set(self.steps) - frontier.completed)
                raise CyclicDerivationError(
                    f"plan contains a dependency cycle involving: {stuck[:6]}"
                )
            order.extend(ready)
            for name in ready:
                frontier.complete(name)
        return order

    def width(self) -> int:
        """Maximum number of steps runnable concurrently (antichain)."""
        frontier = Frontier(self)
        best = 0
        while not frontier.exhausted:
            ready = frontier.ready()
            if not ready:
                break
            best = max(best, len(ready))
            for name in ready:
                frontier.complete(name)
        return best

    def depth(self) -> int:
        """Length of the longest dependency chain.

        Iterative (no recursion limit on deep plans) and cycle-safe:
        raises :class:`~repro.errors.CycleError` instead of recursing
        forever when handed a cyclic dependency map.
        """
        try:
            return longest_chain(self.steps, self.dependencies)
        except CycleError as exc:
            message = str(exc).replace("cycle through node", "cycle through step")
            raise CycleError(f"plan {message}") from None

    def producers(self) -> dict[str, str]:
        """Dataset name -> producing step name."""
        out = {}
        for name, step in self.steps.items():
            for dataset in step.outputs:
                out[dataset] = name
        return out

    def total_cpu_seconds(self) -> float:
        return sum(step.cpu_seconds for step in self.steps.values())

    def __len__(self) -> int:
        return len(self.steps)


class Frontier:
    """Incremental ready-set tracking over a :class:`Plan`'s DAG.

    Dispatchers used to rescan ``Plan.ready_steps(done)`` after every
    completion — O(V·E) over a whole run.  The frontier instead keeps a
    per-step count of unfinished predecessors and decrements it as
    steps complete, so releasing the whole run's worth of work is
    O(V+E) total.  Steps whose counts reach zero join the ready set and
    stay there until :meth:`complete` is called for them, which is what
    lets callers track in-flight work against the same set.

    The constructor validates the plan (see
    :meth:`Plan.check_frontier_consistency`); ``done`` pre-completes
    steps already satisfied, e.g. by a rescue file.
    """

    def __init__(self, plan: Plan, done: Optional[set[str]] = None):
        plan.check_frontier_consistency()
        missing, dependents = plan.frontier_shape()
        self._total = len(plan.steps)
        self.completed: set[str] = set()
        # Own copy of the counts (decremented in complete()); the
        # dependents map is shared with the plan's template, read-only.
        self._missing: dict[str, int] = dict(missing)
        self._dependents: dict[str, list[str]] = dependents
        self._ready: set[str] = {
            name for name, count in self._missing.items() if count == 0
        }
        if done:
            for name in done:
                if name in plan.steps and name not in self.completed:
                    # Pre-completed steps may arrive in any order, so a
                    # dependent of one may complete before it; tolerate
                    # the resulting double release.
                    self._force_release(name)
                    self.complete(name)

    def _force_release(self, name: str) -> None:
        if name not in self.completed:
            self._missing[name] = 0
            self._ready.add(name)

    def ready(self) -> list[str]:
        """Released, uncompleted steps in name order (deterministic)."""
        return sorted(self._ready)

    def ready_count(self) -> int:
        return len(self._ready)

    @property
    def exhausted(self) -> bool:
        """True when every step has completed."""
        return len(self.completed) >= self._total

    def remaining(self) -> int:
        return self._total - len(self.completed)

    def complete(self, name: str) -> list[str]:
        """Mark ``name`` done; returns the steps this newly releases."""
        if name in self.completed:
            return []
        if name not in self._missing:
            raise PlanningError(f"frontier: unknown step {name!r}")
        self.completed.add(name)
        self._ready.discard(name)
        released: list[str] = []
        for dependent in self._dependents.get(name, ()):
            if dependent in self.completed:
                continue
            count = self._missing[dependent] - 1
            self._missing[dependent] = count
            if count == 0:
                self._ready.add(dependent)
                released.append(dependent)
        return sorted(released)


#: Callback deciding rerun-vs-retrieve for one dataset under the
#: ``cost`` policy.  Receives (dataset_name, recompute_cpu_seconds) and
#: returns True to reuse the existing replica.
ReuseDecider = Callable[[str, float], bool]


class _PlanCacheEntry:
    """What an incremental planner remembers about its last build."""

    __slots__ = ("key", "plan", "visited", "probes", "producers")

    def __init__(self, key, plan, visited, probes, producers):
        self.key = key
        self.plan = plan
        #: Every dataset the planning walk visited.
        self.visited = visited
        #: dataset -> has_replica answer consulted during the build.
        self.probes = probes
        #: dataset -> producing step name (for size re-estimates).
        self.producers = producers


class Planner:
    """Expands requests against one catalog (and optional resolver).

    With ``incremental=True`` the planner subscribes to the catalog's
    mutation-event stream and caches its last plan: a re-plan of the
    same request after localized changes (e.g. one derivation's
    metadata edited) patches only the affected steps instead of
    re-walking the whole graph, and ``has_replica`` answers are
    re-probed on every hit so out-of-band sandbox changes still force a
    rebuild.  Incremental mode requires the estimate callables
    (``cpu_estimate``/``size_estimate``) to be pure functions of
    catalog state — estimators that train between calls (the grid
    executor's) must keep the default ``incremental=False``.
    """

    def __init__(
        self,
        catalog: VirtualDataCatalog,
        resolver: Optional[ReferenceResolver] = None,
        has_replica: Optional[Callable[[str], bool]] = None,
        cpu_estimate: Optional[Callable[[Derivation], float]] = None,
        size_estimate: Optional[Callable[[str], int]] = None,
        reuse_decider: Optional[ReuseDecider] = None,
        instrumentation: Optional[Instrumentation] = None,
        incremental: bool = False,
    ):
        self.catalog = catalog
        self.obs = instrumentation or NULL
        self.resolver = resolver or ReferenceResolver(catalog)
        self._has_replica = has_replica or (lambda lfn: False)
        self._cpu_estimate = cpu_estimate or (lambda dv: 1.0)
        self._size_estimate = size_estimate or self._catalog_size
        self._reuse_decider = reuse_decider or (lambda lfn, cpu: True)
        self._incremental = incremental
        # Memos.  Non-incremental planners clear these at every _plan
        # call (exactly a fresh planner's behavior); incremental ones
        # keep them across calls and invalidate through catalog events.
        self._tr_memo: dict = {}
        self._size_memo: dict[str, int] = {}
        self._cpu_memo: dict[str, float] = {}
        self._cost_memo: dict[str, float] = {}
        self._probes: dict[str, bool] = {}
        self._cached: Optional[_PlanCacheEntry] = None
        self._dirty_derivations: set[str] = set()
        self._dirty_datasets: set[str] = set()
        self._structure_dirty = False
        if incremental:
            catalog.subscribe(self._on_catalog_event)

    # -- event-driven invalidation (incremental mode) -----------------------

    def _on_catalog_event(self, event: str, kind: str, key: str) -> None:
        if kind == "derivation":
            self._cpu_memo.pop(key, None)
            # Any derivation change can shift many datasets' subtree
            # recompute costs; the memo rebuilds lazily.
            self._cost_memo.clear()
            if event == "put":
                self._dirty_derivations.add(key)
            else:
                self._structure_dirty = True
        elif kind == "dataset":
            self._size_memo.pop(key, None)
            if event == "put":
                self._dirty_datasets.add(key)
            else:
                self._structure_dirty = True
        elif kind == "transformation":
            self._tr_memo.clear()
            self._structure_dirty = True
        # Replica and invocation events never change plan structure;
        # replica effects are caught by re-probing has_replica answers
        # on every cache hit (sandbox files can also appear or vanish
        # with no catalog event at all).

    def _catalog_size(self, lfn: str) -> int:
        cached = self._size_memo.get(lfn)
        if cached is not None:
            return cached
        # Straight off the payload document: decoding a full Dataset
        # per plan-step output dominates plan construction at 10^5+
        # steps, and the size lives in two known payload spots.  The
        # peek (vs _cached_payload) keeps bulk planner walks from
        # evicting the LRU's working set one dataset at a time.
        payload = self.catalog._peek_payload("dataset", lfn)
        if payload is None:
            size = 1_000_000
        else:
            attr = (payload.get("attributes") or {}).get("size")
            if isinstance(attr, (int, float)):
                size = int(attr)
            elif payload.get("descriptor"):
                from repro.core.descriptors import descriptor_from_dict

                nominal = descriptor_from_dict(
                    payload["descriptor"]
                ).nominal_size()
                size = nominal if nominal is not None else 1_000_000
            else:
                size = 1_000_000
        self._size_memo[lfn] = size
        return size

    # -- public -------------------------------------------------------------

    def plan(self, request: MaterializationRequest) -> Plan:
        """Build the workflow DAG satisfying ``request``."""
        with self.obs.span(
            "planner.plan",
            targets=",".join(request.targets),
            reuse=request.reuse,
        ) as span:
            plan = self._plan(request)
            if self.obs.enabled:
                span.set("steps", len(plan.steps))
                span.set("reused", len(plan.reused))
                self.obs.count("planner.plans", help="plans constructed")
                self.obs.count(
                    "planner.reuse.hits",
                    len(plan.reused),
                    help="datasets satisfied from existing replicas",
                )
                self.obs.observe(
                    "planner.plan.steps",
                    len(plan.steps),
                    # Spans single-step interactive plans through the
                    # 10^5-10^6-step campaign graphs of the scale
                    # benchmarks without collapsing the top decades
                    # into one overflow bucket.
                    buckets=(
                        0, 1, 2, 5, 10, 50, 100, 500, 1000, 5000,
                        10_000, 50_000, 100_000, 500_000, 1_000_000,
                    ),
                    help="workflow DAG size distribution",
                )
            return plan

    def _plan(self, request: MaterializationRequest) -> Plan:
        # The whole build runs under the catalog's re-entrant lock so
        # the shared event-maintained graph cannot be patched (by
        # another thread's plan) mid-walk; every catalog accessor used
        # below re-enters the same lock anyway.
        with self.catalog._lock:
            graph = self._current_graph()
            if self._incremental:
                patched = self._try_patch(request, graph)
                if patched is not None:
                    self._count_plan_cache(hit=True)
                    return patched
                self._count_plan_cache(hit=False)
            else:
                # A non-incremental planner must behave exactly like a
                # freshly constructed one on every call.
                self._tr_memo.clear()
                self._size_memo.clear()
                self._cpu_memo.clear()
                self._cost_memo.clear()
            return self._build(request, graph)

    def _current_graph(self) -> DerivationGraph:
        """The catalog's event-maintained graph, with cache counters."""
        cache = self.catalog.graph_cache()
        before = cache.misses
        graph = cache.graph()
        if self.obs.enabled:
            if cache.misses > before:
                self.obs.count(
                    "planner.graph.cache.misses",
                    help="derivation-graph rebuilds during planning",
                )
            else:
                self.obs.count(
                    "planner.graph.cache.hits",
                    help="plans served from the cached derivation graph",
                )
        return graph

    def _count_plan_cache(self, hit: bool) -> None:
        if self.obs.enabled:
            self.obs.count(
                "planner.plan.cache.hits"
                if hit
                else "planner.plan.cache.misses",
                help="incremental plan cache outcomes",
            )

    def _build(self, request: MaterializationRequest, graph) -> Plan:
        plan = Plan(targets=request.targets)
        self._probes = {}
        needed: list[str] = list(request.targets)
        visited: set[str] = set()
        while needed:
            dataset = needed.pop()
            if dataset in visited:
                continue
            visited.add(dataset)
            if self._maybe_reuse(dataset, request, graph):
                plan.reused.add(dataset)
                continue
            producers = graph.producer_names(dataset)
            if not producers:
                if self._probe_replica(dataset) or self.catalog.has_dataset(
                    dataset
                ):
                    plan.sources.add(dataset)
                    continue
                raise UnderivableError(
                    f"dataset {dataset!r} has no producing derivation and "
                    f"no known replica"
                )
            # Deterministic choice when multiple producers exist.
            producer_name = min(producers)
            dv = graph.derivation(producer_name)
            self._expand_derivation(dv, plan)
            # Skip already-visited inputs before pushing: high-fan-in
            # graphs would otherwise blow the worklist up with
            # duplicates that each pop-and-discard pass re-touches.
            needed.extend(
                name for name in dv.inputs() if name not in visited
            )
        self._wire_dependencies(plan)
        self._prune_reused_subgraphs(plan, request)
        if self._incremental:
            self._cached = _PlanCacheEntry(
                key=(request.targets, request.reuse),
                plan=plan,
                visited=visited,
                probes=dict(self._probes),
                producers=plan.producers(),
            )
            self._dirty_derivations.clear()
            self._dirty_datasets.clear()
            self._structure_dirty = False
        return plan

    # -- incremental re-planning ---------------------------------------------

    def _try_patch(self, request: MaterializationRequest, graph) -> Optional[Plan]:
        """Serve the cached plan, patched in place, or None to rebuild.

        A hit updates and returns the *same* Plan object as the
        previous call — incremental plans are snapshots valid until the
        next ``plan()`` call, not independent copies.  The patch path
        is taken only when it provably reproduces what a full rebuild
        would: unchanged request, no structural changes (derivation or
        dataset additions/removals, transformation edits), content
        changes confined to existing simple steps with identical
        edges, and every previously consulted ``has_replica`` answer
        still current (re-probed here, since sandbox files can change
        with no catalog event).
        """
        cached = self._cached
        if cached is None or cached.key != (request.targets, request.reuse):
            return None
        if self._structure_dirty:
            return None
        if request.reuse == "cost" and (
            self._dirty_derivations or self._dirty_datasets
        ):
            # Cost-policy reuse decisions depend on cpu/size estimates;
            # patching those piecemeal could diverge from a fresh plan.
            return None
        plan = cached.plan
        # Validate every dirty derivation; build replacement steps
        # without touching the plan so any bail-out leaves it intact.
        replacements: dict[str, PlanStep] = {}
        for key in sorted(self._dirty_derivations):
            step = plan.steps.get(key)
            if step is None:
                # Not a step of this plan.  Irrelevant — unless it
                # produces a dataset the walk visited (a new or
                # re-pointed producer, or part of a compound/pruned
                # subgraph), which restructures the plan.
                produced = {
                    n.name
                    for n in graph.successors(derivation_node(key))
                }
                if produced & cached.visited:
                    return None
                continue
            dv = graph.derivation(key)
            old = step.derivation
            if (
                set(dv.inputs()) != set(old.inputs())
                or set(dv.outputs()) != set(old.outputs())
                or dv.transformation != old.transformation
                or self._temp_datasets(dv) != self._temp_datasets(old)
            ):
                return None
            tr, _ = self._resolve_transformation(dv.transformation)
            if not isinstance(tr, SimpleTransformation):
                return None
            replacements[key] = PlanStep(
                name=key,
                derivation=dv,
                transformation=tr,
                cpu_seconds=self._cpu_estimate(dv),
                output_sizes={
                    out: self._size_estimate(out) for out in dv.outputs()
                },
            )
        # Size re-estimates for datasets whose records changed.
        size_patches: dict[str, dict[str, int]] = {}
        for name in self._dirty_datasets:
            producer = cached.producers.get(name)
            if producer is None or producer not in plan.steps:
                continue
            new_size = self._size_estimate(name)
            target = replacements.get(producer, plan.steps[producer])
            if target.output_sizes.get(name) != new_size:
                size_patches.setdefault(producer, {})[name] = new_size
        # Re-probe every replica answer the cached build consulted.
        for dataset, seen in cached.probes.items():
            if bool(self._has_replica(dataset)) != seen:
                return None
        # All clear: apply (cannot fail past this point).
        plan.steps.update(replacements)
        for producer, sizes in size_patches.items():
            plan.steps[producer].output_sizes.update(sizes)
        self._dirty_derivations.clear()
        self._dirty_datasets.clear()
        return plan

    @staticmethod
    def _temp_datasets(dv: Derivation) -> set[str]:
        return {
            arg.dataset for _, arg in dv.dataset_args() if arg.temporary
        }

    def _probe_replica(self, dataset: str) -> bool:
        result = bool(self._has_replica(dataset))
        self._probes[dataset] = result
        return result

    # -- reuse policy ----------------------------------------------------------

    def _maybe_reuse(
        self,
        dataset: str,
        request: MaterializationRequest,
        graph: DerivationGraph,
    ) -> bool:
        if request.reuse == "never":
            return False
        if not self._probe_replica(dataset):
            return False
        if request.reuse == "always":
            return True
        # cost policy: estimate the cpu of the whole producing subtree.
        recompute_cpu = self._recompute_cost(dataset, graph)
        return self._reuse_decider(dataset, recompute_cpu)

    def _recompute_cost(self, dataset: str, graph: DerivationGraph) -> float:
        """Total cpu estimate of the subtree that derives ``dataset``.

        Exactly the cost ``required_for`` + sum used to compute — the
        *distinct* derivations of the backward closure, so diamonds are
        not double-counted — but walked over the shared graph without
        materializing a subgraph, with per-dataset results memoized
        (reverse-topological accumulation across repeated queries and
        re-plans) and per-derivation cpu estimates cached.
        """
        memo = self._cost_memo
        cached = memo.get(dataset)
        if cached is not None:
            return cached
        closure: set[str] = set()
        seen = set()
        stack = [dataset_node(dataset)]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node.kind == DERIVATION:
                closure.add(node.name)
            stack.extend(graph.iter_predecessors(node))
        cpu_memo = self._cpu_memo
        total = 0.0
        for name in sorted(closure):
            cpu = cpu_memo.get(name)
            if cpu is None:
                cpu = cpu_memo[name] = self._cpu_estimate(
                    graph.derivation(name)
                )
            total += cpu
        memo[dataset] = total
        return total

    # -- expansion --------------------------------------------------------------

    def _resolve_transformation(self, ref):
        """Resolver lookup memoized per reference.

        Resolution decodes the transformation from its stored XML —
        repeated for every derivation of the same transformation, it
        dominates plan expansion on homogeneous campaign graphs.
        Invalidated on any transformation event (incremental mode) or
        at every plan (non-incremental).
        """
        cached = self._tr_memo.get(ref)
        if cached is None:
            cached = self._tr_memo[ref] = self.resolver.transformation(ref)
        return cached

    def _expand_derivation(self, dv: Derivation, plan: Plan) -> None:
        if dv.name in plan.steps:
            return
        tr, _ = self._resolve_transformation(dv.transformation)
        if isinstance(tr, SimpleTransformation):
            self._add_step(dv.name, dv, tr, plan)
            return
        assert isinstance(tr, CompoundTransformation)
        self._expand_compound(dv.name, dv, tr, plan, depth=0)

    def _add_step(
        self,
        name: str,
        dv: Derivation,
        tr: SimpleTransformation,
        plan: Plan,
    ) -> None:
        step = PlanStep(
            name=name,
            derivation=dv,
            transformation=tr,
            cpu_seconds=self._cpu_estimate(dv),
            output_sizes={
                out: self._size_estimate(out) for out in dv.outputs()
            },
        )
        plan.steps[name] = step
        for _, arg in dv.dataset_args():
            if arg.temporary:
                plan.temporaries.add(arg.dataset)

    def _expand_compound(
        self,
        prefix: str,
        dv: Derivation,
        tr: CompoundTransformation,
        plan: Plan,
        depth: int,
    ) -> None:
        """Flatten one compound call frame into concrete steps."""
        if depth > 32:
            raise PlanningError(
                f"compound transformation nesting exceeds 32 levels at "
                f"{tr.name!r} (cycle in compound definitions?)"
            )
        # The enclosing frame's formal -> actual environment.
        env: dict[str, DatasetArg | str] = {}
        for formal in tr.signature.formals:
            if formal.name in dv.actuals:
                env[formal.name] = dv.actuals[formal.name]
            elif formal.default is not None:
                if formal.is_string:
                    env[formal.name] = formal.default
                else:
                    scratch = f"{prefix}.{formal.name}"
                    env[formal.name] = DatasetArg(
                        dataset=scratch,
                        direction=formal.direction,
                        temporary=True,
                    )
                    plan.temporaries.add(scratch)
            else:
                raise PlanningError(
                    f"compound {tr.name!r}: formal {formal.name!r} unbound "
                    f"in derivation {dv.name!r} and has no default"
                )
        for i, call in enumerate(tr.calls):
            callee, _ = self._resolve_transformation(call.target)
            actuals: dict[str, DatasetArg | str] = {}
            for callee_formal_name, binding in call.bindings.items():
                callee_formal = callee.signature.formal(callee_formal_name)
                if isinstance(binding, FormalRef):
                    value = env[binding.name]
                    if isinstance(value, DatasetArg):
                        # Call-site direction: the callee's view.
                        direction = (
                            callee_formal.direction
                            if callee_formal.direction != "inout"
                            else (binding.direction or value.direction)
                        )
                        actuals[callee_formal_name] = DatasetArg(
                            dataset=value.dataset,
                            direction=direction,
                            temporary=value.temporary,
                        )
                    else:
                        actuals[callee_formal_name] = value
                else:
                    actuals[callee_formal_name] = binding
            sub_name = f"{prefix}.{i}.{callee.name}"
            sub_dv = Derivation(
                name=sub_name,
                transformation=call.target,
                actuals=actuals,
                environment=dict(dv.environment),
            )
            if isinstance(callee, CompoundTransformation):
                self._expand_compound(sub_name, sub_dv, callee, plan, depth + 1)
            else:
                self._add_step(sub_name, sub_dv, callee, plan)

    # -- dependency wiring -------------------------------------------------------

    def _wire_dependencies(self, plan: Plan) -> None:
        producer_of: dict[str, str] = {}
        for name, step in plan.steps.items():
            for output in step.outputs:
                producer_of[output] = name
        for name, step in plan.steps.items():
            deps = {
                producer_of[inp]
                for inp in step.inputs
                if inp in producer_of and producer_of[inp] != name
            }
            plan.dependencies[name] = deps

    def _prune_reused_subgraphs(
        self, plan: Plan, request: MaterializationRequest
    ) -> None:
        """Drop steps whose every output is reused or unneeded."""
        if not plan.reused:
            return
        needed_datasets: set[str] = set(request.targets) - plan.reused
        producer_of = plan.producers()

        def upstream_steps(dataset: str) -> list[str]:
            step_name = producer_of.get(dataset)
            if step_name is None:
                return []
            return [
                inp
                for inp in plan.steps[step_name].inputs
                if inp not in plan.reused
            ]

        needed_steps = {
            producer_of[ds]
            for ds in reachable(upstream_steps, needed_datasets)
            if ds in producer_of
        }
        for name in list(plan.steps):
            if name not in needed_steps:
                del plan.steps[name]
                del plan.dependencies[name]
        for name in plan.dependencies:
            plan.dependencies[name] &= set(plan.steps)
