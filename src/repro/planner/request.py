"""Materialization requests (§5.2).

"Once derivations are defined in the virtual data catalog, users (and
automated production mechanisms) can request that these virtual
datasets be 'materialized'."  A :class:`MaterializationRequest` names
the wanted datasets plus the policies the planner should apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import PlanningError

#: Reuse policies controlling the rerun-vs-retrieve decision (§1).
REUSE_POLICIES = ("never", "always", "cost")

#: Data/procedure shipping patterns (§5.2).
SHIPPING_PATTERNS = (
    "collocate",       # 1. procedure collocated with data
    "ship-procedure",  # 2. ship procedure to data
    "ship-data",       # 3. ship data to procedure
    "ship-both",       # 4. ship procedure and data to a third computer
)


@dataclass
class MaterializationRequest:
    """One planning request: which datasets, under which policies.

    * ``reuse`` — ``"never"`` recomputes everything; ``"always"``
      uses any existing replica; ``"cost"`` compares estimated
      recomputation cost against transfer cost per dataset.
    * ``pattern`` — preferred shipping pattern; the planner may ignore
      it when infeasible (e.g. the data's site has no free hosts and
      the pattern forbids moving data).
    * ``max_hosts`` — workflow-level concurrency cap (the paper's "as
      many as 120 hosts in a single workflow").
    * ``preferred_site`` — pin execution to one site when set.
    * ``prune_fresh`` — skip derivations whose outputs are already
      materialized and not stale (make-style incremental builds).
    """

    targets: tuple[str, ...]
    reuse: str = "cost"
    pattern: str = "ship-data"
    max_hosts: Optional[int] = None
    preferred_site: Optional[str] = None
    prune_fresh: bool = True
    deadline: Optional[float] = None

    def __post_init__(self):
        if isinstance(self.targets, str):
            self.targets = (self.targets,)
        else:
            self.targets = tuple(self.targets)
        if not self.targets:
            raise PlanningError("a request needs at least one target dataset")
        if self.reuse not in REUSE_POLICIES:
            raise PlanningError(
                f"invalid reuse policy {self.reuse!r}; "
                f"expected one of {REUSE_POLICIES}"
            )
        if self.pattern not in SHIPPING_PATTERNS:
            raise PlanningError(
                f"invalid shipping pattern {self.pattern!r}; "
                f"expected one of {SHIPPING_PATTERNS}"
            )
        if self.max_hosts is not None and self.max_hosts <= 0:
            raise PlanningError("max_hosts must be positive")
