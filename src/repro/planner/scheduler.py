"""DAGMan-style workflow execution management (§5.4).

"Derivation is conducted by workflow execution management systems that
dispatch computation or data transfer requests to specific grid sites,
and monitor their completion, dispatching nodes of the workflow graph
when the node's predecessor dependencies have completed.  An example of
such a scheduler is the Condor DAGMan facility."

:class:`WorkflowScheduler` dispatches a :class:`~repro.planner.dag.Plan`
onto the simulated grid: ready steps are submitted as jobs, completions
release successors, failures are retried up to a bound, and the whole
run is summarized in a :class:`WorkflowResult`.

Recovery behaviour is pluggable through
:class:`~repro.resilience.policies.RecoveryConfig`: retry backoff with
deterministic jitter, per-site circuit breakers with half-open probing,
failover (retries re-invoke the site selector with already-failed sites
excluded), per-attempt straggler timeouts, and the ``fail-fast`` vs
``run-what-you-can`` failure policy.  The default configuration
reproduces the historical behaviour exactly: immediate same-site
retries and fail-fast.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ExecutionError, PlanningError
from repro.grid.gram import GridExecutionService, JobRecord, JobSpec
from repro.observability.instrument import NULL, Instrumentation
from repro.planner.dag import Frontier, Plan, PlanStep
from repro.planner.strategies import SiteChoice, SiteSelector
from repro.resilience.policies import (
    FAIL_FAST,
    RUN_WHAT_YOU_CAN,
    RecoveryConfig,
)


@dataclass
class StepOutcome:
    """What happened to one plan step."""

    step: str
    site: str
    attempts: int
    record: JobRecord


@dataclass
class WorkflowResult:
    """Summary of one workflow run on the grid."""

    plan: Plan
    outcomes: dict[str, StepOutcome] = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float = 0.0
    failed_steps: set[str] = field(default_factory=set)
    #: Step -> reason (``"upstream-failed:<step>"``): steps that could
    #: never run because a step they depend on failed permanently.
    skipped_steps: dict[str, str] = field(default_factory=dict)
    #: Steps satisfied by a rescue file before dispatch (resume); they
    #: have no outcome because no job ran this time.
    pre_completed: set[str] = field(default_factory=set)
    #: True when an ``until=`` cut-off killed the run mid-flight.
    interrupted: bool = False
    #: Maximum number of simultaneously in-flight steps observed —
    #: the "hosts in a single workflow" number of §6.
    peak_in_flight: int = 0

    @property
    def succeeded(self) -> bool:
        return (
            not self.failed_steps
            and not self.skipped_steps
            and not self.interrupted
            and len(self.outcomes) + len(self.pre_completed)
            == len(self.plan.steps)
        )

    @property
    def makespan(self) -> float:
        return self.finished_at - self.started_at

    def total_cpu_seconds(self) -> float:
        return sum(
            o.record.spec.cpu_seconds
            for o in self.outcomes.values()
            if o.record.succeeded
        )

    def total_queue_seconds(self) -> float:
        return sum(o.record.queue_seconds for o in self.outcomes.values())

    def total_stage_in_seconds(self) -> float:
        return sum(o.record.stage_in_seconds for o in self.outcomes.values())

    def hosts_used(self) -> set[str]:
        return {
            o.record.host for o in self.outcomes.values() if o.record.host
        }

    def sites_used(self) -> set[str]:
        return {o.site for o in self.outcomes.values()}


#: Called after each step completes (successfully); used by the grid
#: executor to write invocation/replica records into the catalog.
StepListener = Callable[[PlanStep, SiteChoice, JobRecord], None]


class WorkflowScheduler:
    """Dependency-driven dispatcher over a grid execution service.

    ``max_retries`` bounds *resubmissions*, not attempts: a step is
    tried at most ``max_retries + 1`` times before it is recorded in
    ``failed_steps`` (so ``max_retries=0`` still runs every step once).
    """

    def __init__(
        self,
        grid: GridExecutionService,
        selector: SiteSelector,
        pattern: str = "ship-data",
        max_retries: int = 2,
        max_hosts: Optional[int] = None,
        step_listener: Optional[StepListener] = None,
        instrumentation: Optional[Instrumentation] = None,
        recovery: Optional[RecoveryConfig] = None,
    ):
        if max_retries < 0:
            raise PlanningError("max_retries must be >= 0")
        self.grid = grid
        self.selector = selector
        self.pattern = pattern
        self.max_retries = max_retries
        self.max_hosts = max_hosts
        self.step_listener = step_listener
        self.obs = instrumentation or NULL
        # The historical posture: immediate same-site retries,
        # fail-fast, no breakers, no failover.
        self.recovery = recovery or RecoveryConfig(failover=False)
        if max_retries > 0 and len(selector.sites) == 1:
            warnings.warn(
                f"max_retries={max_retries} with a single-site selector: "
                "every retry re-runs at the same site, so a permanent "
                "site fault can never be failed over",
                RuntimeWarning,
                stacklevel=2,
            )

    def run(
        self,
        plan: Plan,
        completed: Optional[set[str]] = None,
        until: Optional[float] = None,
    ) -> WorkflowResult:
        """Execute ``plan`` to completion on the simulator's clock.

        ``completed`` names steps already satisfied (rescue resume):
        they are treated as done without dispatching a job and without
        invoking the step listener.  ``until`` kills the run at that
        simulation time — the partial result comes back with
        ``interrupted=True`` and any abandoned events flushed, which is
        how crashed campaigns are modelled for rescue testing.

        Missing source datasets raise
        :class:`~repro.errors.ExecutionError` before any dispatch: the
        workflow would deadlock otherwise.
        """
        for source in sorted(plan.sources | plan.reused):
            if not self.grid.replicas.has(source):
                raise ExecutionError(
                    f"source dataset {source!r} has no replica on the grid"
                )
        with self.obs.span(
            "scheduler.run",
            steps=len(plan.steps),
            pattern=self.pattern,
        ) as run_span:
            result = self._run(plan, completed or set(), until)
            if self.obs.enabled:
                run_span.set("peak_in_flight", result.peak_in_flight)
                run_span.set("failed", len(result.failed_steps))
                run_span.set("skipped", len(result.skipped_steps))
                run_span.set("resumed", len(result.pre_completed))
            return result

    def _run(
        self, plan: Plan, completed: set[str], until: Optional[float]
    ) -> WorkflowResult:
        obs = self.obs
        recorder = obs.recorder
        progress = obs.progress
        recovery = self.recovery
        policy = recovery.retry_policy
        breakers = recovery.breakers
        all_sites = sorted(self.selector.sites)
        result = WorkflowResult(plan=plan, started_at=self.grid.simulator.now)
        result.pre_completed = {n for n in completed if n in plan.steps}
        if recorder is not None:
            recorder.plan(plan)
        if progress is not None:
            progress.start_plan(plan)
            for name in result.pre_completed:
                progress.step_finished(name, "ok")
        # Indegree-decrement frontier: completions release successors
        # incrementally instead of rescanning ready_steps() every tick.
        frontier = Frontier(plan, done=result.pre_completed)
        done = frontier.completed
        in_flight: set[str] = set()
        #: Steps with a resubmission already scheduled (backoff delay or
        #: breaker deferral) — dispatch_ready must not double-submit.
        pending_retry: set[str] = set()
        attempts: dict[str, int] = {}
        #: Step -> sites where an attempt of it already failed.
        failed_sites: dict[str, set[str]] = {}
        total = len(plan.steps)
        #: Simulation time the workflow reached a terminal state; the
        #: clock may run past it (killed stragglers still hold hosts).
        finish_clock: dict[str, Optional[float]] = {"t": None}

        dependents: dict[str, set[str]] = {}
        for name, deps in plan.dependencies.items():
            for dep in deps:
                dependents.setdefault(dep, set()).add(name)

        def terminal_count() -> int:
            return (
                len(done)
                + len(result.failed_steps)
                + len(result.skipped_steps)
            )

        def note_terminal() -> None:
            if finish_clock["t"] is None and terminal_count() >= total:
                finish_clock["t"] = self.grid.simulator.now

        #: Last recorded breaker state per site, so the recorder logs
        #: transitions rather than every touch.
        breaker_states: dict[str, int] = {}

        def note_breaker(site: str) -> None:
            if breakers is None:
                return
            code = breakers.breaker(site).state_code
            if obs.enabled:
                obs.gauge(
                    "scheduler.breaker.state",
                    code,
                    site=site,
                    help="per-site breaker (0=closed 1=half-open 2=open)",
                )
            if recorder is not None and breaker_states.get(site, 0) != code:
                recorder.event(
                    "breaker.transition",
                    site=site,
                    state=code,
                    sim=self.grid.simulator.now,
                )
            breaker_states[site] = code

        def skip_downstream(root: str) -> None:
            """Record every transitive dependent as upstream-failed."""
            frontier = list(dependents.get(root, ()))
            while frontier:
                name = frontier.pop()
                if (
                    name in done
                    or name in result.failed_steps
                    or name in result.skipped_steps
                ):
                    continue
                result.skipped_steps[name] = f"upstream-failed:{root}"
                if obs.enabled:
                    obs.count(
                        "scheduler.steps",
                        status="skipped",
                        help="step completions by terminal status",
                    )
                if recorder is not None:
                    recorder.event(
                        "step.skipped",
                        step=name,
                        reason=f"upstream-failed:{root}",
                        sim=self.grid.simulator.now,
                    )
                if progress is not None:
                    progress.step_finished(name, "skipped")
                frontier.extend(dependents.get(name, ()))

        def dispatch_ready() -> None:
            if result.failed_steps and recovery.failure_policy == FAIL_FAST:
                return
            for name in frontier.ready():
                if (
                    name in in_flight
                    or name in pending_retry
                    or name in result.failed_steps
                    or name in result.skipped_steps
                ):
                    continue
                # The workflow-level width cap ("as many as 120 hosts in
                # a single workflow", §6) bounds jobs in flight globally.
                if (
                    self.max_hosts is not None
                    and len(in_flight) >= self.max_hosts
                ):
                    break
                submit(name)
            if recorder is not None:
                recorder.sample(
                    ready=frontier.ready_count(),
                    in_flight=len(in_flight),
                    completed=len(done),
                    total=total,
                    sim=self.grid.simulator.now,
                )

        def submit(name: str) -> None:
            pending_retry.discard(name)
            step = plan.steps[name]
            now = self.grid.simulator.now
            candidates: Optional[list[str]] = None
            excluded = failed_sites.get(name)
            if recovery.failover and excluded:
                pool = [s for s in all_sites if s not in excluded]
                if pool:  # all sites failed: fall back to every site
                    candidates = pool
            if breakers is not None:
                pool = candidates if candidates is not None else all_sites
                avail = breakers.available(pool, now)
                if not avail and candidates is not None:
                    # Every failover candidate is tripped; widen to all.
                    avail = breakers.available(all_sites, now)
                if not avail:
                    # Every breaker open: park until the first cooldown
                    # expires (or poll while a half-open probe flies).
                    resume_at = breakers.earliest_retry(all_sites, now)
                    wait = resume_at - now
                    if wait <= 0:
                        wait = 1.0
                    pending_retry.add(name)
                    if obs.enabled:
                        obs.count(
                            "scheduler.breaker.deferrals",
                            help="submissions delayed by open breakers",
                        )
                    if recorder is not None:
                        recorder.event(
                            "breaker.deferred",
                            step=name,
                            resume_at=resume_at,
                            sim=now,
                        )
                    self.grid.simulator.schedule(wait, lambda: submit(name))
                    return
                candidates = avail
            attempts[name] = attempts.get(name, 0) + 1
            in_flight.add(name)
            if progress is not None:
                progress.step_started(name)
            result.peak_in_flight = max(result.peak_in_flight, len(in_flight))
            if obs.enabled:
                obs.count(
                    "scheduler.dispatched", help="job submissions (incl. retries)"
                )
                if attempts[name] > 1:
                    obs.count("scheduler.retries", help="step resubmissions")
                obs.gauge(
                    "scheduler.in_flight",
                    len(in_flight),
                    help="steps currently submitted and incomplete",
                )
                obs.gauge(
                    "scheduler.queue_depth",
                    frontier.ready_count() - len(in_flight),
                    help="ready steps awaiting dispatch",
                )
            if candidates is None:
                choice = self.selector.choose(step, self.pattern, now=now)
            else:
                choice = self.selector.choose(
                    step, self.pattern, now=now, candidates=candidates
                )
            if breakers is not None:
                breakers.breaker(choice.site).admit(now)
                note_breaker(choice.site)
            spec = JobSpec(
                name=name,
                site=choice.site,
                cpu_seconds=step.cpu_seconds,
                inputs=step.inputs,
                outputs=dict(step.output_sizes),
                executable=step.transformation.executable,
                environment=dict(step.derivation.environment),
                # The width cap is enforced globally in dispatch_ready;
                # per-site host restriction is not additionally needed.
                max_hosts=None,
                setup_seconds=choice.procedure_seconds,
            )

            def conclude(record: JobRecord) -> None:
                in_flight.discard(name)
                if recorder is not None:
                    end = (
                        record.end_time
                        if record.end_time is not None
                        else self.grid.simulator.now
                    )
                    recorder.step(
                        name,
                        status=(
                            "success" if record.succeeded else "failure"
                        ),
                        start=record.submitted_at,
                        end=end,
                        clock="sim",
                        site=choice.site,
                        host=record.host,
                        attempt=attempts[name],
                        job_status=record.status,
                        fault=record.fault,
                    )
                if obs.enabled:
                    obs.record(
                        "scheduler.step",
                        sim_start=record.submitted_at,
                        sim_end=record.end_time,
                        status="ok" if record.succeeded else "error",
                        step=name,
                        site=choice.site,
                        host=record.host,
                        attempt=attempts[name],
                    )
                    obs.count(
                        "scheduler.steps",
                        status=record.status,
                        help="step completions by terminal status",
                    )
                    obs.observe(
                        "scheduler.step.queue_seconds",
                        record.queue_seconds,
                        help="simulated batch-queue wait per step",
                    )
                    obs.gauge("scheduler.in_flight", len(in_flight))

            def handle_success(record: JobRecord) -> None:
                frontier.complete(name)
                if breakers is not None:
                    breakers.breaker(choice.site).record_success(
                        self.grid.simulator.now
                    )
                    note_breaker(choice.site)
                if choice.ship_procedure:
                    self.selector.procedures.install(
                        step.transformation.name, choice.site
                    )
                result.outcomes[name] = StepOutcome(
                    step=name,
                    site=choice.site,
                    attempts=attempts[name],
                    record=record,
                )
                if self.step_listener is not None:
                    self.step_listener(step, choice, record)
                if progress is not None:
                    progress.step_finished(name, "ok")
                note_terminal()
                dispatch_ready()

            def handle_failure(record: JobRecord) -> None:
                failed_sites.setdefault(name, set()).add(choice.site)
                now = self.grid.simulator.now
                if breakers is not None:
                    breakers.breaker(choice.site).record_failure(now)
                    note_breaker(choice.site)
                if obs.enabled and record.fault:
                    obs.count(
                        "scheduler.step.faults",
                        kind=record.fault,
                        help="failed attempts by fault kind",
                    )
                if attempts[name] <= self.max_retries:
                    delay = policy.delay(attempts[name], key=name)
                    if obs.enabled:
                        obs.observe(
                            "scheduler.retry.backoff_seconds",
                            delay,
                            help="retry delays (sim time)",
                        )
                    if recorder is not None:
                        recorder.event(
                            "step.retry",
                            step=name,
                            attempt=attempts[name],
                            site=choice.site,
                            fault=record.fault,
                            delay=delay,
                            sim=now,
                        )
                    if delay <= 0.0:
                        # Synchronous resubmit preserves the historical
                        # event ordering of immediate retries.
                        submit(name)
                    else:
                        pending_retry.add(name)
                        self.grid.simulator.schedule(
                            delay, lambda: submit(name)
                        )
                else:
                    obs.count(
                        "scheduler.failures",
                        help="steps failed after exhausting retries",
                    )
                    if recorder is not None:
                        recorder.event(
                            "step.failed",
                            step=name,
                            attempts=attempts[name],
                            site=choice.site,
                            fault=record.fault,
                            sim=now,
                        )
                    if progress is not None:
                        progress.step_finished(name, "failed")
                    result.failed_steps.add(name)
                    result.outcomes[name] = StepOutcome(
                        step=name,
                        site=choice.site,
                        attempts=attempts[name],
                        record=record,
                    )
                    skip_downstream(name)
                    note_terminal()
                    if recovery.failure_policy == RUN_WHAT_YOU_CAN:
                        dispatch_ready()

            def on_complete(record: JobRecord) -> None:
                conclude(record)
                if not record.succeeded:
                    handle_failure(record)
                    return
                bad = self.grid.verify_outputs(record)
                if bad:
                    # Write-back validation: quarantine corrupt replicas
                    # and treat the attempt as failed so it re-executes.
                    for lfn in bad:
                        self.grid.quarantine(lfn, choice.site)
                    record.status = "failed"
                    record.fault = "corrupt"
                    record.error = (
                        "output verification failed for "
                        + ", ".join(sorted(bad))
                    )
                    handle_failure(record)
                    return
                handle_success(record)

            record = self.grid.submit(spec, on_complete)
            if recovery.step_timeout is not None:
                this_attempt = attempts[name]

                def watchdog() -> None:
                    # Stale timers: a newer attempt superseded this one,
                    # or the attempt already reached a terminal state.
                    if attempts.get(name) != this_attempt:
                        return
                    if record.status in ("done", "failed", "killed"):
                        return
                    self.grid.cancel(record)
                    record.status = "killed"
                    if obs.enabled:
                        obs.count(
                            "scheduler.timeouts",
                            help="straggler attempts killed at step timeout",
                        )
                    if recorder is not None:
                        recorder.event(
                            "step.timeout",
                            step=name,
                            attempt=this_attempt,
                            site=choice.site,
                            sim=self.grid.simulator.now,
                        )
                    conclude(record)
                    handle_failure(record)

                self.grid.simulator.schedule(recovery.step_timeout, watchdog)

        dispatch_ready()
        self.grid.simulator.run(until=until)
        if until is not None and terminal_count() < total:
            # Killed mid-flight: drop abandoned events so a resume on
            # the same simulator cannot replay them.
            result.interrupted = True
            self.grid.simulator.flush()
        result.finished_at = (
            finish_clock["t"]
            if finish_clock["t"] is not None
            else self.grid.simulator.now
        )
        if (
            not result.succeeded
            and not result.failed_steps
            and not result.interrupted
        ):
            missing = sorted(set(plan.steps) - done)
            raise ExecutionError(
                f"workflow stalled; steps never became ready: {missing[:5]}"
            )
        return result
