"""DAGMan-style workflow execution management (§5.4).

"Derivation is conducted by workflow execution management systems that
dispatch computation or data transfer requests to specific grid sites,
and monitor their completion, dispatching nodes of the workflow graph
when the node's predecessor dependencies have completed.  An example of
such a scheduler is the Condor DAGMan facility."

:class:`WorkflowScheduler` dispatches a :class:`~repro.planner.dag.Plan`
onto the simulated grid: ready steps are submitted as jobs, completions
release successors, failures are retried up to a bound, and the whole
run is summarized in a :class:`WorkflowResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ExecutionError, PlanningError
from repro.grid.gram import GridExecutionService, JobRecord, JobSpec
from repro.observability.instrument import NULL, Instrumentation
from repro.planner.dag import Plan, PlanStep
from repro.planner.strategies import SiteChoice, SiteSelector


@dataclass
class StepOutcome:
    """What happened to one plan step."""

    step: str
    site: str
    attempts: int
    record: JobRecord


@dataclass
class WorkflowResult:
    """Summary of one workflow run on the grid."""

    plan: Plan
    outcomes: dict[str, StepOutcome] = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float = 0.0
    failed_steps: set[str] = field(default_factory=set)
    #: Maximum number of simultaneously in-flight steps observed —
    #: the "hosts in a single workflow" number of §6.
    peak_in_flight: int = 0

    @property
    def succeeded(self) -> bool:
        return not self.failed_steps and len(self.outcomes) == len(self.plan.steps)

    @property
    def makespan(self) -> float:
        return self.finished_at - self.started_at

    def total_cpu_seconds(self) -> float:
        return sum(
            o.record.spec.cpu_seconds
            for o in self.outcomes.values()
            if o.record.succeeded
        )

    def total_queue_seconds(self) -> float:
        return sum(o.record.queue_seconds for o in self.outcomes.values())

    def total_stage_in_seconds(self) -> float:
        return sum(o.record.stage_in_seconds for o in self.outcomes.values())

    def hosts_used(self) -> set[str]:
        return {
            o.record.host for o in self.outcomes.values() if o.record.host
        }

    def sites_used(self) -> set[str]:
        return {o.site for o in self.outcomes.values()}


#: Called after each step completes (successfully); used by the grid
#: executor to write invocation/replica records into the catalog.
StepListener = Callable[[PlanStep, SiteChoice, JobRecord], None]


class WorkflowScheduler:
    """Dependency-driven dispatcher over a grid execution service."""

    def __init__(
        self,
        grid: GridExecutionService,
        selector: SiteSelector,
        pattern: str = "ship-data",
        max_retries: int = 2,
        max_hosts: Optional[int] = None,
        step_listener: Optional[StepListener] = None,
        instrumentation: Optional[Instrumentation] = None,
    ):
        if max_retries < 0:
            raise PlanningError("max_retries must be >= 0")
        self.grid = grid
        self.selector = selector
        self.pattern = pattern
        self.max_retries = max_retries
        self.max_hosts = max_hosts
        self.step_listener = step_listener
        self.obs = instrumentation or NULL

    def run(self, plan: Plan) -> WorkflowResult:
        """Execute ``plan`` to completion on the simulator's clock.

        Missing source datasets raise
        :class:`~repro.errors.ExecutionError` before any dispatch: the
        workflow would deadlock otherwise.
        """
        for source in sorted(plan.sources | plan.reused):
            if not self.grid.replicas.has(source):
                raise ExecutionError(
                    f"source dataset {source!r} has no replica on the grid"
                )
        with self.obs.span(
            "scheduler.run",
            steps=len(plan.steps),
            pattern=self.pattern,
        ) as run_span:
            result = self._run(plan)
            if self.obs.enabled:
                run_span.set("peak_in_flight", result.peak_in_flight)
                run_span.set("failed", len(result.failed_steps))
            return result

    def _run(self, plan: Plan) -> WorkflowResult:
        obs = self.obs
        result = WorkflowResult(plan=plan, started_at=self.grid.simulator.now)
        done: set[str] = set()
        in_flight: set[str] = set()
        attempts: dict[str, int] = {}

        def dispatch_ready() -> None:
            if result.failed_steps:
                return
            for name in plan.ready_steps(done):
                if name in in_flight:
                    continue
                # The workflow-level width cap ("as many as 120 hosts in
                # a single workflow", §6) bounds jobs in flight globally.
                if (
                    self.max_hosts is not None
                    and len(in_flight) >= self.max_hosts
                ):
                    break
                submit(name)

        def submit(name: str) -> None:
            step = plan.steps[name]
            attempts[name] = attempts.get(name, 0) + 1
            in_flight.add(name)
            result.peak_in_flight = max(result.peak_in_flight, len(in_flight))
            if obs.enabled:
                obs.count(
                    "scheduler.dispatched", help="job submissions (incl. retries)"
                )
                if attempts[name] > 1:
                    obs.count("scheduler.retries", help="step resubmissions")
                obs.gauge(
                    "scheduler.in_flight",
                    len(in_flight),
                    help="steps currently submitted and incomplete",
                )
                obs.gauge(
                    "scheduler.queue_depth",
                    len(plan.ready_steps(done)) - len(in_flight),
                    help="ready steps awaiting dispatch",
                )
            choice = self.selector.choose(
                step, self.pattern, now=self.grid.simulator.now
            )
            spec = JobSpec(
                name=name,
                site=choice.site,
                cpu_seconds=step.cpu_seconds,
                inputs=step.inputs,
                outputs=dict(step.output_sizes),
                executable=step.transformation.executable,
                environment=dict(step.derivation.environment),
                # The width cap is enforced globally in dispatch_ready;
                # per-site host restriction is not additionally needed.
                max_hosts=None,
                setup_seconds=choice.procedure_seconds,
            )

            def on_complete(record: JobRecord) -> None:
                in_flight.discard(name)
                if obs.enabled:
                    obs.record(
                        "scheduler.step",
                        sim_start=record.submitted_at,
                        sim_end=record.end_time,
                        status="ok" if record.succeeded else "error",
                        step=name,
                        site=choice.site,
                        host=record.host,
                        attempt=attempts[name],
                    )
                    obs.count(
                        "scheduler.steps",
                        status=record.status,
                        help="step completions by terminal status",
                    )
                    obs.observe(
                        "scheduler.step.queue_seconds",
                        record.queue_seconds,
                        help="simulated batch-queue wait per step",
                    )
                    obs.gauge("scheduler.in_flight", len(in_flight))
                if record.succeeded:
                    done.add(name)
                    if choice.ship_procedure:
                        self.selector.procedures.install(
                            step.transformation.name, choice.site
                        )
                    result.outcomes[name] = StepOutcome(
                        step=name,
                        site=choice.site,
                        attempts=attempts[name],
                        record=record,
                    )
                    if self.step_listener is not None:
                        self.step_listener(step, choice, record)
                    dispatch_ready()
                elif attempts[name] <= self.max_retries:
                    submit(name)
                else:
                    obs.count(
                        "scheduler.failures",
                        help="steps failed after exhausting retries",
                    )
                    result.failed_steps.add(name)
                    result.outcomes[name] = StepOutcome(
                        step=name,
                        site=choice.site,
                        attempts=attempts[name],
                        record=record,
                    )

            self.grid.submit(spec, on_complete)

        dispatch_ready()
        self.grid.simulator.run()
        result.finished_at = self.grid.simulator.now
        if not result.succeeded and not result.failed_steps:
            missing = sorted(set(plan.steps) - done)
            raise ExecutionError(
                f"workflow stalled; steps never became ready: {missing[:5]}"
            )
        return result
