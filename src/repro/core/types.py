"""The Chimera dataset-type model.

A dataset's type comprises three *dimensions* (§3.1 of the paper):

* **content** — the semantic content (e.g. ``cms-simulation``),
* **format** — the physical representation (e.g. ``tar-archive``),
* **encoding** — the encoding used in that representation (e.g. ``ascii``).

Within each dimension, type names are arranged in a hierarchy of
subtypes, which allows generalization and specialization.  The base
types of the three dimensions are ``Dataset-content``,
``Dataset-format`` and ``Dataset-encoding``; ``Dataset`` is a synonym
for the collective base type, so a formal transformation argument typed
simply as ``Dataset`` accepts any dataset.

The model intentionally does **not** describe the byte-level layout of a
dataset; its purpose is discovery and type-checking of transformation
signatures (see :mod:`repro.core.transformation`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.errors import TypeSystemError, UnknownTypeError

#: The three type dimensions, in canonical order.
DIMENSIONS = ("content", "format", "encoding")

#: Name of the root type in each dimension, keyed by dimension.
DIMENSION_ROOTS = {
    "content": "Dataset-content",
    "format": "Dataset-format",
    "encoding": "Dataset-encoding",
}

#: Synonym for "any dataset": every dimension at its root.
ANY_DATASET_NAME = "Dataset"


class TypeRegistry:
    """A per-community registry of dataset type hierarchies.

    There are no predefined base types beyond the three dimension roots:
    each user community defines its own set of type names (§3.1).  The
    registry stores, for every dimension, a forest rooted at the
    dimension's base type, and answers subtype queries by walking parent
    links.

    Type names are case-preserving but compared case-insensitively, so
    ``"Fileset"`` and ``"fileset"`` denote the same node.
    """

    def __init__(self):
        # dimension -> canonical(lower) name -> (display name, parent canonical or None)
        self._nodes: dict[str, dict[str, tuple[str, Optional[str]]]] = {}
        for dim, root in DIMENSION_ROOTS.items():
            self._nodes[dim] = {root.lower(): (root, None)}

    # -- registration ------------------------------------------------

    def register(self, dimension: str, name: str, parent: Optional[str] = None) -> None:
        """Register ``name`` as a subtype of ``parent`` in ``dimension``.

        ``parent=None`` attaches the type directly under the dimension
        root.  Re-registering an existing name with the same parent is a
        no-op; with a different parent it is an error (hierarchies are
        append-only so provenance records never change meaning).
        """
        dim = self._check_dimension(dimension)
        nodes = self._nodes[dim]
        parent_key = (parent or DIMENSION_ROOTS[dim]).lower()
        if parent_key not in nodes:
            raise UnknownTypeError(
                f"parent type {parent!r} not registered in dimension {dim!r}"
            )
        key = name.lower()
        if key in nodes:
            existing_parent = nodes[key][1]
            if existing_parent != parent_key:
                raise TypeSystemError(
                    f"type {name!r} already registered in dimension {dim!r} "
                    f"under a different parent"
                )
            return
        nodes[key] = (name, parent_key)

    def register_hierarchy(self, dimension: str, tree: dict) -> None:
        """Register a nested ``{name: {child: {...}}}`` tree of subtypes.

        Top-level keys attach under the dimension root.  Convenient for
        loading an Appendix-C-style hierarchy in one call.
        """

        def walk(parent: Optional[str], subtree: dict) -> None:
            for name, children in subtree.items():
                self.register(dimension, name, parent)
                if children:
                    walk(name, children)

        walk(None, tree)

    # -- queries -----------------------------------------------------

    def knows(self, dimension: str, name: str) -> bool:
        """Return whether ``name`` is registered in ``dimension``."""
        dim = self._check_dimension(dimension)
        return name.lower() in self._nodes[dim]

    def parent(self, dimension: str, name: str) -> Optional[str]:
        """Return the display name of ``name``'s parent, or None at the root."""
        dim = self._check_dimension(dimension)
        node = self._lookup(dim, name)
        parent_key = node[1]
        if parent_key is None:
            return None
        return self._nodes[dim][parent_key][0]

    def ancestry(self, dimension: str, name: str) -> list[str]:
        """Return the path from ``name`` up to the dimension root, inclusive."""
        dim = self._check_dimension(dimension)
        path = []
        key: Optional[str] = name.lower()
        while key is not None:
            display, parent_key = self._lookup(dim, key)
            path.append(display)
            key = parent_key
        return path

    def is_subtype(self, dimension: str, candidate: str, ancestor: str) -> bool:
        """Return whether ``candidate`` equals or specializes ``ancestor``.

        Every registered type is a subtype of its dimension root, and of
        itself (subtyping is reflexive).
        """
        dim = self._check_dimension(dimension)
        target = ancestor.lower()
        if target not in self._nodes[dim]:
            raise UnknownTypeError(
                f"type {ancestor!r} not registered in dimension {dim!r}"
            )
        key: Optional[str] = candidate.lower()
        while key is not None:
            if key == target:
                return True
            key = self._lookup(dim, key)[1]
        return False

    def descendants(self, dimension: str, name: str) -> list[str]:
        """Return display names of all strict descendants of ``name``."""
        dim = self._check_dimension(dimension)
        self._lookup(dim, name)  # existence check
        root_key = name.lower()
        out = []
        for key, (display, _) in self._nodes[dim].items():
            if key != root_key and self.is_subtype(dim, key, root_key):
                out.append(display)
        return sorted(out)

    def names(self, dimension: str) -> list[str]:
        """Return all display names registered in ``dimension``, sorted."""
        dim = self._check_dimension(dimension)
        return sorted(display for display, _ in self._nodes[dim].values())

    # -- dataset types -----------------------------------------------

    def make_type(
        self,
        content: str = DIMENSION_ROOTS["content"],
        format: str = DIMENSION_ROOTS["format"],
        encoding: str = DIMENSION_ROOTS["encoding"],
    ) -> "DatasetType":
        """Build a :class:`DatasetType`, validating every dimension name."""
        for dim, name in (("content", content), ("format", format), ("encoding", encoding)):
            self._lookup(dim, name)
        return DatasetType(content=content, format=format, encoding=encoding)

    def conforms(self, actual: "DatasetType", formal: "DatasetType") -> bool:
        """Type-conformance rule of the virtual data model (§3.2).

        A dataset may be supplied where ``formal`` is expected iff its
        type is a (reflexive) subtype of the formal type in **every**
        dimension — the multiple-inheritance-style check the paper
        describes as "a proper subtype of the type list".
        """
        return all(
            self.is_subtype(dim, getattr(actual, dim), getattr(formal, dim))
            for dim in DIMENSIONS
        )

    def conforms_to_any(self, actual: "DatasetType", formals: Iterable["DatasetType"]) -> bool:
        """Return whether ``actual`` conforms to at least one formal type.

        Transformation arguments may be typed as a *list* of dataset
        types, meaning a union: the actual type must match one member.
        """
        return any(self.conforms(actual, formal) for formal in formals)

    # -- internals ---------------------------------------------------

    @staticmethod
    def _check_dimension(dimension: str) -> str:
        dim = dimension.lower()
        if dim not in DIMENSION_ROOTS:
            raise TypeSystemError(
                f"unknown type dimension {dimension!r}; expected one of {DIMENSIONS}"
            )
        return dim

    def _lookup(self, dimension: str, name: str) -> tuple[str, Optional[str]]:
        try:
            return self._nodes[dimension][name.lower()]
        except KeyError:
            raise UnknownTypeError(
                f"type {name!r} not registered in dimension {dimension!r}"
            ) from None

    def __iter__(self) -> Iterator[tuple[str, str, Optional[str]]]:
        """Yield ``(dimension, name, parent)`` triples for every node."""
        for dim in DIMENSIONS:
            for display, parent_key in self._nodes[dim].values():
                parent = self._nodes[dim][parent_key][0] if parent_key else None
                yield dim, display, parent


@dataclass(frozen=True)
class DatasetType:
    """A fully specified dataset type: one name per dimension.

    Instances are plain value objects; subtype relations live in the
    :class:`TypeRegistry` that minted the names.  Use
    :meth:`TypeRegistry.make_type` to get validated instances.
    """

    content: str = DIMENSION_ROOTS["content"]
    format: str = DIMENSION_ROOTS["format"]
    encoding: str = DIMENSION_ROOTS["encoding"]

    def is_any(self) -> bool:
        """True when every dimension sits at its root ("Dataset")."""
        return all(
            getattr(self, dim).lower() == DIMENSION_ROOTS[dim].lower()
            for dim in DIMENSIONS
        )

    def as_dict(self) -> dict[str, str]:
        """Return a ``{dimension: name}`` mapping."""
        return {dim: getattr(self, dim) for dim in DIMENSIONS}

    def __str__(self) -> str:
        if self.is_any():
            return ANY_DATASET_NAME
        return f"[{self.content} / {self.format} / {self.encoding}]"


#: Convenience instance meaning "any dataset" (essentially untyped).
ANY_DATASET = DatasetType()


@dataclass(frozen=True)
class TypeUnion:
    """A union of dataset types used as a formal-argument type list.

    A transformation argument "can be typed as a list of dataset-types,
    indicating that the transformation can accept a union of types for
    that argument" (§3.2).
    """

    members: tuple[DatasetType, ...] = field(default=(ANY_DATASET,))

    def __post_init__(self):
        if not self.members:
            raise TypeSystemError("a type union must have at least one member")

    def accepts(self, actual: DatasetType, registry: TypeRegistry) -> bool:
        """Return whether ``actual`` conforms to some member of the union."""
        return registry.conforms_to_any(actual, self.members)

    def __str__(self) -> str:
        return " | ".join(str(m) for m in self.members)


def default_registry() -> TypeRegistry:
    """Build a registry pre-loaded with the Appendix C example hierarchy.

    The hierarchy mirrors the paper's "Example dataset-type Hierarchy":
    format (filesets, spreadsheets, relations), encoding (text flavours,
    tables, HDF, SPSS, SAS) and content (UChicago records, CMS
    simulation/analysis, SDSS products).
    """
    reg = TypeRegistry()
    reg.register_hierarchy(
        "format",
        {
            "Fileset": {
                "Simple": {},
                "Multi-file-list": {},
                "Tar-archive": {},
                "Zip-archive": {},
            },
            "Spreadsheet": {"Excel-95": {}, "Excel-2000": {}},
            "Relation": {
                "SQL-table": {},
                "SQL-table-set": {},
                "SQL-table-keyrange": {},
            },
            "Object-store": {"Object-closure": {}},
        },
    )
    reg.register_hierarchy(
        "encoding",
        {
            "Text": {
                "ASCII": {"DOS-text": {}, "UNIX-text": {}},
                "EBCDIC": {"MVS-text": {}},
                "Unicode": {},
            },
            "Table": {"Tab-separated-table": {}, "Comma-separated-table": {}},
            "HDF-file": {"HDF-4-file": {}, "HDF-5-file": {}},
            "SPSS": {"SPSS-portable": {}, "SPSS-native": {}},
            "SAS": {"SAS-transport": {}, "SAS-native": {}},
            "Binary": {},
        },
    )
    reg.register_hierarchy(
        "content",
        {
            "UChicago": {
                "UChicago-student-record": {},
                "UChicago-class-record": {},
            },
            "CMS": {
                "Simulation": {"Zebra-file": {}, "Geant-4-file": {}},
                "Analysis": {"ROOT-IO-file": {}, "PAW-ntuple-file": {}},
            },
            "SDSS": {
                "FITS-file": {},
                "Object-map": {},
                "Spectrometry-raw": {},
                "Image-raw": {},
            },
        },
    )
    return reg
