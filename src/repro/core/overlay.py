"""Virtual datasets over shared physical storage, with reclamation.

§8 future work: "a concept we call 'virtual datasets' — where multiple
datasets refer to different overlaid subsets of the same physical
storage elements.  This raises difficult issues of storage management
and garbage collection."

:class:`OverlayStore` solves the reclamation half: datasets register
the physical files their descriptors touch (any descriptor works —
slices of a shared event file, members of a shared archive, plain
files); the store reference-counts files across datasets, honours
pins, and answers "which physical bytes may be deleted now?" when
datasets are dropped.  Overlap queries expose which datasets would be
damaged by deleting a given file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.dataset import Dataset
from repro.core.descriptors import SliceDescriptor
from repro.errors import SchemaError


@dataclass(frozen=True)
class ReclaimReport:
    """Result of one garbage-collection pass."""

    dropped_datasets: tuple[str, ...]
    freed_files: tuple[str, ...]
    freed_bytes: int
    #: Files still referenced by surviving datasets (not freed).
    retained_files: tuple[str, ...]


class OverlayStore:
    """Reference-counted physical storage shared by overlaid datasets."""

    def __init__(self):
        # file -> set of dataset names referencing it
        self._refs: dict[str, set[str]] = {}
        # dataset -> files it references
        self._files_of: dict[str, set[str]] = {}
        self._sizes: dict[str, int] = {}
        self._pinned: set[str] = set()

    # -- registration ------------------------------------------------------

    def register(
        self,
        dataset: Dataset | str,
        files: Optional[Iterable[str]] = None,
        sizes: Optional[dict[str, int]] = None,
    ) -> None:
        """Record a dataset's claim on physical files.

        For a :class:`~repro.core.dataset.Dataset` the files default to
        its descriptor's ``files()``; bare names need ``files``
        explicitly.  Registering the same dataset again replaces its
        claim set.
        """
        if isinstance(dataset, Dataset):
            name = dataset.name
            claimed = set(files if files is not None else dataset.descriptor.files())
        else:
            name = dataset
            if files is None:
                raise SchemaError(
                    "registering a bare dataset name requires files="
                )
            claimed = set(files)
        if name in self._files_of:
            self.drop(name)
        self._files_of[name] = claimed
        for f in claimed:
            self._refs.setdefault(f, set()).add(name)
        for f, size in (sizes or {}).items():
            self._sizes[f] = size

    def set_size(self, file: str, size: int) -> None:
        self._sizes[file] = size

    def pin(self, file: str) -> None:
        """Protect a file from reclamation regardless of refcount."""
        self._pinned.add(file)

    def unpin(self, file: str) -> None:
        self._pinned.discard(file)

    # -- queries ------------------------------------------------------------

    def datasets(self) -> list[str]:
        return sorted(self._files_of)

    def files_of(self, dataset: str) -> set[str]:
        return set(self._files_of.get(dataset, ()))

    def referencers_of(self, file: str) -> set[str]:
        """Datasets that would be damaged by deleting ``file``."""
        return set(self._refs.get(file, ()))

    def refcount(self, file: str) -> int:
        return len(self._refs.get(file, ()))

    def overlapping(self, dataset: str) -> set[str]:
        """Other datasets sharing at least one physical file."""
        out: set[str] = set()
        for f in self._files_of.get(dataset, ()):
            out |= self._refs.get(f, set())
        out.discard(dataset)
        return out

    def slice_overlaps(self, a: Dataset, b: Dataset) -> bool:
        """Byte-precise overlap when both datasets are slice views.

        Falls back to file-level overlap for other descriptor kinds.
        """
        da, db = a.descriptor, b.descriptor
        if isinstance(da, SliceDescriptor) and isinstance(db, SliceDescriptor):
            for sa in da.slices:
                for sb in db.slices:
                    if sa.path != sb.path:
                        continue
                    if (
                        sa.offset < sb.offset + sb.length
                        and sb.offset < sa.offset + sa.length
                    ):
                        return True
            return False
        return bool(set(da.files()) & set(db.files()))

    # -- reclamation --------------------------------------------------------------

    def collectable(self) -> list[str]:
        """Files with zero referencing datasets and no pin."""
        return sorted(
            f
            for f, holders in self._refs.items()
            if not holders and f not in self._pinned
        )

    def drop(self, dataset: str) -> None:
        """Remove one dataset's claims (no files are freed yet)."""
        for f in self._files_of.pop(dataset, set()):
            self._refs.get(f, set()).discard(dataset)

    def reclaim(self, drop: Iterable[str] = ()) -> ReclaimReport:
        """Drop datasets and free every file nothing references.

        Freed files disappear from the store entirely; retained files
        (still claimed or pinned) are reported so callers can see why
        bytes were not recovered.
        """
        dropped = tuple(sorted(set(drop)))
        for name in dropped:
            self.drop(name)
        freed = []
        retained = []
        for f in sorted(self._refs):
            if self._refs[f]:
                retained.append(f)
            elif f in self._pinned:
                retained.append(f)
            else:
                freed.append(f)
        freed_bytes = sum(self._sizes.get(f, 0) for f in freed)
        for f in freed:
            del self._refs[f]
            self._sizes.pop(f, None)
        return ReclaimReport(
            dropped_datasets=dropped,
            freed_files=tuple(freed),
            freed_bytes=freed_bytes,
            retained_files=tuple(retained),
        )
