"""Attribute and annotation support shared by all schema objects.

For each object the virtual data model "specifies a set of required
attributes while also allowing for the definition of arbitrary
additional attributes used to capture application-specific information"
(§3).  :class:`AttributeSet` holds those arbitrary attributes;
:class:`Annotation` wraps one attribute value with authorship metadata
so communities can implement documentation and quality processes on top
(§2 "Documentation", §4.2 "Quality").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.errors import SchemaError

#: Attribute values are restricted to JSON-ish scalars and flat lists so
#: that every backend (sqlite, filetree, XML) can store them faithfully.
SCALAR_TYPES = (str, int, float, bool)


def _check_value(value: Any) -> Any:
    if isinstance(value, SCALAR_TYPES):
        return value
    if isinstance(value, (list, tuple)):
        items = list(value)
        for item in items:
            if not isinstance(item, SCALAR_TYPES):
                raise SchemaError(
                    f"attribute list items must be scalars, got {type(item).__name__}"
                )
        return items
    raise SchemaError(
        f"attribute values must be scalars or flat lists, got {type(value).__name__}"
    )


@dataclass
class Annotation:
    """One user-supplied metadata assertion about a schema object.

    ``author`` identifies the principal who made the assertion and
    ``timestamp`` is an application-supplied logical or wall-clock time;
    both are optional, matching ad-hoc personal annotation as well as
    curated community process.
    """

    key: str
    value: Any
    author: Optional[str] = None
    timestamp: Optional[float] = None

    def __post_init__(self):
        if not self.key:
            raise SchemaError("annotation key must be non-empty")
        self.value = _check_value(self.value)


class AttributeSet:
    """A mapping of arbitrary named attributes with annotation history.

    Plain dict-style access reads and writes the *current* value of an
    attribute; the full history of :class:`Annotation` records is kept so
    provenance of metadata itself is never lost.
    """

    def __init__(self, initial: Optional[dict[str, Any]] = None):
        self._history: dict[str, list[Annotation]] = {}
        if initial:
            for key, value in initial.items():
                self.set(key, value)

    # -- mutation ------------------------------------------------------

    def set(
        self,
        key: str,
        value: Any,
        author: Optional[str] = None,
        timestamp: Optional[float] = None,
    ) -> Annotation:
        """Record a new value for ``key`` and return the annotation."""
        note = Annotation(key=key, value=value, author=author, timestamp=timestamp)
        self._history.setdefault(key, []).append(note)
        return note

    def remove(self, key: str) -> None:
        """Forget ``key`` entirely, including its history."""
        if key not in self._history:
            raise KeyError(key)
        del self._history[key]

    # -- access --------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Return the current value of ``key`` or ``default``."""
        notes = self._history.get(key)
        if not notes:
            return default
        return notes[-1].value

    def history(self, key: str) -> list[Annotation]:
        """Return all annotations ever recorded for ``key`` (oldest first)."""
        return list(self._history.get(key, []))

    def keys(self) -> list[str]:
        return sorted(self._history)

    def as_dict(self) -> dict[str, Any]:
        """Return a snapshot of current values, suitable for serialization."""
        return {key: notes[-1].value for key, notes in self._history.items()}

    def matches(self, criteria: dict[str, Any]) -> bool:
        """Return whether every ``criteria`` item equals the current value."""
        return all(self.get(key) == value for key, value in criteria.items())

    # -- dunder --------------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        notes = self._history.get(key)
        if not notes:
            raise KeyError(key)
        return notes[-1].value

    def __setitem__(self, key: str, value: Any) -> None:
        self.set(key, value)

    def __contains__(self, key: str) -> bool:
        return key in self._history

    def __len__(self) -> int:
        return len(self._history)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._history))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeSet):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return f"AttributeSet({self.as_dict()!r})"

    def copy(self) -> "AttributeSet":
        """Return a deep copy including annotation history."""
        clone = AttributeSet()
        for key, notes in self._history.items():
            clone._history[key] = [
                Annotation(n.key, n.value, n.author, n.timestamp) for n in notes
            ]
        return clone
