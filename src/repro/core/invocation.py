"""Invocations: records of actual derivation executions.

"An invocation specializes a derivation by specifying a specific
environment and context (e.g., date, time, processor, OS) in which its
associated derivation was executed.  Specific replicas of datasets can
be associated with a particular invocation for tracking and diagnostic
purposes." (§3)

Invocation records double as the estimator's training data: resource
requirements recorded with provenance information "can be used to guide
subsequent planning decisions" (§2).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.attributes import AttributeSet
from repro.core.naming import check_object_name
from repro.errors import SchemaError

_last_invocation_ordinal = 0
# The parallel executor records invocations from pool threads; without
# the lock two threads could be issued the same ordinal.
_invocation_id_lock = threading.Lock()


def _next_invocation_id() -> str:
    global _last_invocation_ordinal
    with _invocation_id_lock:
        _last_invocation_ordinal += 1
        return f"inv-{_last_invocation_ordinal:08d}"


def observe_invocation_id(invocation_id: str) -> None:
    # Advance the allocator past IDs loaded from persistent catalogs so
    # a process reopening a populated workspace never re-issues one.
    global _last_invocation_ordinal
    if invocation_id.startswith("inv-"):
        try:
            ordinal = int(invocation_id[4:])
        except ValueError:
            return
        with _invocation_id_lock:
            if ordinal > _last_invocation_ordinal:
                _last_invocation_ordinal = ordinal


#: Terminal states an invocation may end in.
STATUSES = ("success", "failure", "aborted")


@dataclass(frozen=True)
class ExecutionContext:
    """Where and under what environment a derivation ran."""

    site: str = "local"
    host: str = "localhost"
    os: str = "linux"
    processor: str = "x86_64"
    environment: tuple[tuple[str, str], ...] = ()

    @classmethod
    def make(cls, site="local", host="localhost", os="linux",
             processor="x86_64", environment: Optional[dict[str, str]] = None):
        """Build a context from a plain environment dict."""
        env = tuple(sorted((environment or {}).items()))
        return cls(site=site, host=host, os=os, processor=processor,
                   environment=env)

    def environment_dict(self) -> dict[str, str]:
        return dict(self.environment)


@dataclass(frozen=True)
class ResourceUsage:
    """Measured resource consumption of one execution."""

    cpu_seconds: float = 0.0
    wall_seconds: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    peak_memory: int = 0

    def __post_init__(self):
        for name in ("cpu_seconds", "wall_seconds"):
            if getattr(self, name) < 0:
                raise SchemaError(f"{name} must be non-negative")
        for name in ("bytes_read", "bytes_written", "peak_memory"):
            if getattr(self, name) < 0:
                raise SchemaError(f"{name} must be non-negative")


@dataclass
class Invocation:
    """One recorded execution of a derivation.

    ``replica_bindings`` maps formal argument names to the replica ids
    actually read or written, pinning provenance to physical copies.
    ``start_time`` is in the executing clock's domain (simulation time
    for grid runs, epoch seconds for local runs).
    """

    derivation_name: str
    invocation_id: str = field(default_factory=_next_invocation_id)
    status: str = "success"
    start_time: float = 0.0
    context: ExecutionContext = field(default_factory=ExecutionContext)
    usage: ResourceUsage = field(default_factory=ResourceUsage)
    replica_bindings: dict[str, str] = field(default_factory=dict)
    exit_code: int = 0
    error: Optional[str] = None
    attributes: AttributeSet = field(default_factory=AttributeSet)

    def __post_init__(self):
        check_object_name(self.derivation_name)
        if self.status not in STATUSES:
            raise SchemaError(
                f"invalid invocation status {self.status!r}; "
                f"expected one of {STATUSES}"
            )
        if isinstance(self.attributes, dict):
            self.attributes = AttributeSet(self.attributes)
        observe_invocation_id(self.invocation_id)

    @property
    def succeeded(self) -> bool:
        return self.status == "success"

    @property
    def end_time(self) -> float:
        return self.start_time + self.usage.wall_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "invocation_id": self.invocation_id,
            "derivation_name": self.derivation_name,
            "status": self.status,
            "start_time": self.start_time,
            "context": {
                "site": self.context.site,
                "host": self.context.host,
                "os": self.context.os,
                "processor": self.context.processor,
                "environment": self.context.environment_dict(),
            },
            "usage": {
                "cpu_seconds": self.usage.cpu_seconds,
                "wall_seconds": self.usage.wall_seconds,
                "bytes_read": self.usage.bytes_read,
                "bytes_written": self.usage.bytes_written,
                "peak_memory": self.usage.peak_memory,
            },
            "replica_bindings": dict(self.replica_bindings),
            "exit_code": self.exit_code,
            "error": self.error,
            "attributes": self.attributes.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Invocation":
        ctx = data.get("context", {})
        usage = data.get("usage", {})
        return cls(
            derivation_name=data["derivation_name"],
            invocation_id=data.get("invocation_id") or _next_invocation_id(),
            status=data.get("status", "success"),
            start_time=data.get("start_time", 0.0),
            context=ExecutionContext.make(
                site=ctx.get("site", "local"),
                host=ctx.get("host", "localhost"),
                os=ctx.get("os", "linux"),
                processor=ctx.get("processor", "x86_64"),
                environment=ctx.get("environment") or {},
            ),
            usage=ResourceUsage(
                cpu_seconds=usage.get("cpu_seconds", 0.0),
                wall_seconds=usage.get("wall_seconds", 0.0),
                bytes_read=usage.get("bytes_read", 0),
                bytes_written=usage.get("bytes_written", 0),
                peak_memory=usage.get("peak_memory", 0),
            ),
            replica_bindings=dict(data.get("replica_bindings", {})),
            exit_code=data.get("exit_code", 0),
            error=data.get("error"),
            attributes=AttributeSet(data.get("attributes") or {}),
        )

    def __str__(self) -> str:
        return (
            f"Invocation({self.invocation_id} of {self.derivation_name}: "
            f"{self.status} at {self.context.site} in "
            f"{self.usage.wall_seconds:.1f}s)"
        )
