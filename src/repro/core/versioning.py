"""Structured versioning of transformations and compatibility assertions.

The paper lists this as "an important issue not yet addressed in our
design": "It is important that we be able not only to track precisely
what version of a transformation was executed to derive a given
dataset, but also to express 'equivalence' among different versions."
(§3.2)  This module implements that future-work item.

A :class:`Version` is a dotted numeric tuple with ordering.  A
:class:`VersionRegistry` records, per transformation name, the known
versions and a set of *compatibility assertions* — signed statements by
some authority that version B is equivalent to version A for a class of
uses.  Equivalence is reflexive and transitive within an assertion
class; :meth:`VersionRegistry.equivalent` answers whether two versions
may be substituted for one another, which the planner uses to decide
whether existing derived data can satisfy a request against a newer
transformation version.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.errors import SchemaError

_VERSION_RE = re.compile(r"^\d+(\.\d+)*$")


@dataclass(frozen=True, order=False)
class Version:
    """A dotted numeric version with component-wise ordering."""

    parts: tuple[int, ...]

    @classmethod
    def parse(cls, text: str) -> "Version":
        if not _VERSION_RE.match(text):
            raise SchemaError(f"invalid version string {text!r}")
        return cls(tuple(int(p) for p in text.split(".")))

    def _key(self) -> tuple[int, ...]:
        # Normalize trailing zeros so 1.0 == 1 == 1.0.0.
        parts = list(self.parts)
        while len(parts) > 1 and parts[-1] == 0:
            parts.pop()
        return tuple(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __lt__(self, other: "Version") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Version") -> bool:
        return self == other or self < other

    def __gt__(self, other: "Version") -> bool:
        return other < self

    def __ge__(self, other: "Version") -> bool:
        return self == other or other < self

    def __str__(self) -> str:
        return ".".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class CompatibilityAssertion:
    """An authority's claim that two versions are interchangeable.

    ``scope`` qualifies the claim: ``"exact"`` asserts bitwise-identical
    outputs; ``"semantic"`` asserts equivalent meaning (the paper's
    "equivalent in their behavior and semantics for a certain class of
    transformations"); any other string names a community-defined
    equivalence class.
    """

    transformation: str
    version_a: Version
    version_b: Version
    scope: str = "semantic"
    authority: Optional[str] = None

    def covers(self, a: Version, b: Version) -> bool:
        return {a, b} == {self.version_a, self.version_b}


class VersionRegistry:
    """Known versions and compatibility assertions per transformation."""

    def __init__(self):
        self._versions: dict[str, set[Version]] = {}
        self._assertions: dict[str, list[CompatibilityAssertion]] = {}

    def register(self, transformation: str, version: str | Version) -> Version:
        """Record a version of ``transformation``; returns it parsed."""
        v = version if isinstance(version, Version) else Version.parse(version)
        self._versions.setdefault(transformation, set()).add(v)
        return v

    def versions(self, transformation: str) -> list[Version]:
        """All known versions, oldest first."""
        return sorted(self._versions.get(transformation, ()))

    def latest(self, transformation: str) -> Optional[Version]:
        vs = self._versions.get(transformation)
        return max(vs) if vs else None

    def assert_compatible(
        self,
        transformation: str,
        version_a: str | Version,
        version_b: str | Version,
        scope: str = "semantic",
        authority: Optional[str] = None,
    ) -> CompatibilityAssertion:
        """Record (and return) a compatibility assertion between versions."""
        a = self.register(transformation, version_a)
        b = self.register(transformation, version_b)
        assertion = CompatibilityAssertion(
            transformation=transformation,
            version_a=a,
            version_b=b,
            scope=scope,
            authority=authority,
        )
        self._assertions.setdefault(transformation, []).append(assertion)
        return assertion

    def assertions(self, transformation: str) -> list[CompatibilityAssertion]:
        return list(self._assertions.get(transformation, ()))

    def equivalent(
        self,
        transformation: str,
        version_a: str | Version,
        version_b: str | Version,
        scope: str = "semantic",
    ) -> bool:
        """Whether two versions are interchangeable under ``scope``.

        Equivalence is the reflexive-transitive closure of the recorded
        assertions whose scope matches.  ``"exact"`` assertions also
        satisfy ``"semantic"`` queries (bitwise-identical implies
        semantically equivalent), but not vice versa.
        """
        a = version_a if isinstance(version_a, Version) else Version.parse(version_a)
        b = version_b if isinstance(version_b, Version) else Version.parse(version_b)
        if a == b:
            return True
        acceptable = {scope}
        if scope == "semantic":
            acceptable.add("exact")
        # Union-find over the assertion graph restricted to `acceptable`.
        frontier = {a}
        seen = {a}
        while frontier:
            current = frontier.pop()
            for assertion in self._assertions.get(transformation, ()):
                if assertion.scope not in acceptable:
                    continue
                other: Optional[Version] = None
                if assertion.version_a == current:
                    other = assertion.version_b
                elif assertion.version_b == current:
                    other = assertion.version_a
                if other is None or other in seen:
                    continue
                if other == b:
                    return True
                seen.add(other)
                frontier.add(other)
        return False

    def equivalence_class(
        self, transformation: str, version: str | Version, scope: str = "semantic"
    ) -> list[Version]:
        """All versions interchangeable with ``version`` under ``scope``."""
        v = version if isinstance(version, Version) else Version.parse(version)
        return sorted(
            candidate
            for candidate in self._versions.get(transformation, {v}) | {v}
            if self.equivalent(transformation, v, candidate, scope=scope)
        )
