"""Core virtual data schema: the paper's primary contribution (§3).

Re-exports the five schema object classes (dataset, replica,
transformation, derivation, invocation), the three-dimensional dataset
type model, descriptors, naming, attributes and versioning.
"""

from repro.core.attributes import Annotation, AttributeSet
from repro.core.dataset import Dataset
from repro.core.derivation import ActualArg, DatasetArg, Derivation
from repro.core.descriptors import (
    ArchiveDescriptor,
    Descriptor,
    FileDescriptor,
    FileSlice,
    FilesetDescriptor,
    IndexedDescriptor,
    ObjectClosureDescriptor,
    SliceDescriptor,
    SpreadsheetDescriptor,
    SQLRowsDescriptor,
    VirtualDescriptor,
    descriptor_from_dict,
    descriptor_to_dict,
)
from repro.core.invocation import (
    ExecutionContext,
    Invocation,
    ResourceUsage,
    STATUSES,
)
from repro.core.naming import OBJECT_KINDS, VDPRef, check_object_name
from repro.core.overlay import OverlayStore, ReclaimReport
from repro.core.replica import Replica
from repro.core.transformation import (
    ArgumentTemplate,
    CompoundTransformation,
    DIRECTIONS,
    FormalArg,
    FormalRef,
    SimpleTransformation,
    Transformation,
    TransformationCall,
    TransformationSignature,
    two_stage,
)
from repro.core.types import (
    ANY_DATASET,
    ANY_DATASET_NAME,
    DIMENSION_ROOTS,
    DIMENSIONS,
    DatasetType,
    TypeRegistry,
    TypeUnion,
    default_registry,
)
from repro.core.versioning import (
    CompatibilityAssertion,
    Version,
    VersionRegistry,
)

__all__ = [
    "ANY_DATASET",
    "ANY_DATASET_NAME",
    "ActualArg",
    "Annotation",
    "ArchiveDescriptor",
    "ArgumentTemplate",
    "AttributeSet",
    "CompatibilityAssertion",
    "CompoundTransformation",
    "DIMENSIONS",
    "DIMENSION_ROOTS",
    "DIRECTIONS",
    "Dataset",
    "DatasetArg",
    "DatasetType",
    "Derivation",
    "Descriptor",
    "ExecutionContext",
    "FileDescriptor",
    "FileSlice",
    "FilesetDescriptor",
    "FormalArg",
    "FormalRef",
    "IndexedDescriptor",
    "Invocation",
    "OBJECT_KINDS",
    "ObjectClosureDescriptor",
    "OverlayStore",
    "ReclaimReport",
    "Replica",
    "ResourceUsage",
    "STATUSES",
    "SQLRowsDescriptor",
    "SimpleTransformation",
    "SliceDescriptor",
    "SpreadsheetDescriptor",
    "Transformation",
    "TransformationCall",
    "TransformationSignature",
    "TypeRegistry",
    "TypeUnion",
    "VDPRef",
    "Version",
    "VersionRegistry",
    "VirtualDescriptor",
    "check_object_name",
    "default_registry",
    "descriptor_from_dict",
    "descriptor_to_dict",
    "two_stage",
]
