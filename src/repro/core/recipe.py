"""Recipe identity: content digests for "has this changed?" questions.

The virtual-data model answers staleness questions by comparing the
*recipe* a replica was produced from (recorded at execution time)
against the recipe the catalog holds *now*.  A recipe is the pair
(derivation, transformation): the argument bindings plus the program
they feed.  :func:`recipe_digest` canonicalizes both payloads and
hashes them, so any semantic edit — an actual rebound, an environment
variable changed, a transformation body or version replaced — yields a
new digest, while metadata-only churn (attributes, annotations) does
not.

Executors stamp the digest and the transformation version into every
invocation's attributes (:data:`TR_VERSION_ATTR`,
:data:`RECIPE_DIGEST_ATTR`); the staleness dataflow pass
(:mod:`repro.analysis.passes`) compares those records against the
live catalog.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Optional

#: Invocation attribute holding the transformation version executed.
TR_VERSION_ATTR = "recipe.tr_version"
#: Invocation attribute holding the recipe digest executed.
RECIPE_DIGEST_ATTR = "recipe.digest"


def _strip_volatile(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Drop metadata keys that must not affect recipe identity."""
    return {k: v for k, v in payload.items() if k != "attributes"}


def transformation_digest(tr_payload: Mapping[str, Any]) -> str:
    """Digest of a transformation payload (name, version, body)."""
    doc = _strip_volatile(tr_payload)
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def recipe_digest(
    dv_payload: Mapping[str, Any],
    tr_payload: Optional[Mapping[str, Any]],
) -> str:
    """Digest of a full recipe: derivation bindings + transformation.

    ``tr_payload`` may be ``None`` when the transformation cannot be
    resolved (dangling reference); the digest still identifies the
    derivation half so redefinitions remain detectable.
    """
    doc = {
        "derivation": _strip_volatile(dv_payload),
        "transformation": (
            _strip_volatile(tr_payload) if tr_payload is not None else None
        ),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def stamp_recipe(invocation: Any, dv: Any, tr: Any) -> None:
    """Record the executed recipe's identity on an invocation.

    Called by executors just before the invocation is added to the
    catalog; the staleness analysis compares these attributes against
    the recipe the catalog currently resolves.
    """
    invocation.attributes.set(TR_VERSION_ATTR, tr.version)
    invocation.attributes.set(
        RECIPE_DIGEST_ATTR, recipe_digest(dv.to_dict(), tr.to_dict())
    )
