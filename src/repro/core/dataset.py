"""The dataset: the unit of data managed within the virtual data model.

"A dataset definition maps a dataset name to a dataset type and a
dataset descriptor." (§3.1)  Datasets are logical: physical copies are
:class:`repro.core.replica.Replica` objects linked by name.  A dataset
whose descriptor is :class:`~repro.core.descriptors.VirtualDescriptor`
is *virtual data* — it exists only as a recipe until some derivation
materializes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.attributes import AttributeSet
from repro.core.descriptors import Descriptor, VirtualDescriptor, descriptor_from_dict, descriptor_to_dict
from repro.core.naming import check_object_name
from repro.core.types import ANY_DATASET, DatasetType


@dataclass
class Dataset:
    """A named, typed, described unit of data.

    Required attributes (per Fig 1): ``name`` and ``dataset_type``.
    ``descriptor`` defaults to a virtual descriptor so freshly declared
    datasets are recipes, not claims about bytes on disk.  Arbitrary
    application metadata lives in ``attributes``.
    """

    name: str
    dataset_type: DatasetType = ANY_DATASET
    descriptor: Descriptor = field(default_factory=VirtualDescriptor)
    attributes: AttributeSet = field(default_factory=AttributeSet)
    #: Name of the derivation that produces this dataset, when known.
    #: Maintained by catalogs as derivations are registered.
    producer: Optional[str] = None

    def __post_init__(self):
        check_object_name(self.name)
        if isinstance(self.attributes, dict):
            self.attributes = AttributeSet(self.attributes)

    @property
    def is_virtual(self) -> bool:
        """True when no physical representation has been described yet."""
        return isinstance(self.descriptor, VirtualDescriptor)

    def materialized(self, descriptor: Descriptor) -> "Dataset":
        """Return a copy of this dataset with a concrete descriptor."""
        return Dataset(
            name=self.name,
            dataset_type=self.dataset_type,
            descriptor=descriptor,
            attributes=self.attributes.copy(),
            producer=self.producer,
        )

    def size_estimate(self, default: int = 0) -> int:
        """Best-effort size in bytes for planning purposes.

        Preference order: an explicit ``size`` attribute, the
        descriptor's nominal size, then ``default``.
        """
        attr_size = self.attributes.get("size")
        if isinstance(attr_size, (int, float)):
            return int(attr_size)
        nominal = self.descriptor.nominal_size()
        if nominal is not None:
            return nominal
        return default

    def to_dict(self) -> dict[str, Any]:
        """Serialize for catalog persistence."""
        return {
            "name": self.name,
            "type": self.dataset_type.as_dict(),
            "descriptor": descriptor_to_dict(self.descriptor),
            "attributes": self.attributes.as_dict(),
            "producer": self.producer,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Dataset":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            dataset_type=DatasetType(**data.get("type", {})),
            descriptor=descriptor_from_dict(data["descriptor"]),
            attributes=AttributeSet(data.get("attributes") or {}),
            producer=data.get("producer"),
        )

    def __str__(self) -> str:
        tag = "virtual" if self.is_virtual else self.descriptor.KIND
        return f"Dataset({self.name}: {self.dataset_type} [{tag}])"
