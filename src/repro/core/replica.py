"""Replicas: physical copies of datasets.

"The replica is introduced to allow for datasets that may have multiple
physical copies with different properties such as location." (§3)

A replica names its dataset, a location (a storage element in the
simulated grid, or a plain host name), and the concrete descriptor of
the bytes at that location.  Invocation records may pin the specific
replicas they read and wrote, "to keep a detailed account of provenance
in an environment where datasets can be replicated".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.attributes import AttributeSet
from repro.core.descriptors import Descriptor, descriptor_from_dict, descriptor_to_dict
from repro.core.naming import check_object_name
from repro.errors import SchemaError

_last_replica_ordinal = 0
# The parallel executor creates replicas from pool threads; without the
# lock two threads could be issued the same ordinal.
_replica_id_lock = threading.Lock()


def _next_replica_id() -> str:
    global _last_replica_ordinal
    with _replica_id_lock:
        _last_replica_ordinal += 1
        return f"rep-{_last_replica_ordinal:08d}"


def observe_replica_id(replica_id: str) -> None:
    # Advance the allocator past IDs loaded from persistent catalogs so
    # a process reopening a populated workspace never re-issues one.
    global _last_replica_ordinal
    if replica_id.startswith("rep-"):
        try:
            ordinal = int(replica_id[4:])
        except ValueError:
            return
        with _replica_id_lock:
            if ordinal > _last_replica_ordinal:
                _last_replica_ordinal = ordinal


@dataclass
class Replica:
    """One physical copy of a dataset at a specific location."""

    dataset_name: str
    location: str
    descriptor: Optional[Descriptor] = None
    replica_id: str = field(default_factory=_next_replica_id)
    #: Size of this copy in bytes when known (drives transfer cost models).
    size: Optional[int] = None
    #: Content digest used by equivalence checking, when computed.
    digest: Optional[str] = None
    attributes: AttributeSet = field(default_factory=AttributeSet)

    def __post_init__(self):
        check_object_name(self.dataset_name)
        if not self.location:
            raise SchemaError("replica requires a location")
        if isinstance(self.attributes, dict):
            self.attributes = AttributeSet(self.attributes)
        observe_replica_id(self.replica_id)

    def size_estimate(self, default: int = 0) -> int:
        """Size in bytes for transfer planning, falling back to ``default``."""
        if self.size is not None:
            return self.size
        if self.descriptor is not None:
            nominal = self.descriptor.nominal_size()
            if nominal is not None:
                return nominal
        return default

    def to_dict(self) -> dict[str, Any]:
        return {
            "replica_id": self.replica_id,
            "dataset_name": self.dataset_name,
            "location": self.location,
            "descriptor": (
                descriptor_to_dict(self.descriptor) if self.descriptor else None
            ),
            "size": self.size,
            "digest": self.digest,
            "attributes": self.attributes.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Replica":
        descriptor = data.get("descriptor")
        return cls(
            dataset_name=data["dataset_name"],
            location=data["location"],
            descriptor=descriptor_from_dict(descriptor) if descriptor else None,
            replica_id=data.get("replica_id") or _next_replica_id(),
            size=data.get("size"),
            digest=data.get("digest"),
            attributes=AttributeSet(data.get("attributes") or {}),
        )

    def __str__(self) -> str:
        return f"Replica({self.dataset_name}@{self.location})"
