"""Transformations: typed computational procedures (§3.2).

A transformation "is a typed computational procedure that may take as
arguments both strings, which are passed by value, and datasets, which
are passed by reference".  We distinguish:

* :class:`SimpleTransformation` — a black box, modelled on POSIX program
  execution: an executable, command-line argument templates, environment
  variable bindings, and stdin/stdout/stderr redirection;
* :class:`CompoundTransformation` — a composition of one or more
  transformations "in a directed acyclic execution graph".

Both share the typed formal-argument list.  The type-conformance rule is
implemented in :meth:`TransformationSignature.check_actuals`: a dataset
can be bound to a formal argument iff its type is a (reflexive) subtype
of one member of the formal's type list.

Versioning — which the paper flags as "an important issue not yet
addressed in our design" — is implemented in
:mod:`repro.core.versioning` and hangs off the ``version`` field here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from repro.core.attributes import AttributeSet
from repro.core.naming import VDPRef, check_object_name
from repro.core.types import DatasetType, TypeRegistry, TypeUnion
from repro.errors import SchemaError, SignatureMismatchError, TypeConformanceError

#: Argument directionality.  ``none`` marks a pass-by-value string
#: parameter (the VDL spelling); the others are dataset references.
DIRECTIONS = ("input", "output", "inout", "none")

#: Reserved template names that redirect standard streams instead of
#: contributing to the command line.
STREAM_NAMES = ("stdin", "stdout", "stderr")


@dataclass(frozen=True)
class FormalRef:
    """A ``${direction:name}`` reference inside an argument template."""

    name: str
    direction: Optional[str] = None

    def __post_init__(self):
        if self.direction is not None and self.direction not in DIRECTIONS:
            raise SchemaError(f"invalid direction {self.direction!r} in template ref")

    def __str__(self) -> str:
        if self.direction:
            return "${%s:%s}" % (self.direction, self.name)
        return "${%s}" % self.name


#: A template is a sequence of literal strings and formal references.
TemplatePart = Union[str, FormalRef]


@dataclass(frozen=True)
class FormalArg:
    """One formal argument of a transformation.

    ``direction='none'`` arguments are strings; the rest denote
    datasets typed by ``dataset_types`` (a union — §3.2).  ``default``
    supplies an actual value used when a caller omits the argument;
    compound transformations use defaults to declare scratch
    intermediates (e.g. ``inout a4=@{inout:"somewhere":""}``).
    """

    name: str
    direction: str
    dataset_types: TypeUnion = field(default_factory=TypeUnion)
    default: Optional[str] = None
    #: True when the default names a scratch intermediate that need not
    #: outlive the workflow (the VDL ``@{inout:"x":""}`` form).
    temporary_default: bool = False

    def __post_init__(self):
        check_object_name(self.name)
        if self.direction not in DIRECTIONS:
            raise SchemaError(
                f"invalid argument direction {self.direction!r}; "
                f"expected one of {DIRECTIONS}"
            )

    @property
    def is_string(self) -> bool:
        return self.direction == "none"

    @property
    def is_output(self) -> bool:
        return self.direction in ("output", "inout")

    @property
    def is_input(self) -> bool:
        return self.direction in ("input", "inout")

    def __str__(self) -> str:
        if self.is_string:
            return f"none {self.name}"
        return f"{self.direction} {self.name}: {self.dataset_types}"


class TransformationSignature:
    """The ordered, typed formal-argument list of a transformation."""

    def __init__(self, formals: Sequence[FormalArg]):
        names = [f.name for f in formals]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate formal argument names in {names}")
        self._formals = tuple(formals)
        self._by_name = {f.name: f for f in formals}

    @property
    def formals(self) -> tuple[FormalArg, ...]:
        return self._formals

    def formal(self, name: str) -> FormalArg:
        try:
            return self._by_name[name]
        except KeyError:
            raise SignatureMismatchError(f"no formal argument named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._formals)

    def inputs(self) -> tuple[FormalArg, ...]:
        return tuple(f for f in self._formals if f.is_input)

    def outputs(self) -> tuple[FormalArg, ...]:
        return tuple(f for f in self._formals if f.is_output)

    def strings(self) -> tuple[FormalArg, ...]:
        return tuple(f for f in self._formals if f.is_string)

    def check_actuals(
        self,
        actuals: dict[str, Any],
        registry: Optional[TypeRegistry] = None,
        actual_types: Optional[dict[str, DatasetType]] = None,
    ) -> None:
        """Validate a binding of actual arguments against this signature.

        * every formal without a default must be bound;
        * no unknown argument names;
        * when ``registry`` and ``actual_types`` are supplied, each bound
          dataset's type must conform to the formal's type union.

        Raises :class:`SignatureMismatchError` or
        :class:`TypeConformanceError` accordingly.
        """
        unknown = set(actuals) - set(self._by_name)
        if unknown:
            raise SignatureMismatchError(
                f"unknown actual argument(s): {sorted(unknown)}"
            )
        for formal in self._formals:
            if formal.name not in actuals and formal.default is None:
                raise SignatureMismatchError(
                    f"missing actual for required argument {formal.name!r}"
                )
        if registry is None or actual_types is None:
            return
        for name, dtype in actual_types.items():
            formal = self._by_name.get(name)
            if formal is None or formal.is_string:
                continue
            if not formal.dataset_types.accepts(dtype, registry):
                raise TypeConformanceError(
                    f"dataset bound to {name!r} has type {dtype} which does not "
                    f"conform to {formal.dataset_types}"
                )

    def type_signature(self) -> str:
        """Render a human-readable signature string (as in Fig 1)."""
        parts = []
        for f in self._formals:
            if f.is_string:
                parts.append(f"none {f.name}")
            else:
                parts.append(f"{f.direction} {f.dataset_types} {f.name}")
        return ", ".join(parts)


@dataclass
class ArgumentTemplate:
    """One ``argument`` line of a simple transformation.

    ``name`` is optional; the reserved names in :data:`STREAM_NAMES`
    redirect standard streams.  ``parts`` interleaves literal text and
    :class:`FormalRef` placeholders and is joined without separators at
    instantiation time (VDL semantics).
    """

    parts: tuple[TemplatePart, ...]
    name: Optional[str] = None

    def references(self) -> tuple[str, ...]:
        """Formal argument names referenced by this template, in order."""
        return tuple(p.name for p in self.parts if isinstance(p, FormalRef))

    def render(self, values: dict[str, str]) -> str:
        """Substitute ``values`` for formal references and join."""
        out = []
        for part in self.parts:
            if isinstance(part, FormalRef):
                try:
                    out.append(values[part.name])
                except KeyError:
                    raise SignatureMismatchError(
                        f"template references unbound argument {part.name!r}"
                    ) from None
            else:
                out.append(part)
        return "".join(out)


class Transformation:
    """Common base of simple and compound transformations.

    ``name`` may be namespace-qualified (``example1::t1``); ``version``
    participates in the structured-versioning machinery of
    :mod:`repro.core.versioning`.
    """

    def __init__(
        self,
        name: str,
        formals: Sequence[FormalArg],
        version: str = "1.0",
        attributes: Optional[dict | AttributeSet] = None,
    ):
        check_object_name(name)
        self.name = name
        self.version = version
        self.signature = TransformationSignature(formals)
        if isinstance(attributes, AttributeSet):
            self.attributes = attributes
        else:
            self.attributes = AttributeSet(attributes or {})

    @property
    def is_compound(self) -> bool:
        raise NotImplementedError

    @property
    def qualified_name(self) -> str:
        """Name plus version, unique within a catalog."""
        return f"{self.name}@{self.version}"

    def to_dict(self) -> dict:
        """Serialize for catalog persistence and entry signing.

        The structural definition rides as its canonical XML string
        (signing-stable), with attributes alongside.
        """
        import xml.etree.ElementTree as ET

        from repro.vdl import xml_io

        return {
            "name": self.name,
            "version": self.version,
            "xml": ET.tostring(
                xml_io.transformation_to_xml(self), encoding="unicode"
            ),
            "attributes": self.attributes.as_dict(),
        }

    def __str__(self) -> str:
        kind = "compound" if self.is_compound else "simple"
        return f"TR {self.name}({self.signature.type_signature()}) [{kind}]"


class SimpleTransformation(Transformation):
    """A black-box transformation under the POSIX execution model.

    "The POSIX model implies an executable that resides in a file, which
    is passed arguments both on the command line and via named
    environment variables, and which can access files through the
    open() system call." (§6)
    """

    def __init__(
        self,
        name: str,
        formals: Sequence[FormalArg],
        executable: str = "",
        arguments: Sequence[ArgumentTemplate] = (),
        environment: Optional[dict[str, ArgumentTemplate]] = None,
        profile_hints: Optional[dict[str, str]] = None,
        version: str = "1.0",
        attributes: Optional[dict | AttributeSet] = None,
    ):
        super().__init__(name, formals, version=version, attributes=attributes)
        self.executable = executable
        self.arguments = tuple(arguments)
        self.environment = dict(environment or {})
        self.profile_hints = dict(profile_hints or {})
        self._check_templates()

    @property
    def is_compound(self) -> bool:
        return False

    def _check_templates(self) -> None:
        templates: list[ArgumentTemplate] = list(self.arguments)
        templates.extend(self.environment.values())
        for template in templates:
            for ref in template.references():
                if ref not in self.signature:
                    raise SchemaError(
                        f"transformation {self.name!r}: template references "
                        f"unknown formal {ref!r}"
                    )

    def command_line(self, values: dict[str, str]) -> tuple[str, ...]:
        """Render the full argv (excluding the executable) for ``values``.

        Stream-redirect templates (stdin/stdout/stderr) are excluded;
        fetch them via :meth:`stream_redirects`.
        """
        return tuple(
            t.render(values)
            for t in self.arguments
            if t.name not in STREAM_NAMES
        )

    def stream_redirects(self, values: dict[str, str]) -> dict[str, str]:
        """Render stdin/stdout/stderr redirections for ``values``."""
        return {
            t.name: t.render(values)
            for t in self.arguments
            if t.name in STREAM_NAMES
        }

    def rendered_environment(self, values: dict[str, str]) -> dict[str, str]:
        """Render environment-variable bindings for ``values``."""
        return {var: t.render(values) for var, t in self.environment.items()}


@dataclass
class TransformationCall:
    """One call site inside a compound transformation body.

    ``target`` names the callee (possibly a remote ``vdp://`` reference,
    enabling the Fig 2 cross-catalog compound); ``bindings`` maps callee
    formal names to either a :class:`FormalRef` into the enclosing
    compound's formals or a literal string.
    """

    target: VDPRef
    bindings: dict[str, TemplatePart] = field(default_factory=dict)

    def bound_formals(self) -> tuple[str, ...]:
        """Enclosing-compound formals referenced by this call."""
        return tuple(
            v.name for v in self.bindings.values() if isinstance(v, FormalRef)
        )


class CompoundTransformation(Transformation):
    """A transformation composing others in a directed acyclic graph.

    The execution DAG is implicit in dataset flow: a call that binds an
    enclosing formal as an *output* precedes every later call binding the
    same formal as an *input*.  :meth:`call_dependencies` exposes these
    edges; cycle detection happens at expansion time in the planner.
    """

    def __init__(
        self,
        name: str,
        formals: Sequence[FormalArg],
        calls: Sequence[TransformationCall],
        version: str = "1.0",
        attributes: Optional[dict | AttributeSet] = None,
    ):
        super().__init__(name, formals, version=version, attributes=attributes)
        if not calls:
            raise SchemaError(f"compound transformation {name!r} needs >=1 call")
        self.calls = tuple(calls)
        for call in self.calls:
            for formal_name in call.bound_formals():
                if formal_name not in self.signature:
                    raise SchemaError(
                        f"compound {name!r}: call to {call.target} references "
                        f"unknown formal {formal_name!r}"
                    )

    @property
    def is_compound(self) -> bool:
        return True

    def call_dependencies(
        self, direction_of: dict[int, dict[str, str]]
    ) -> list[tuple[int, int]]:
        """Compute intra-body dependency edges between call indices.

        ``direction_of[i]`` maps each bound formal name of call ``i`` to
        the *callee-side* direction ('input'/'output'/'inout'), which
        the expander knows once callee signatures are resolved.  Returns
        ``(producer_index, consumer_index)`` pairs.
        """
        producers: dict[str, int] = {}
        edges: list[tuple[int, int]] = []
        for i, call in enumerate(self.calls):
            dirs = direction_of.get(i, {})
            for formal_name in call.bound_formals():
                d = dirs.get(formal_name)
                if d in ("input", "inout") and formal_name in producers:
                    edges.append((producers[formal_name], i))
            for formal_name in call.bound_formals():
                d = dirs.get(formal_name)
                if d in ("output", "inout"):
                    producers[formal_name] = i
        return edges


def two_stage(
    name: str,
    inner: Transformation,
    params: Sequence[FormalArg],
    paramfile_formal: str = "paramfile",
    param_writer_name: str = "write-params",
    version: str = "1.0",
) -> CompoundTransformation:
    """Build the two-stage adapter for parameter-file transformations.

    "Transformations that expect to receive their arguments and input
    files via a parameter file are handled by defining them as two-stage
    transformations, where the first stage takes VDL parameters and
    places them into a text file, and the second stage invokes the
    actual executable, passing it the text file produced by the first
    stage." (§3.2)

    ``inner`` must expose an input formal named ``paramfile_formal``
    that receives the parameter file.  ``params`` are the logical
    string parameters the adapter exposes and stage 1 writes into the
    file.  The returned compound's signature is ``params`` plus every
    inner formal except the parameter file (which becomes a hidden
    ``inout`` intermediate).
    """
    pf = inner.signature.formal(paramfile_formal)
    if not pf.is_input:
        raise SchemaError(
            f"inner formal {paramfile_formal!r} must be an input to receive "
            f"the parameter file"
        )
    for p in params:
        if not p.is_string:
            raise SchemaError(f"two-stage param {p.name!r} must be a string (none)")
        if p.name in inner.signature:
            raise SchemaError(
                f"two-stage param {p.name!r} collides with an inner formal"
            )
    passthrough = [
        f for f in inner.signature.formals if f.name != paramfile_formal
    ]
    hidden = FormalArg(
        name=paramfile_formal, direction="inout", default=f"{name}.params"
    )
    stage1 = TransformationCall(
        target=VDPRef(name=param_writer_name, kind="transformation"),
        bindings={
            "paramfile": FormalRef(paramfile_formal, "output"),
            **{p.name: FormalRef(p.name, "none") for p in params},
        },
    )
    stage2 = TransformationCall(
        target=VDPRef(name=inner.name, kind="transformation"),
        bindings={
            paramfile_formal: FormalRef(paramfile_formal, "input"),
            **{f.name: FormalRef(f.name, f.direction) for f in passthrough},
        },
    )
    return CompoundTransformation(
        name=name,
        formals=[*params, *passthrough, hidden],
        calls=(stage1, stage2),
        version=version,
    )
