"""Dataset descriptors: how a dataset maps onto concrete containers.

"A dataset's descriptor provides all information needed to access and
manipulate the dataset's contents.  The nature of this descriptor will
depend on the nature of the dataset." (§3.1)

The paper enumerates a spectrum of representations — single files, file
sets, slices of files, archives, index+data pairs, SQL row sets, object
closures, spreadsheet regions.  One descriptor class per representation
lives here.  A descriptor is a pure *description*: it never touches
storage itself.  Storage backends (:mod:`repro.grid`) and local
executors interpret descriptors to move or materialize bytes.

All descriptors serialize to/from plain dicts via :func:`descriptor_to_dict`
and :func:`descriptor_from_dict`, which is what catalogs persist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SchemaError


@dataclass(frozen=True)
class Descriptor:
    """Base class for all dataset descriptors."""

    #: Short tag used in serialized form; overridden per subclass.
    KIND = "abstract"

    def files(self) -> tuple[str, ...]:
        """Return the file names this descriptor touches (possibly empty)."""
        return ()

    def nominal_size(self) -> Optional[int]:
        """Return the descriptor's own size claim in bytes, if it has one."""
        return None


@dataclass(frozen=True)
class FileDescriptor(Descriptor):
    """A dataset whose contents live in a single file."""

    KIND = "file"
    path: str
    size: Optional[int] = None

    def __post_init__(self):
        if not self.path:
            raise SchemaError("file descriptor requires a non-empty path")

    def files(self) -> tuple[str, ...]:
        return (self.path,)

    def nominal_size(self) -> Optional[int]:
        return self.size


@dataclass(frozen=True)
class FilesetDescriptor(Descriptor):
    """A set of files viewed as a single logical entity."""

    KIND = "fileset"
    paths: tuple[str, ...] = ()
    size: Optional[int] = None

    def __post_init__(self):
        if not self.paths:
            raise SchemaError("fileset descriptor requires at least one path")
        if len(set(self.paths)) != len(self.paths):
            raise SchemaError("fileset descriptor paths must be distinct")

    def files(self) -> tuple[str, ...]:
        return tuple(self.paths)

    def nominal_size(self) -> Optional[int]:
        return self.size


@dataclass(frozen=True)
class FileSlice:
    """One ``(path, offset, length)`` extraction from a file."""

    path: str
    offset: int
    length: int

    def __post_init__(self):
        if not self.path:
            raise SchemaError("file slice requires a path")
        if self.offset < 0 or self.length < 0:
            raise SchemaError("file slice offset/length must be non-negative")


@dataclass(frozen=True)
class SliceDescriptor(Descriptor):
    """A list of files with offset-length pairs specifying data to extract."""

    KIND = "slices"
    slices: tuple[FileSlice, ...] = ()

    def __post_init__(self):
        if not self.slices:
            raise SchemaError("slice descriptor requires at least one slice")

    def files(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for s in self.slices:
            seen.setdefault(s.path, None)
        return tuple(seen)

    def nominal_size(self) -> Optional[int]:
        return sum(s.length for s in self.slices)


@dataclass(frozen=True)
class ArchiveDescriptor(Descriptor):
    """A set of member files inside a tar/zip/other archive."""

    KIND = "archive"
    archive_path: str
    archive_format: str = "tar"
    members: tuple[str, ...] = ()
    size: Optional[int] = None

    def __post_init__(self):
        if not self.archive_path:
            raise SchemaError("archive descriptor requires an archive path")
        if self.archive_format not in ("tar", "zip", "other"):
            raise SchemaError(f"unknown archive format {self.archive_format!r}")

    def files(self) -> tuple[str, ...]:
        return (self.archive_path,)

    def nominal_size(self) -> Optional[int]:
        return self.size


@dataclass(frozen=True)
class IndexedDescriptor(Descriptor):
    """An index file plus data files (e.g. a gdbm database)."""

    KIND = "indexed"
    index_path: str
    data_paths: tuple[str, ...] = ()
    size: Optional[int] = None

    def __post_init__(self):
        if not self.index_path:
            raise SchemaError("indexed descriptor requires an index path")
        if not self.data_paths:
            raise SchemaError("indexed descriptor requires at least one data path")

    def files(self) -> tuple[str, ...]:
        return (self.index_path, *self.data_paths)

    def nominal_size(self) -> Optional[int]:
        return self.size


@dataclass(frozen=True)
class SQLRowsDescriptor(Descriptor):
    """A set of rows extracted by primary key from one or more tables.

    ``keys`` lists individual primary-key values; ``key_range`` is an
    inclusive ``(low, high)`` pair.  Either (or both) may be given.
    Fine-grained relational provenance (§8 future work) hangs off this
    descriptor: lineage can be computed at row granularity because the
    key set is part of the dataset identity.
    """

    KIND = "sql-rows"
    database: str
    tables: tuple[str, ...] = ()
    key_column: str = "id"
    keys: tuple[str, ...] = ()
    key_range: Optional[tuple[str, str]] = None

    def __post_init__(self):
        if not self.database:
            raise SchemaError("sql-rows descriptor requires a database name")
        if not self.tables:
            raise SchemaError("sql-rows descriptor requires at least one table")
        if not self.keys and self.key_range is None:
            raise SchemaError("sql-rows descriptor requires keys or a key range")

    def row_count_hint(self) -> Optional[int]:
        """Number of addressed rows when enumerable (explicit key list)."""
        if self.keys:
            return len(self.keys) * len(self.tables)
        return None

    def overlaps(self, other: "SQLRowsDescriptor") -> bool:
        """Conservative row-overlap test used by fine-grained lineage."""
        if self.database != other.database:
            return False
        if not set(self.tables) & set(other.tables):
            return False
        if self.keys and other.keys:
            return bool(set(self.keys) & set(other.keys))
        return True  # ranges or mixed: assume overlap conservatively


@dataclass(frozen=True)
class ObjectClosureDescriptor(Descriptor):
    """A closure of object references from a persistent object database."""

    KIND = "object-closure"
    store: str
    roots: tuple[str, ...] = ()

    def __post_init__(self):
        if not self.store:
            raise SchemaError("object-closure descriptor requires a store name")
        if not self.roots:
            raise SchemaError("object-closure descriptor requires root object ids")


@dataclass(frozen=True)
class SpreadsheetDescriptor(Descriptor):
    """A set of cell-region references denoting a segment of a spreadsheet."""

    KIND = "spreadsheet"
    workbook: str
    regions: tuple[str, ...] = ()  # e.g. ("Sheet1!A1:C20",)

    def __post_init__(self):
        if not self.workbook:
            raise SchemaError("spreadsheet descriptor requires a workbook path")
        if not self.regions:
            raise SchemaError("spreadsheet descriptor requires at least one region")

    def files(self) -> tuple[str, ...]:
        return (self.workbook,)


@dataclass(frozen=True)
class VirtualDescriptor(Descriptor):
    """Descriptor for data that does not (yet) exist physically.

    A dataset carrying this descriptor is *virtual*: it is defined only
    by the derivation that can produce it.  ``size_hint`` lets producers
    declare an expected size for planning and estimation.
    """

    KIND = "virtual"
    size_hint: Optional[int] = None

    def nominal_size(self) -> Optional[int]:
        return self.size_hint


_DESCRIPTOR_CLASSES: dict[str, type] = {
    cls.KIND: cls
    for cls in (
        FileDescriptor,
        FilesetDescriptor,
        SliceDescriptor,
        ArchiveDescriptor,
        IndexedDescriptor,
        SQLRowsDescriptor,
        ObjectClosureDescriptor,
        SpreadsheetDescriptor,
        VirtualDescriptor,
    )
}


def descriptor_to_dict(descriptor: Descriptor) -> dict:
    """Serialize a descriptor to a plain dict with a ``kind`` tag."""
    out: dict = {"kind": descriptor.KIND}
    for key, value in vars(descriptor).items():
        if isinstance(value, tuple):
            items = [
                vars(item) if isinstance(item, FileSlice) else item for item in value
            ]
            out[key] = items
        else:
            out[key] = value
    return out


def descriptor_from_dict(data: dict) -> Descriptor:
    """Rebuild a descriptor from :func:`descriptor_to_dict` output."""
    data = dict(data)
    kind = data.pop("kind", None)
    cls = _DESCRIPTOR_CLASSES.get(kind)
    if cls is None:
        raise SchemaError(f"unknown descriptor kind {kind!r}")
    if cls is SliceDescriptor:
        data["slices"] = tuple(FileSlice(**s) for s in data.get("slices", []))
    else:
        for key, value in list(data.items()):
            if isinstance(value, list):
                data[key] = tuple(value)
    if "key_range" in data and isinstance(data["key_range"], (list, tuple)):
        data["key_range"] = tuple(data["key_range"])
    return cls(**data)
