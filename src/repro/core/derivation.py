"""Derivations: transformations specialized with actual arguments.

"A derivation specializes a transformation by specifying the actual
arguments (strings and/or datasets) and other information required to
perform a specific execution of its associated transformation.  A
derivation record can serve both as a historical record of what was
done and also as a recipe for operations that can be performed in the
future." (§3)

The derivation is where provenance edges live: its dataset-valued
actual arguments name the datasets it consumes and produces.  When one
derivation's output names another's input, a dependency graph arises —
"the essence of data provenance tracking in Chimera" (Appendix A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Iterator, Union

from repro.core.attributes import AttributeSet
from repro.core.naming import VDPRef, check_object_name
from repro.core.transformation import DIRECTIONS, Transformation
from repro.errors import SchemaError, SignatureMismatchError


@dataclass(frozen=True)
class DatasetArg:
    """A dataset-valued actual argument: ``@{direction:"name"}`` in VDL.

    ``dataset`` is the logical dataset name (an LFN in grid parlance);
    ``direction`` is the call-site directionality.  ``temporary`` marks
    scratch intermediates (the VDL ``@{inout:"x":""}`` trailing-empty
    form) that need not outlive the enclosing workflow.
    """

    dataset: str
    direction: str = "input"
    temporary: bool = False

    def __post_init__(self):
        check_object_name(self.dataset)
        if self.direction not in DIRECTIONS or self.direction == "none":
            raise SchemaError(
                f"dataset argument direction must be input/output/inout, "
                f"got {self.direction!r}"
            )

    @property
    def is_input(self) -> bool:
        return self.direction in ("input", "inout")

    @property
    def is_output(self) -> bool:
        return self.direction in ("output", "inout")

    def __str__(self) -> str:
        return '@{%s:"%s"}' % (self.direction, self.dataset)


#: An actual argument is a plain string (pass-by-value) or a dataset ref.
ActualArg = Union[str, DatasetArg]


@lru_cache(maxsize=65536)
def _dataset_arg(dataset: str, direction: str, temporary: bool) -> DatasetArg:
    """Interning constructor for decode paths.

    :class:`DatasetArg` is frozen, so instances can be shared; decoding
    a large catalog re-creates the same ``(dataset, direction,
    temporary)`` triples a handful of times each, and validation in
    ``__post_init__`` is then paid once per distinct triple.
    """
    return DatasetArg(dataset=dataset, direction=direction, temporary=temporary)


@dataclass
class Derivation:
    """A named binding of actual arguments to a transformation.

    ``transformation`` may point at a remote catalog (Fig 2's
    ``srch-muon`` derivation invoking Wisconsin's ``srch``).
    ``environment`` captures required environment-variable values when
    the transformation's behaviour depends on them (§3).
    """

    name: str
    transformation: VDPRef
    actuals: dict[str, ActualArg] = field(default_factory=dict)
    environment: dict[str, str] = field(default_factory=dict)
    attributes: AttributeSet = field(default_factory=AttributeSet)

    def __post_init__(self):
        check_object_name(self.name)
        if self.transformation.kind not in (None, "transformation"):
            raise SchemaError(
                f"derivation {self.name!r} must reference a transformation, "
                f"got kind {self.transformation.kind!r}"
            )
        if isinstance(self.attributes, dict):
            self.attributes = AttributeSet(self.attributes)
        for key, value in self.actuals.items():
            if not isinstance(value, (str, DatasetArg)):
                raise SchemaError(
                    f"actual {key!r} must be a string or DatasetArg, "
                    f"got {type(value).__name__}"
                )

    # -- provenance edges ---------------------------------------------

    def dataset_args(self) -> Iterator[tuple[str, DatasetArg]]:
        """Yield ``(formal_name, DatasetArg)`` for dataset-valued actuals."""
        for name, value in self.actuals.items():
            if isinstance(value, DatasetArg):
                yield name, value

    def inputs(self) -> tuple[str, ...]:
        """Names of datasets this derivation consumes, sorted."""
        # Open-coded (no dataset_args generator / direction property):
        # planners call this for every step of 10^5+-node plans.
        return tuple(
            sorted(
                {
                    a.dataset
                    for a in self.actuals.values()
                    if isinstance(a, DatasetArg) and a.direction != "output"
                }
            )
        )

    def outputs(self) -> tuple[str, ...]:
        """Names of datasets this derivation produces, sorted."""
        return tuple(
            sorted(
                {
                    a.dataset
                    for a in self.actuals.values()
                    if isinstance(a, DatasetArg) and a.direction != "input"
                }
            )
        )

    def produces(self, dataset_name: str) -> bool:
        return dataset_name in self.outputs()

    def consumes(self, dataset_name: str) -> bool:
        return dataset_name in self.inputs()

    # -- validation -----------------------------------------------------

    def check_against(self, transformation: Transformation) -> None:
        """Validate this derivation's actuals against a resolved callee.

        Checks name/arity compatibility and that dataset/string shape
        matches formal directionality.  (Dataset *type* conformance needs
        the catalog's type registry and dataset records, so it lives in
        :meth:`repro.catalog.base.VirtualDataCatalog.check_derivation`.)
        """
        if transformation.name != self.transformation.name:
            raise SignatureMismatchError(
                f"derivation {self.name!r} targets "
                f"{self.transformation.name!r}, got {transformation.name!r}"
            )
        transformation.signature.check_actuals(self.actuals)
        for formal_name, value in self.actuals.items():
            formal = transformation.signature.formal(formal_name)
            if formal.is_string and isinstance(value, DatasetArg):
                raise SignatureMismatchError(
                    f"{self.name}: formal {formal_name!r} is a string but a "
                    f"dataset {value.dataset!r} was supplied"
                )
            if not formal.is_string and isinstance(value, str):
                raise SignatureMismatchError(
                    f"{self.name}: formal {formal_name!r} expects a dataset "
                    f"but the string {value!r} was supplied"
                )
            if isinstance(value, DatasetArg):
                if formal.direction != "inout" and value.direction != formal.direction:
                    raise SignatureMismatchError(
                        f"{self.name}: formal {formal_name!r} is "
                        f"{formal.direction} but actual is {value.direction}"
                    )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        actuals: dict[str, Any] = {}
        for key, value in self.actuals.items():
            if isinstance(value, DatasetArg):
                actuals[key] = {
                    "dataset": value.dataset,
                    "direction": value.direction,
                    "temporary": value.temporary,
                }
            else:
                actuals[key] = value
        return {
            "name": self.name,
            "transformation": self.transformation.uri(),
            "actuals": actuals,
            "environment": dict(self.environment),
            "attributes": self.attributes.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Derivation":
        actuals: dict[str, ActualArg] = {}
        for key, value in data.get("actuals", {}).items():
            if isinstance(value, dict):
                actuals[key] = _dataset_arg(
                    value["dataset"],
                    value.get("direction", "input"),
                    value.get("temporary", False),
                )
            else:
                actuals[key] = value
        return cls(
            name=data["name"],
            transformation=VDPRef.parse(
                data["transformation"], default_kind="transformation"
            ),
            actuals=actuals,
            environment=dict(data.get("environment", {})),
            attributes=AttributeSet(data.get("attributes") or {}),
        )

    def __str__(self) -> str:
        return f"DV {self.name}->{self.transformation.uri()}"
