"""Naming of virtual data grid entities and inter-catalog references.

Figure 2 of the paper shows "virtual data hyperlinks" between servers
written as ``vdp://physics.wisconsin.edu/srch``.  :class:`VDPRef` models
such a reference: an optional catalog authority plus an object name and
kind.  A reference without an authority is *local* and resolves within
the catalog that holds it; a reference with an authority must be chased
through a :class:`repro.catalog.resolver.ReferenceResolver`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.errors import SchemaError

#: Kinds of objects a reference may denote, matching the five schema
#: object classes plus dataset types.
OBJECT_KINDS = (
    "dataset",
    "replica",
    "transformation",
    "derivation",
    "invocation",
    "dataset-type",
)

_NAME_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.:+\-]*$")
_AUTHORITY_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9.\-]*$")
_VDP_RE = re.compile(
    r"^vdp://(?P<authority>[^/]+)/(?:(?P<kind>[a-z-]+)/)?(?P<name>.+)$"
)


@lru_cache(maxsize=65536)
def check_object_name(name: str) -> str:
    """Validate a bare object name; returns it unchanged when valid.

    Names must begin with an alphanumeric or underscore and may contain
    dots, colons, pluses and dashes — enough for versioned names such
    as ``example1::t1`` or ``srch-muon``.

    Cached: the same names are re-validated on every object decode, and
    at 10^5-step plans the regex dominates.  (Failures raise and are
    therefore never cached.)
    """
    if not name or not _NAME_RE.match(name):
        raise SchemaError(f"invalid object name {name!r}")
    return name


@dataclass(frozen=True)
class VDPRef:
    """A (possibly remote) reference to a virtual data grid object.

    ``authority`` is the catalog host (``physics.wisconsin.edu``) or
    ``None`` for a local reference.  ``kind`` narrows which object class
    the name denotes; it may be ``None`` when the context makes the kind
    unambiguous (e.g. a transformation call site).
    """

    name: str
    authority: Optional[str] = None
    kind: Optional[str] = None

    def __post_init__(self):
        check_object_name(self.name)
        if self.authority is not None and not _AUTHORITY_RE.match(self.authority):
            raise SchemaError(f"invalid catalog authority {self.authority!r}")
        if self.kind is not None and self.kind not in OBJECT_KINDS:
            raise SchemaError(
                f"invalid object kind {self.kind!r}; expected one of {OBJECT_KINDS}"
            )

    @property
    def is_local(self) -> bool:
        """True when the reference resolves within the holding catalog."""
        return self.authority is None

    def localized(self) -> "VDPRef":
        """Return the same reference with the authority stripped."""
        return VDPRef(name=self.name, kind=self.kind)

    def at(self, authority: str) -> "VDPRef":
        """Return the same reference pinned to ``authority``."""
        return VDPRef(name=self.name, authority=authority, kind=self.kind)

    def uri(self) -> str:
        """Render as a ``vdp://`` URI (local refs render as bare names)."""
        if self.is_local:
            return self.name if self.kind is None else f"{self.kind}/{self.name}"
        middle = f"{self.kind}/" if self.kind else ""
        return f"vdp://{self.authority}/{middle}{self.name}"

    def vdl_text(self) -> str:
        """Render for VDL source: bare name locally, vdp:// URI remotely.

        VDL call/derivation targets are implicitly transformations, so
        the kind segment is omitted.
        """
        if self.is_local:
            return self.name
        return f"vdp://{self.authority}/{self.name}"

    @classmethod
    def parse(cls, text: str, default_kind: Optional[str] = None) -> "VDPRef":
        """Parse a bare name, ``kind/name`` or full ``vdp://`` URI.

        Parses are cached and the returned instance shared — safe
        because :class:`VDPRef` is frozen, and hot because decoding N
        derivations re-parses the same handful of transformation URIs.
        """
        return _parse_ref(text, default_kind)

    def __str__(self) -> str:
        return self.uri()


@lru_cache(maxsize=8192)
def _parse_ref(text: str, default_kind: Optional[str]) -> VDPRef:
    match = _VDP_RE.match(text)
    if match:
        kind = match.group("kind") or default_kind
        return VDPRef(
            name=match.group("name"),
            authority=match.group("authority"),
            kind=kind,
        )
    if text.startswith("vdp://"):
        raise SchemaError(f"malformed vdp reference {text!r}")
    if "/" in text:
        kind, _, name = text.partition("/")
        if kind in OBJECT_KINDS:
            return VDPRef(name=name, kind=kind)
    return VDPRef(name=text, kind=default_kind)
