"""Exception hierarchy for the virtual data grid.

Every error raised by :mod:`repro` derives from :class:`VirtualDataError`
so callers can catch the whole family with one handler while still being
able to discriminate the precise failure.
"""

from __future__ import annotations


class VirtualDataError(Exception):
    """Base class for all errors raised by the virtual data grid."""


class TypeSystemError(VirtualDataError):
    """Problems with the dataset-type model (unknown types, bad hierarchies)."""


class UnknownTypeError(TypeSystemError):
    """A dataset type name was referenced but never registered."""


class TypeConformanceError(TypeSystemError):
    """An actual argument's type does not conform to the formal type list."""


class SchemaError(VirtualDataError):
    """Invalid schema object construction (missing attributes, bad links)."""


class SignatureMismatchError(SchemaError):
    """A derivation's actual arguments do not match its transformation."""


class VDLError(VirtualDataError):
    """Base class for Virtual Data Language front-end errors."""


class VDLSyntaxError(VDLError):
    """Lexical or grammatical error in VDL source text.

    Carries ``line`` and ``column`` (1-based) of the offending token,
    plus the location-free ``bare_message`` so front-ends can render
    ``file.vdl:12: message`` themselves.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.bare_message = message
        self.line = line
        self.column = column


class VDLSemanticError(VDLError):
    """Well-formed VDL that violates semantic rules (types, arity, scope).

    Like :class:`VDLSyntaxError`, carries ``line``/``column`` (0 when
    unknown) and the location-free ``bare_message``.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line})" if line else ""
        super().__init__(f"{message}{location}")
        self.bare_message = message
        self.line = line
        self.column = column


class CatalogError(VirtualDataError):
    """Base class for virtual data catalog failures."""


class DuplicateEntryError(CatalogError):
    """An object with the same name already exists in the catalog."""


class NotFoundError(CatalogError):
    """The requested object does not exist in the catalog."""


class ReferenceError_(CatalogError):
    """An inter-catalog (vdp://) reference could not be resolved."""


class FederationError(CatalogError):
    """A federated index operation failed."""


class SecurityError(VirtualDataError):
    """Base class for signing / trust / policy failures."""


class InvalidSignatureError(SecurityError):
    """A signature failed verification."""


class UntrustedAuthorityError(SecurityError):
    """No trust chain connects the signer to a root authority."""


class AccessDeniedError(SecurityError):
    """An access-control policy denied the operation."""


class GridError(VirtualDataError):
    """Base class for simulated-grid failures."""


class SubmissionError(GridError):
    """A job could not be submitted to a compute element."""


class TransferError(GridError):
    """A data transfer failed (no route, missing replica, ...)."""


class PlanningError(VirtualDataError):
    """The planner could not construct a feasible plan."""


class CycleError(PlanningError):
    """A dependency graph that must be acyclic contains a cycle.

    Raised by :meth:`repro.planner.dag.Plan.topological_order` and
    :meth:`repro.planner.dag.Plan.depth` instead of hanging or blowing
    the recursion limit, and matches what the static cycle rule
    (``VDG301`` in :mod:`repro.analysis`) reports before planning.
    """


class CyclicDerivationError(CycleError):
    """The derivation graph required for a request contains a cycle."""


class UnderivableError(PlanningError):
    """A requested dataset has neither a replica nor a producing derivation."""


class ExecutionError(VirtualDataError):
    """A transformation execution failed."""


class MaterializationError(ExecutionError):
    """A local materialization finished with failed (or skipped) steps.

    Raised by :meth:`repro.executor.local.LocalExecutor.materialize`
    under the run-what-you-can failure policy once every runnable step
    has been attempted.  Carries the invocations that did complete plus
    the names of the failed steps and of the steps skipped because an
    upstream step failed.
    """

    def __init__(
        self,
        message: str,
        invocations=None,
        failed=None,
        skipped=None,
    ):
        super().__init__(message)
        self.invocations = list(invocations or [])
        self.failed = sorted(failed or [])
        self.skipped = sorted(skipped or [])


class WorkflowError(ExecutionError):
    """A workflow run finished with failed (or skipped) steps.

    Carries the full :class:`~repro.planner.scheduler.WorkflowResult`
    so callers can render a per-step failure summary — which site ran
    each failed step, how many attempts were made, the final
    ``JobRecord.error`` — plus the steps skipped as
    ``upstream-failed`` instead of just the failed step names.
    """

    def __init__(self, message: str, result=None):
        super().__init__(message)
        self.result = result

    def step_failures(self) -> list[dict]:
        """Per-step failure details, sorted by step name."""
        if self.result is None:
            return []
        rows = []
        for name in sorted(self.result.failed_steps):
            outcome = self.result.outcomes.get(name)
            rows.append(
                {
                    "step": name,
                    "status": "failed",
                    "site": outcome.site if outcome else "?",
                    "attempts": outcome.attempts if outcome else 0,
                    "error": (
                        outcome.record.error or outcome.record.status
                    )
                    if outcome
                    else "unknown",
                }
            )
        for name, reason in sorted(self.result.skipped_steps.items()):
            rows.append(
                {
                    "step": name,
                    "status": "skipped",
                    "site": "-",
                    "attempts": 0,
                    "error": reason,
                }
            )
        return rows

    def render_summary(self) -> str:
        """A human-readable multi-line failure report."""
        rows = self.step_failures()
        if not rows:
            return str(self)
        lines = [str(self)]
        for row in rows:
            if row["status"] == "failed":
                lines.append(
                    f"  {row['step']}: failed at site {row['site']} "
                    f"after {row['attempts']} attempt(s): {row['error']}"
                )
            else:
                lines.append(f"  {row['step']}: skipped ({row['error']})")
        return "\n".join(lines)


class FaultPlanError(VirtualDataError):
    """A fault-injection plan is malformed or unreadable."""


class RescueError(ExecutionError):
    """A rescue file is malformed, stale, or mismatched with its plan."""


class EstimationError(VirtualDataError):
    """The estimator lacks the information needed to produce an estimate."""


class DurabilityError(VirtualDataError):
    """Base class for crash-consistency machinery failures."""


class JournalError(DurabilityError):
    """The intent journal is unusable (corrupt beyond the torn-tail model)."""


class FsckError(DurabilityError):
    """The workspace failed its consistency check and was not repaired."""

    def __init__(self, message: str, report=None):
        super().__init__(message)
        #: The :class:`~repro.durability.recovery.FsckReport`, when available.
        self.report = report
