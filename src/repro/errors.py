"""Exception hierarchy for the virtual data grid.

Every error raised by :mod:`repro` derives from :class:`VirtualDataError`
so callers can catch the whole family with one handler while still being
able to discriminate the precise failure.
"""

from __future__ import annotations


class VirtualDataError(Exception):
    """Base class for all errors raised by the virtual data grid."""


class TypeSystemError(VirtualDataError):
    """Problems with the dataset-type model (unknown types, bad hierarchies)."""


class UnknownTypeError(TypeSystemError):
    """A dataset type name was referenced but never registered."""


class TypeConformanceError(TypeSystemError):
    """An actual argument's type does not conform to the formal type list."""


class SchemaError(VirtualDataError):
    """Invalid schema object construction (missing attributes, bad links)."""


class SignatureMismatchError(SchemaError):
    """A derivation's actual arguments do not match its transformation."""


class VDLError(VirtualDataError):
    """Base class for Virtual Data Language front-end errors."""


class VDLSyntaxError(VDLError):
    """Lexical or grammatical error in VDL source text.

    Carries ``line`` and ``column`` (1-based) of the offending token,
    plus the location-free ``bare_message`` so front-ends can render
    ``file.vdl:12: message`` themselves.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.bare_message = message
        self.line = line
        self.column = column


class VDLSemanticError(VDLError):
    """Well-formed VDL that violates semantic rules (types, arity, scope).

    Like :class:`VDLSyntaxError`, carries ``line``/``column`` (0 when
    unknown) and the location-free ``bare_message``.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line})" if line else ""
        super().__init__(f"{message}{location}")
        self.bare_message = message
        self.line = line
        self.column = column


class CatalogError(VirtualDataError):
    """Base class for virtual data catalog failures."""


class DuplicateEntryError(CatalogError):
    """An object with the same name already exists in the catalog."""


class NotFoundError(CatalogError):
    """The requested object does not exist in the catalog."""


class ReferenceError_(CatalogError):
    """An inter-catalog (vdp://) reference could not be resolved."""


class FederationError(CatalogError):
    """A federated index operation failed."""


class SecurityError(VirtualDataError):
    """Base class for signing / trust / policy failures."""


class InvalidSignatureError(SecurityError):
    """A signature failed verification."""


class UntrustedAuthorityError(SecurityError):
    """No trust chain connects the signer to a root authority."""


class AccessDeniedError(SecurityError):
    """An access-control policy denied the operation."""


class GridError(VirtualDataError):
    """Base class for simulated-grid failures."""


class SubmissionError(GridError):
    """A job could not be submitted to a compute element."""


class TransferError(GridError):
    """A data transfer failed (no route, missing replica, ...)."""


class PlanningError(VirtualDataError):
    """The planner could not construct a feasible plan."""


class CycleError(PlanningError):
    """A dependency graph that must be acyclic contains a cycle.

    Raised by :meth:`repro.planner.dag.Plan.topological_order` and
    :meth:`repro.planner.dag.Plan.depth` instead of hanging or blowing
    the recursion limit, and matches what the static cycle rule
    (``VDG301`` in :mod:`repro.analysis`) reports before planning.
    """


class CyclicDerivationError(CycleError):
    """The derivation graph required for a request contains a cycle."""


class UnderivableError(PlanningError):
    """A requested dataset has neither a replica nor a producing derivation."""


class ExecutionError(VirtualDataError):
    """A transformation execution failed."""


class EstimationError(VirtualDataError):
    """The estimator lacks the information needed to produce an estimate."""
