"""Grid execution of plans with catalog provenance write-back.

Bridges the planner/scheduler (which speak grid vocabulary: jobs,
sites, transfers) and the virtual data schema (invocations, replicas):
every successfully completed plan step is written back to the catalog
as an :class:`~repro.core.invocation.Invocation` executed at the chosen
site, and every output dataset gains a :class:`~repro.core.replica.Replica`
at that site.  "The identity of the physical resources used for a
particular derivation may be relevant to subsequent provenance
tracking" (§2) — that identity is exactly what gets recorded here.
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.base import VirtualDataCatalog
from repro.core.invocation import ExecutionContext, Invocation, ResourceUsage
from repro.core.replica import Replica
from repro.errors import ExecutionError
from repro.estimator.cost import Estimator
from repro.grid.gram import GridExecutionService, JobRecord
from repro.observability.instrument import NULL, Instrumentation
from repro.planner.dag import Plan, Planner, PlanStep
from repro.planner.request import MaterializationRequest
from repro.planner.scheduler import WorkflowResult, WorkflowScheduler
from repro.planner.strategies import SiteChoice, SiteSelector


class GridExecutor:
    """Plans and runs materialization requests on the simulated grid."""

    def __init__(
        self,
        catalog: VirtualDataCatalog,
        grid: GridExecutionService,
        selector: SiteSelector,
        estimator: Optional[Estimator] = None,
        max_retries: int = 2,
        record_provenance: bool = True,
        instrumentation: Optional[Instrumentation] = None,
    ):
        self.catalog = catalog
        self.grid = grid
        self.selector = selector
        self.estimator = estimator or Estimator(catalog)
        self.max_retries = max_retries
        self.record_provenance = record_provenance
        self.obs = instrumentation or NULL
        if self.obs.enabled and not self.catalog.obs.enabled:
            # Adopt the catalog into this executor's observability
            # scope unless it already has its own.
            self.catalog.obs = self.obs

    # -- planning ------------------------------------------------------------

    def make_planner(self, reuse_transfer_bandwidth: float = 10e6) -> Planner:
        """A planner wired to this grid's replica state and estimator.

        Under the ``cost`` reuse policy a dataset is reused when
        fetching its cheapest replica is faster than the estimated cpu
        of recomputing its producing subtree — the §1 rerun-vs-retrieve
        decision.
        """

        def reuse_decider(lfn: str, recompute_cpu: float) -> bool:
            size = self.grid.replicas.size_of(lfn)
            transfer_seconds = size / reuse_transfer_bandwidth
            return transfer_seconds <= recompute_cpu

        return Planner(
            self.catalog,
            instrumentation=self.obs,
            has_replica=self.grid.replicas.has,
            cpu_estimate=self.estimator.estimate_derivation,
            size_estimate=lambda lfn: (
                self.grid.replicas.size_of(lfn)
                if self.grid.replicas.has(lfn)
                else self.catalog.get_dataset(lfn).size_estimate(
                    default=1_000_000
                )
                if self.catalog.has_dataset(lfn)
                else 1_000_000
            ),
            reuse_decider=reuse_decider,
        )

    def plan(self, request: MaterializationRequest) -> Plan:
        with self.obs.span("executor.plan"):
            plan = self.make_planner().plan(request)
            # Fill output size estimates from the estimator where the
            # planner's catalog-declared sizes were defaults.
            for step in plan.steps.values():
                for output in step.outputs:
                    step.output_sizes[output] = (
                        self.estimator.estimate_output_bytes(
                            step.derivation, output
                        )
                    )
            return plan

    # -- execution --------------------------------------------------------------

    def run(
        self, plan: Plan, request: Optional[MaterializationRequest] = None
    ) -> WorkflowResult:
        """Execute a plan; provenance lands in the catalog."""
        pattern = request.pattern if request else "ship-data"
        max_hosts = request.max_hosts if request else None
        listener = self._write_back if self.record_provenance else None
        scheduler = WorkflowScheduler(
            self.grid,
            self.selector,
            pattern=pattern,
            max_retries=self.max_retries,
            max_hosts=max_hosts,
            step_listener=listener,
            instrumentation=self.obs,
        )
        with self.obs.span("executor.run", steps=len(plan.steps)):
            return scheduler.run(plan)

    def materialize(self, request: MaterializationRequest) -> WorkflowResult:
        """Plan and run a request end to end."""
        with self.obs.span(
            "executor.materialize", targets=",".join(request.targets)
        ):
            plan = self.plan(request)
            if self.obs.enabled:
                # Virtual-data reuse: requested work satisfied without
                # recomputation (the §1 rerun-vs-retrieve win).
                self.obs.count(
                    "executor.reuse.hits",
                    len(plan.reused),
                    help="datasets served from existing replicas",
                )
            result = self.run(plan, request)
            if not result.succeeded:
                raise ExecutionError(
                    f"materialization failed; steps {sorted(result.failed_steps)}"
                )
            return result

    # -- provenance write-back -----------------------------------------------------

    def _write_back(
        self, step: PlanStep, choice: SiteChoice, record: JobRecord
    ) -> None:
        invocation = Invocation(
            derivation_name=step.derivation.name,
            status="success",
            start_time=record.start_time,
            context=ExecutionContext.make(
                site=choice.site,
                host=record.host,
                environment=dict(step.derivation.environment),
            ),
            usage=ResourceUsage(
                cpu_seconds=record.spec.cpu_seconds,
                wall_seconds=record.end_time - record.start_time,
                bytes_read=record.bytes_staged,
                bytes_written=sum(record.spec.outputs.values()),
            ),
        )
        for output, size in record.spec.outputs.items():
            replica = Replica(
                dataset_name=output,
                location=choice.site,
                size=size,
            )
            self.catalog.add_replica(replica)
            formal = self._formal_for(step, output)
            if formal is not None:
                invocation.replica_bindings[formal] = replica.replica_id
        if not self.catalog.has_derivation(step.derivation.name):
            # Synthetic sub-derivations from compound expansion become
            # first-class provenance records of their own.
            self.catalog.add_derivation(step.derivation, validate=False)
        self.catalog.add_invocation(invocation)

    @staticmethod
    def _formal_for(step: PlanStep, dataset: str) -> Optional[str]:
        for formal, arg in step.derivation.dataset_args():
            if arg.dataset == dataset and arg.is_output:
                return formal
        return None
