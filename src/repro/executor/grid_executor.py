"""Grid execution of plans with catalog provenance write-back.

Bridges the planner/scheduler (which speak grid vocabulary: jobs,
sites, transfers) and the virtual data schema (invocations, replicas):
every successfully completed plan step is written back to the catalog
as an :class:`~repro.core.invocation.Invocation` executed at the chosen
site, and every output dataset gains a :class:`~repro.core.replica.Replica`
at that site.  "The identity of the physical resources used for a
particular derivation may be relevant to subsequent provenance
tracking" (§2) — that identity is exactly what gets recorded here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.catalog.base import VirtualDataCatalog
from repro.core.invocation import ExecutionContext, Invocation, ResourceUsage
from repro.core.recipe import stamp_recipe
from repro.core.replica import Replica
from repro.durability.crashpoints import crashpoint
from repro.errors import WorkflowError
from repro.estimator.cost import Estimator
from repro.grid.gram import GridExecutionService, JobRecord
from repro.observability.instrument import NULL, Instrumentation
from repro.planner.dag import Plan, Planner, PlanStep
from repro.planner.request import MaterializationRequest
from repro.planner.scheduler import WorkflowResult, WorkflowScheduler
from repro.planner.strategies import SiteChoice, SiteSelector
from repro.resilience.policies import RecoveryConfig
from repro.resilience.rescue import (
    RescueFile,
    RescueRestore,
    apply_rescue,
    expected_digest,
    rescue_from_result,
)

#: ``materialize(rescue=...)`` accepts a loaded file or a path to one.
RescueInput = Union[RescueFile, str, Path]


class GridExecutor:
    """Plans and runs materialization requests on the simulated grid."""

    def __init__(
        self,
        catalog: VirtualDataCatalog,
        grid: GridExecutionService,
        selector: SiteSelector,
        estimator: Optional[Estimator] = None,
        max_retries: int = 2,
        record_provenance: bool = True,
        instrumentation: Optional[Instrumentation] = None,
        recovery: Optional[RecoveryConfig] = None,
    ):
        self.catalog = catalog
        self.grid = grid
        self.selector = selector
        self.estimator = estimator or Estimator(catalog)
        self.max_retries = max_retries
        self.record_provenance = record_provenance
        self.obs = instrumentation or NULL
        self.recovery = recovery
        #: What the last ``materialize(rescue=...)`` restored/quarantined.
        self.last_restore: Optional[RescueRestore] = None
        if self.obs.enabled and not self.catalog.obs.enabled:
            # Adopt the catalog into this executor's observability
            # scope unless it already has its own.
            self.catalog.obs = self.obs

    # -- planning ------------------------------------------------------------

    def make_planner(self, reuse_transfer_bandwidth: float = 10e6) -> Planner:
        """A planner wired to this grid's replica state and estimator.

        Under the ``cost`` reuse policy a dataset is reused when
        fetching its cheapest replica is faster than the estimated cpu
        of recomputing its producing subtree — the §1 rerun-vs-retrieve
        decision.
        """

        def reuse_decider(lfn: str, recompute_cpu: float) -> bool:
            size = self.grid.replicas.size_of(lfn)
            transfer_seconds = size / reuse_transfer_bandwidth
            return transfer_seconds <= recompute_cpu

        return Planner(
            self.catalog,
            instrumentation=self.obs,
            has_replica=self.grid.replicas.has,
            cpu_estimate=self.estimator.estimate_derivation,
            size_estimate=lambda lfn: (
                self.grid.replicas.size_of(lfn)
                if self.grid.replicas.has(lfn)
                else self.catalog.get_dataset(lfn).size_estimate(
                    default=1_000_000
                )
                if self.catalog.has_dataset(lfn)
                else 1_000_000
            ),
            reuse_decider=reuse_decider,
        )

    def plan(self, request: MaterializationRequest) -> Plan:
        with self.obs.span("executor.plan"):
            plan = self.make_planner().plan(request)
            # Fill output size estimates from the estimator where the
            # planner's catalog-declared sizes were defaults.
            for step in plan.steps.values():
                for output in step.outputs:
                    step.output_sizes[output] = (
                        self.estimator.estimate_output_bytes(
                            step.derivation, output
                        )
                    )
            return plan

    # -- execution --------------------------------------------------------------

    def run(
        self,
        plan: Plan,
        request: Optional[MaterializationRequest] = None,
        completed: Optional[set[str]] = None,
        until: Optional[float] = None,
    ) -> WorkflowResult:
        """Execute a plan; provenance lands in the catalog."""
        pattern = request.pattern if request else "ship-data"
        max_hosts = request.max_hosts if request else None
        listener = self._write_back if self.record_provenance else None
        scheduler = WorkflowScheduler(
            self.grid,
            self.selector,
            pattern=pattern,
            max_retries=self.max_retries,
            max_hosts=max_hosts,
            step_listener=listener,
            instrumentation=self.obs,
            recovery=self.recovery,
        )
        with self.obs.span("executor.run", steps=len(plan.steps)):
            return scheduler.run(plan, completed=completed, until=until)

    def materialize(
        self,
        request: MaterializationRequest,
        rescue: Optional[RescueInput] = None,
        until: Optional[float] = None,
    ) -> WorkflowResult:
        """Plan and run a request end to end.

        ``rescue`` resumes a previous (killed or failed) run of the
        same request: the rescue file's completed steps are verified
        against the grid — corrupt replicas quarantined, missing ones
        restored — and only unfinished steps re-execute.  ``until``
        kills the run at that simulation time; the partial result is
        returned (``interrupted=True``) instead of raising, so a rescue
        file can be written from it.

        A run that finishes with failures raises
        :class:`~repro.errors.WorkflowError` carrying the full result
        for per-step failure reporting.
        """
        with self.obs.span(
            "executor.materialize", targets=",".join(request.targets)
        ):
            plan = self.plan(request)
            if self.obs.enabled:
                # Virtual-data reuse: requested work satisfied without
                # recomputation (the §1 rerun-vs-retrieve win).
                self.obs.count(
                    "executor.reuse.hits",
                    len(plan.reused),
                    help="datasets served from existing replicas",
                )
            completed: Optional[set[str]] = None
            self.last_restore = None
            if rescue is not None:
                if isinstance(rescue, (str, Path)):
                    rescue = RescueFile.load(rescue)
                restore = apply_rescue(
                    plan,
                    rescue,
                    self.grid,
                    catalog=self.catalog,
                    instrumentation=self.obs,
                )
                self.last_restore = restore
                completed = restore.completed
            result = self.run(plan, request, completed=completed, until=until)
            if not result.succeeded and not result.interrupted:
                raise WorkflowError(
                    f"materialization failed; steps "
                    f"{sorted(result.failed_steps)}",
                    result=result,
                )
            return result

    def rescue_file(
        self, result: WorkflowResult, base: Optional[RescueFile] = None
    ) -> RescueFile:
        """Distil ``result`` into a rescue file for a later resume.

        ``base`` is the rescue file the run itself was resumed from;
        its records for steps that stayed pre-completed are carried
        over so chained rescues never lose finished work.
        """
        rescue = rescue_from_result(result)
        if base is not None:
            for name in result.pre_completed:
                if name in base.completed:
                    rescue.completed[name] = base.completed[name]
        return rescue

    # -- provenance write-back -----------------------------------------------------

    def _write_back(
        self, step: PlanStep, choice: SiteChoice, record: JobRecord
    ) -> None:
        invocation = Invocation(
            derivation_name=step.derivation.name,
            status="success",
            start_time=record.start_time,
            context=ExecutionContext.make(
                site=choice.site,
                host=record.host,
                environment=dict(step.derivation.environment),
            ),
            usage=ResourceUsage(
                cpu_seconds=record.spec.cpu_seconds,
                wall_seconds=record.end_time - record.start_time,
                bytes_read=record.bytes_staged,
                bytes_written=sum(record.spec.outputs.values()),
            ),
        )
        stamp_recipe(invocation, step.derivation, step.transformation)
        # Atomic write-back: the step's replicas, any synthetic
        # derivation, and the invocation commit together, so a crash
        # mid-write-back never leaves replicas without provenance.
        with self.catalog.transaction(label=f"write-back:{step.name}"):
            for output, size in record.spec.outputs.items():
                replica = Replica(
                    dataset_name=output,
                    location=choice.site,
                    size=size,
                    # The simulated grid moves no real bytes; stamp the
                    # deterministic pseudo-digest so replica equivalence
                    # and fsck can still cross-check records.
                    digest=expected_digest(output, size),
                )
                crashpoint("executor.stage-out")
                self.catalog.add_replica(replica)
                formal = self._formal_for(step, output)
                if formal is not None:
                    invocation.replica_bindings[formal] = replica.replica_id
            if not self.catalog.has_derivation(step.derivation.name):
                # Synthetic sub-derivations from compound expansion become
                # first-class provenance records of their own.
                self.catalog.add_derivation(step.derivation, validate=False)
            self.catalog.add_invocation(invocation)
        crashpoint("executor.post-commit")
        if self.obs.recorder is not None:
            self.obs.recorder.invocation(invocation)

    @staticmethod
    def _formal_for(step: PlanStep, dataset: str) -> Optional[str]:
        for formal, arg in step.derivation.dataset_args():
            if arg.dataset == dataset and arg.is_output:
                return formal
        return None
