"""Interactive sessions: automatic derivation tracking + snapshots.

§5.1: "we envision VDL also being integrated into interactive analysis
tools and environments, so that researchers exploring data spaces in a
less structured fashion will have the benefits of a historical log of
their recent data derivation activities.  These users could then
choose to snapshot these logs (which could be maintained directly in a
virtual data catalog) into a more permanent and well-categorized and
named portion of their virtual data workspace."

:class:`InteractiveSession` wraps a :class:`~repro.executor.local.LocalExecutor`:
the user just *runs* transformations with keyword bindings — no DV
declarations — and the session synthesizes the derivation records,
executes them, and keeps the historical log.  :meth:`snapshot`
publishes chosen results (with their full recipes) into a permanent
catalog under curated names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.catalog.base import VirtualDataCatalog
from repro.catalog.promotion import PromotionReport, promote
from repro.catalog.resolver import ReferenceResolver
from repro.core.derivation import DatasetArg, Derivation
from repro.core.invocation import Invocation
from repro.core.naming import VDPRef
from repro.errors import ExecutionError
from repro.executor.local import LocalExecutor


@dataclass
class SessionEntry:
    """One step of the session's historical log."""

    derivation: Derivation
    invocation: Invocation

    @property
    def outputs(self) -> tuple[str, ...]:
        return self.derivation.outputs()


class InteractiveSession:
    """An exploratory analysis session with automatic tracking."""

    def __init__(self, executor: LocalExecutor, prefix: str = "session"):
        self.executor = executor
        self.catalog = executor.catalog
        self.prefix = prefix
        self._counter = 0
        self.log: list[SessionEntry] = []

    # -- running ---------------------------------------------------------------

    def run(self, transformation: str, **bindings: str) -> tuple[str, ...]:
        """Run a transformation interactively; returns output dataset names.

        Keyword bindings map formal names to values: strings for
        ``none`` formals; dataset names for dataset formals (existing
        names for inputs; any fresh name for outputs — omitted outputs
        get generated ``<prefix>.N.<formal>`` names).
        """
        tr = self.catalog.get_transformation(transformation)
        self._counter += 1
        dv_name = f"{self.prefix}.{self._counter:04d}"
        actuals: dict[str, Union[str, DatasetArg]] = {}
        for formal in tr.signature.formals:
            value = bindings.get(formal.name)
            if formal.is_string:
                if value is not None:
                    actuals[formal.name] = value
                elif formal.default is None:
                    raise ExecutionError(
                        f"interactive run of {transformation!r}: string "
                        f"formal {formal.name!r} needs a value"
                    )
            else:
                if value is None:
                    if formal.is_input and formal.default is None:
                        raise ExecutionError(
                            f"interactive run of {transformation!r}: input "
                            f"{formal.name!r} needs a dataset name"
                        )
                    value = (
                        formal.default
                        or f"{self.prefix}.{self._counter:04d}.{formal.name}"
                    )
                actuals[formal.name] = DatasetArg(
                    dataset=value, direction=formal.direction
                )
        derivation = Derivation(
            name=dv_name,
            transformation=VDPRef(transformation, kind="transformation"),
            actuals=actuals,
        )
        derivation.attributes.set("session", self.prefix)
        self.catalog.add_derivation(derivation)
        invocation = self.executor.execute(derivation)
        self.log.append(
            SessionEntry(derivation=derivation, invocation=invocation)
        )
        return derivation.outputs()

    # -- the historical log ------------------------------------------------------

    def history(self) -> list[str]:
        """Human-readable log lines, oldest first."""
        lines = []
        for entry in self.log:
            dv = entry.derivation
            params = ", ".join(
                f"{k}={v!r}"
                for k, v in dv.actuals.items()
                if isinstance(v, str)
            )
            lines.append(
                f"{dv.name}: {dv.transformation.name}({params}) -> "
                f"{', '.join(entry.outputs)} "
                f"[{entry.invocation.usage.wall_seconds * 1e3:.1f} ms]"
            )
        return lines

    def datasets_created(self) -> list[str]:
        out: list[str] = []
        for entry in self.log:
            out.extend(entry.outputs)
        return out

    # -- snapshotting (§5.1) --------------------------------------------------------

    def snapshot(
        self,
        destination: VirtualDataCatalog,
        names: dict[str, str],
        signer=None,
        authority: Optional[str] = None,
    ) -> PromotionReport:
        """Publish selected session results into a permanent catalog.

        ``names`` maps session dataset names to their curated permanent
        names.  The full recipes travel along (via catalog promotion);
        renamed datasets keep provenance because the rename is applied
        to the promoted records at the destination.
        """
        resolver = ReferenceResolver(self.catalog)
        report = PromotionReport()
        for session_name, permanent_name in names.items():
            sub = promote(
                session_name,
                resolver,
                destination,
                signer=signer,
                authority=authority,
            )
            report.datasets += sub.datasets
            report.derivations += sub.derivations
            report.transformations += sub.transformations
            report.skipped += sub.skipped
            if permanent_name != session_name:
                self._rename(destination, session_name, permanent_name)
                report.datasets = [
                    permanent_name if d == session_name else d
                    for d in report.datasets
                ]
        return report

    @staticmethod
    def _rename(
        catalog: VirtualDataCatalog, old: str, new: str
    ) -> None:
        dataset = catalog.get_dataset(old)
        dataset.name = new
        catalog.add_dataset(dataset, replace=True)
        catalog.remove_dataset(old)
        for dv in catalog.producers_of(old) + catalog.consumers_of(old):
            for formal, arg in list(dv.dataset_args()):
                if arg.dataset == old:
                    dv.actuals[formal] = DatasetArg(
                        dataset=new,
                        direction=arg.direction,
                        temporary=arg.temporary,
                    )
            catalog.add_derivation(
                dv, replace=True, validate=False, auto_declare=False
            )
