"""Local execution of transformations with full provenance capture.

This executor actually runs transformations — as registered Python
callables or real subprocesses — against a sandbox directory, and
records what the schema demands: an
:class:`~repro.core.invocation.Invocation` with timing, environment and
resource usage; :class:`~repro.core.replica.Replica` records with
content digests for every output; and materialized dataset descriptors.

It is the "interactive environment" execution path of §5: "a user could
trigger the invocation of a derivation, and ... this mechanism would
run with low overhead and with response time that is as rapid as the
speed of the transformation itself."
"""

from __future__ import annotations

import os
import platform
import queue
import subprocess
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from pathlib import Path
from typing import Callable, Optional

from repro.catalog.base import VirtualDataCatalog
from repro.core.dataset import Dataset
from repro.core.derivation import Derivation
from repro.core.descriptors import FileDescriptor
from repro.core.invocation import ExecutionContext, Invocation, ResourceUsage
from repro.core.recipe import stamp_recipe
from repro.core.replica import Replica
from repro.core.transformation import SimpleTransformation
from repro.durability.checksum import file_digest, verify_file
from repro.durability.crashpoints import crashpoint
from repro.durability.recovery import sandbox_filename
from repro.errors import ExecutionError, MaterializationError
from repro.observability.instrument import NULL, Instrumentation
from repro.planner.dag import Planner
from repro.planner.request import MaterializationRequest
from repro.resilience.policies import (
    FAIL_FAST,
    FAILURE_POLICIES,
    RUN_WHAT_YOU_CAN,
)


class RunContext:
    """Everything a registered Python transformation body receives."""

    def __init__(
        self,
        workdir: Path,
        argv: tuple[str, ...],
        environment: dict[str, str],
        input_paths: dict[str, Path],
        output_paths: dict[str, Path],
        parameters: dict[str, str],
        streams: dict[str, Path],
    ):
        self.workdir = workdir
        self.argv = argv
        self.environment = environment
        self.input_paths = input_paths
        self.output_paths = output_paths
        self.parameters = parameters
        self.streams = streams

    def read_input(self, formal: str) -> bytes:
        """Read the full contents of the input bound to ``formal``."""
        return self.input_paths[formal].read_bytes()

    def write_output(self, formal: str, data: bytes | str) -> None:
        """Write the output bound to ``formal``."""
        path = self.output_paths[formal]
        if isinstance(data, str):
            data = data.encode()
        path.write_bytes(data)


#: A registered transformation body: receives the context, returns
#: nothing; raises to signal failure.
TransformationBody = Callable[[RunContext], None]


class LocalExecutor:
    """Runs derivations in a sandbox directory, recording provenance."""

    def __init__(
        self,
        catalog: VirtualDataCatalog,
        workdir: str | Path,
        site_name: str = "local",
        instrumentation: Optional[Instrumentation] = None,
        quarantine_dir: Optional[str | Path] = None,
    ):
        self.catalog = catalog
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.site_name = site_name
        self.quarantine_dir = (
            Path(quarantine_dir)
            if quarantine_dir
            else self.workdir / "quarantine"
        )
        # Sandbox files verified against their replica checksum, keyed
        # by path with the (size, mtime_ns) stamp seen at verification;
        # lets verify-on-consume cost one stat, not one hash, per reuse.
        self._verified: dict[str, tuple[int, int]] = {}
        self.obs = instrumentation or NULL
        if self.obs.enabled and not self.catalog.obs.enabled:
            # Adopt the catalog into this executor's observability
            # scope unless it already has its own.
            self.catalog.obs = self.obs
        self._bodies: dict[str, TransformationBody] = {}
        # Per-dataset sandbox locks for the parallel engine.
        self._dataset_locks: dict[str, threading.Lock] = {}
        self._dataset_locks_guard = threading.Lock()
        # One incremental planner per executor: repeated materialize()
        # calls patch the previous plan instead of re-walking the whole
        # derivation graph (rebuilt lazily if observability is swapped).
        self._planner: Optional[Planner] = None

    # -- registration ---------------------------------------------------------

    def register(self, executable: str, body: TransformationBody) -> None:
        """Bind a Python callable to an executable path.

        When a transformation's ``exec`` matches a registered path the
        callable runs instead of a real subprocess, which is how test
        and example pipelines execute hermetically.
        """
        self._bodies[executable] = body

    def path_for(self, dataset_name: str) -> Path:
        """Sandbox path holding (or destined to hold) a dataset."""
        return self.workdir / sandbox_filename(dataset_name)

    def is_materialized(self, dataset_name: str) -> bool:
        return self.path_for(dataset_name).exists()

    def has_valid_replica(self, dataset_name: str) -> bool:
        """Whether a sandbox copy exists *and* matches its checksum.

        The planner's ``has_replica`` oracle: existence alone is not
        enough once replicas carry content digests — a file that rotted
        (or was half-written when the process died) must not satisfy
        reuse.  On a mismatch the copy is quarantined, its replica
        record removed, and its downstream provenance invalidated, so
        planning transparently re-derives from the recipe.

        Files without a replica record (user-staged sources) verify
        trivially, and clean verifications are cached against the
        file's (size, mtime_ns) so steady-state reuse costs one
        ``stat``, not one hash.
        """
        path = self.path_for(dataset_name)
        if not path.exists():
            return False
        matching = [
            replica
            for replica in self.catalog.replicas_of(dataset_name)
            if isinstance(replica.descriptor, FileDescriptor)
            and replica.descriptor.path == str(path)
        ]
        if not matching:
            return True
        stat = path.stat()
        stamp = (stat.st_size, stat.st_mtime_ns)
        if self._verified.get(str(path)) == stamp:
            return True
        for replica in matching:
            if not verify_file(path, size=replica.size, digest=replica.digest):
                self._quarantine_corrupt(dataset_name, replica, path)
                return False
        self._verified[str(path)] = stamp
        return True

    def _quarantine_corrupt(self, dataset_name, replica, path: Path) -> None:
        """Sideline a checksum-mismatched sandbox file and its records."""
        if self.obs.enabled:
            self.obs.count(
                "durability.checksum.failures",
                help="replica checksum/size verification failures",
            )
        from repro.provenance.graph import DerivationGraph
        from repro.provenance.invalidation import invalidated_by

        graph = DerivationGraph.from_catalog(self.catalog)
        tainted = invalidated_by(
            graph, bad_datasets=[dataset_name]
        ).tainted_datasets
        with self.catalog.transaction(label=f"quarantine:{dataset_name}"):
            for name in sorted({dataset_name, *tainted}):
                target = self.path_for(name)
                if name != dataset_name and not target.exists():
                    continue
                for rep in self.catalog.replicas_of(name):
                    if (
                        isinstance(rep.descriptor, FileDescriptor)
                        and rep.descriptor.path == str(target)
                    ):
                        self.catalog.remove_replica(rep.replica_id)
                if target.exists():
                    self._move_to_quarantine(target)
                self._verified.pop(str(target), None)
                if self.catalog.has_dataset(name):
                    ds = self.catalog.get_dataset(name)
                    if not ds.is_virtual:
                        self.catalog.add_dataset(
                            Dataset(
                                name=ds.name,
                                dataset_type=ds.dataset_type,
                                attributes=ds.attributes.copy(),
                                producer=ds.producer,
                            ),
                            replace=True,
                        )
        if self.obs.recorder is not None:
            self.obs.recorder.event(
                "replica.quarantined",
                dataset=dataset_name,
                replica=replica.replica_id,
                tainted=sorted(tainted),
            )

    def _move_to_quarantine(self, path: Path) -> Path:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        ordinal = 0
        while target.exists():
            ordinal += 1
            target = self.quarantine_dir / f"{path.name}.{ordinal}"
        os.replace(path, target)
        return target

    # -- execution ---------------------------------------------------------------

    def execute(self, dv: Derivation | str) -> Invocation:
        """Run one derivation now; returns the recorded invocation.

        Inputs must already be materialized in the sandbox.  On
        success, output datasets get replicas (with sha256 digests) and
        file descriptors registered in the catalog.
        """
        name = dv if isinstance(dv, str) else dv.name
        with self.obs.span("executor.execute", derivation=name):
            try:
                invocation = self._execute(dv)
            except ExecutionError:
                if self.obs.enabled:
                    self.obs.count(
                        "executor.invocations",
                        status="failure",
                        help="local executions by terminal status",
                    )
                raise
            if self.obs.enabled:
                self.obs.count(
                    "executor.invocations",
                    status=invocation.status,
                    help="local executions by terminal status",
                )
                self.obs.observe(
                    "executor.invocation.seconds",
                    invocation.usage.wall_seconds,
                    help="wall time per local derivation",
                )
                self.obs.count(
                    "executor.bytes_written",
                    invocation.usage.bytes_written,
                    help="output bytes produced locally",
                )
            return invocation

    def _execute(self, dv: Derivation | str) -> Invocation:
        if isinstance(dv, str):
            dv = self.catalog.get_derivation(dv)
        tr = self.catalog.get_transformation(dv.transformation.name)
        if not isinstance(tr, SimpleTransformation):
            raise ExecutionError(
                f"local executor runs simple transformations only; "
                f"{tr.name!r} is compound (plan it first)"
            )
        values, input_paths, output_paths, parameters = self._bind(dv, tr)
        for formal, path in input_paths.items():
            if not path.exists():
                raise ExecutionError(
                    f"derivation {dv.name!r}: input {formal!r} "
                    f"({path.name}) is not materialized"
                )
        argv = tr.command_line(values)
        environment = {**dict(dv.environment), **tr.rendered_environment(values)}
        streams = {}
        for stream_name, rendered in tr.stream_redirects(values).items():
            path = Path(rendered)
            if not path.is_absolute():
                # A bare LFN (e.g. a string default): sandbox it.
                path = self.workdir / rendered.replace("/", "_")
            streams[stream_name] = path
        context = RunContext(
            workdir=self.workdir,
            argv=argv,
            environment=environment,
            input_paths=input_paths,
            output_paths=output_paths,
            parameters=parameters,
            streams=streams,
        )
        started = time.time()
        clock0 = time.perf_counter()
        error: Optional[str] = None
        exit_code = 0
        try:
            self._run_body(tr, context)
        except ExecutionError:
            raise
        except Exception as exc:  # body failures become failed invocations
            error = f"{type(exc).__name__}: {exc}"
            exit_code = 1
        elapsed = time.perf_counter() - clock0
        bytes_read = sum(
            p.stat().st_size for p in input_paths.values() if p.exists()
        )
        bytes_written = sum(
            p.stat().st_size for p in output_paths.values() if p.exists()
        )
        invocation = Invocation(
            derivation_name=dv.name,
            status="success" if error is None else "failure",
            start_time=started,
            context=ExecutionContext.make(
                site=self.site_name,
                host=platform.node() or "localhost",
                os=platform.system().lower() or "linux",
                processor=platform.machine() or "x86_64",
                environment=environment,
            ),
            usage=ResourceUsage(
                cpu_seconds=elapsed,
                wall_seconds=elapsed,
                bytes_read=bytes_read,
                bytes_written=bytes_written,
            ),
            exit_code=exit_code,
            error=error,
        )
        stamp_recipe(invocation, dv, tr)
        # One atomic provenance commit: output replicas, materialized
        # dataset records and the invocation land together or not at
        # all.  A kill inside this window leaves either a rollback-able
        # journal/backend transaction or nothing — never a replica
        # without its invocation.
        with self.catalog.transaction(label=f"invocation:{dv.name}"):
            if error is None:
                self._record_outputs(dv, invocation, output_paths)
            self.catalog.add_invocation(invocation)
        crashpoint("executor.post-commit")
        if self.obs.recorder is not None:
            self.obs.recorder.invocation(invocation)
        if error is not None:
            raise ExecutionError(
                f"derivation {dv.name!r} failed: {error}"
            )
        return invocation

    def _bind(self, dv: Derivation, tr: SimpleTransformation):
        values: dict[str, str] = {}
        input_paths: dict[str, Path] = {}
        output_paths: dict[str, Path] = {}
        parameters: dict[str, str] = {}
        for formal in tr.signature.formals:
            actual = dv.actuals.get(formal.name, formal.default)
            if actual is None:
                raise ExecutionError(
                    f"derivation {dv.name!r}: formal {formal.name!r} unbound"
                )
            if isinstance(actual, str):
                values[formal.name] = actual
                if formal.is_string:
                    parameters[formal.name] = actual
                else:
                    # Dataset formal bound via default LFN string.
                    path = self.path_for(actual)
                    if formal.is_input:
                        input_paths[formal.name] = path
                    if formal.is_output:
                        output_paths[formal.name] = path
                    values[formal.name] = str(path)
            else:
                path = self.path_for(actual.dataset)
                values[formal.name] = str(path)
                if actual.is_input:
                    input_paths[formal.name] = path
                if actual.is_output:
                    output_paths[formal.name] = path
        return values, input_paths, output_paths, parameters

    def _run_body(self, tr: SimpleTransformation, context: RunContext) -> None:
        body = self._bodies.get(tr.executable)
        if body is not None:
            body(context)
            return
        if not os.path.exists(tr.executable):
            raise ExecutionError(
                f"executable {tr.executable!r} does not exist and no "
                f"Python body is registered for it"
            )
        stdin_path = context.streams.get("stdin")
        stdout_path = context.streams.get("stdout")
        stderr_path = context.streams.get("stderr")
        # VDL argument statements are text fragments of the command
        # line; a real invocation splits them into words the way a
        # shell would (Chimera's POSIX execution model).
        import shlex

        words = shlex.split(" ".join(context.argv))
        with _maybe_open(stdin_path, "rb") as stdin, _maybe_open(
            stdout_path, "wb"
        ) as stdout, _maybe_open(stderr_path, "wb") as stderr:
            completed = subprocess.run(
                [tr.executable, *words],
                stdin=stdin,
                stdout=stdout,
                stderr=stderr,
                env={**os.environ, **context.environment},
                cwd=context.workdir,
                check=False,
            )
        if completed.returncode != 0:
            raise RuntimeError(
                f"{tr.executable} exited with {completed.returncode}"
            )

    def _record_outputs(
        self,
        dv: Derivation,
        invocation: Invocation,
        output_paths: dict[str, Path],
    ) -> None:
        for formal, path in output_paths.items():
            actual = dv.actuals.get(formal)
            dataset_name = (
                actual.dataset if hasattr(actual, "dataset") else path.name
            )
            if not path.exists():
                raise ExecutionError(
                    f"derivation {dv.name!r} succeeded but output "
                    f"{dataset_name!r} was not written"
                )
            size = path.stat().st_size
            digest = file_digest(path)
            crashpoint("executor.stage-out")
            replica = Replica(
                dataset_name=dataset_name,
                location=self.site_name,
                descriptor=FileDescriptor(path=str(path), size=size),
                size=size,
                digest=digest,
            )
            self.catalog.add_replica(replica)
            invocation.replica_bindings[formal] = replica.replica_id
            if self.catalog.has_dataset(dataset_name):
                ds = self.catalog.get_dataset(dataset_name)
            else:
                ds = Dataset(name=dataset_name)
            self.catalog.add_dataset(
                ds.materialized(FileDescriptor(path=str(path), size=size)),
                replace=True,
            )
            stat = path.stat()
            self._verified[str(path)] = (stat.st_size, stat.st_mtime_ns)

    # -- end-to-end materialization ------------------------------------------------

    def planner(self) -> Planner:
        """This executor's (incremental) planner, built lazily.

        One planner instance lives as long as the executor so repeated
        ``materialize()`` calls hit its plan cache; it is rebuilt only
        if the executor's instrumentation is swapped out after
        construction (the planner captures ``obs`` at build time).
        """
        if self._planner is None or self._planner.obs is not self.obs:
            self._planner = Planner(
                self.catalog,
                has_replica=self.has_valid_replica,
                instrumentation=self.obs,
                incremental=True,
            )
        return self._planner

    def materialize(
        self,
        target: str,
        reuse: str = "always",
        workers: int = 1,
        failure_policy: Optional[str] = None,
        backend: str = "thread",
    ) -> list[Invocation]:
        """Plan and execute everything needed to produce ``target``.

        Existing sandbox files count as replicas for the reuse policy.
        Returns the invocations performed, ordered by the plan's
        topological order (which for ``workers=1`` is execution order).

        ``workers`` sizes a pool that dispatches the entire ready
        frontier concurrently (§5.4's workflow manager dispatches
        "nodes of the workflow graph when the node's predecessor
        dependencies have completed").  ``backend`` selects the pool:
        ``"thread"`` (default) shares the interpreter and suits
        I/O-bound or subprocess-heavy steps; ``"process"`` runs
        registered Python bodies in worker processes so CPU-bound
        steps scale past the GIL (bodies must then be module-level
        functions — see :mod:`repro.executor.process`).
        ``failure_policy`` is one of the PR-3 policies: ``"fail-fast"``
        (default) stops dispatching on the first failure and re-raises
        it once in-flight steps drain; ``"run-what-you-can"`` keeps
        executing steps outside the failed subtree and raises
        :class:`~repro.errors.MaterializationError` at the end.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in ("thread", "process"):
            raise ValueError(
                f"unknown backend {backend!r}; expected 'thread' or "
                f"'process'"
            )
        policy = failure_policy or FAIL_FAST
        if policy not in FAILURE_POLICIES:
            raise ValueError(
                f"unknown failure policy {policy!r}; expected one of "
                f"{FAILURE_POLICIES}"
            )
        with self.obs.span(
            "executor.materialize", targets=target, workers=workers
        ) as mspan:
            with self.obs.phase("plan"):
                plan = self.planner().plan(
                    MaterializationRequest(targets=(target,), reuse=reuse)
                )
            if self.obs.recorder is not None:
                self.obs.recorder.plan(plan)
            if self.obs.progress is not None:
                self.obs.progress.start_plan(plan)
            with self.obs.phase("execute"):
                if backend == "process":
                    return self._materialize_process(
                        plan, workers, policy, mspan
                    )
                if workers == 1 and policy == FAIL_FAST:
                    # Today's sequential path, unchanged.
                    invocations = []
                    for name in plan.topological_order():
                        if self.obs.progress is not None:
                            self.obs.progress.step_started(name)
                        try:
                            invocation = self.execute(
                                plan.steps[name].derivation
                            )
                        except ExecutionError:
                            self._note_step(name, None, "failure")
                            raise
                        invocations.append(invocation)
                        self._note_step(name, invocation, "success")
                    return invocations
                return self._materialize_parallel(
                    plan, workers, policy, mspan
                )

    def _materialize_parallel(
        self, plan, workers: int, policy: str, parent=None
    ) -> list[Invocation]:
        """Frontier-driven pool execution of a plan.

        The main thread owns all scheduling state (frontier, skip set,
        bookkeeping); worker threads only run :meth:`execute` — which
        takes per-output dataset locks so two steps can never write the
        same sandbox file concurrently — and the catalog serializes its
        own mutations.
        """
        order_index = {
            name: i for i, name in enumerate(plan.topological_order())
        }
        frontier = plan.frontier()
        completed: dict[str, Invocation] = {}
        failures: dict[str, ExecutionError] = {}
        skipped: set[str] = set()
        pool = ThreadPoolExecutor(max_workers=workers)
        futures: dict = {}  # future -> step name
        try:
            while True:
                if not (frontier.exhausted and not futures):
                    # Dispatch every ready step there is pool room for,
                    # in deterministic name order.
                    dispatchable = [
                        name
                        for name in frontier.ready()
                        if name not in futures.values()
                        and name not in skipped
                        and name not in failures
                    ]
                    stop_dispatch = policy == FAIL_FAST and failures
                    if not stop_dispatch:
                        for name in dispatchable:
                            step = plan.steps[name]
                            futures[
                                pool.submit(
                                    self._execute_step_locked, step, parent
                                )
                            ] = name
                            if self.obs.progress is not None:
                                self.obs.progress.step_started(name)
                        self._obs_in_flight(len(futures))
                self._sample_frontier(
                    frontier, futures, completed, len(plan.steps)
                )
                if not futures:
                    break
                done, _ = wait(
                    list(futures), return_when=FIRST_COMPLETED
                )
                for future in sorted(
                    done, key=lambda f: order_index[futures[f]]
                ):
                    name = futures.pop(future)
                    try:
                        completed[name] = future.result()
                    except ExecutionError as exc:
                        failures[name] = exc
                        skipped.update(self._downstream_of(plan, name))
                        self._note_step(name, None, "failure")
                    else:
                        frontier.complete(name)
                        self._note_step(name, completed[name], "success")
                self._obs_in_flight(len(futures))
                if policy == FAIL_FAST and failures and not futures:
                    break
                # Under run-what-you-can, steps downstream of a failure
                # never become ready; everything else keeps flowing.
                if (
                    policy == RUN_WHAT_YOU_CAN
                    and not futures
                    and not any(
                        name not in skipped and name not in failures
                        for name in frontier.ready()
                    )
                ):
                    break
        finally:
            pool.shutdown(wait=True)
            self._obs_in_flight(0)
        for name in sorted(skipped, key=order_index.__getitem__):
            if self.obs.progress is not None:
                self.obs.progress.step_finished(name, "skipped")
            if self.obs.recorder is not None:
                self.obs.recorder.event(
                    "step.skipped", step=name, reason="upstream failure"
                )
        invocations = [
            completed[name]
            for name in sorted(completed, key=order_index.__getitem__)
        ]
        if failures:
            first = min(failures, key=order_index.__getitem__)
            if policy == FAIL_FAST:
                raise failures[first]
            raise MaterializationError(
                f"{len(failures)} step(s) failed "
                f"({', '.join(sorted(failures))}); "
                f"{len(skipped)} skipped downstream",
                invocations=invocations,
                failed=failures,
                skipped=skipped,
            ) from failures[first]
        return invocations

    # -- process-pool backend -------------------------------------------------

    def _materialize_process(
        self, plan, workers: int, policy: str, parent=None
    ) -> list[Invocation]:
        """Frontier-driven *process*-pool execution of a plan.

        Division of labor (see :mod:`repro.executor.process`):

        - The main thread owns scheduling: it builds a picklable
          :class:`~repro.executor.process.InvocationPayload` per ready
          step (pickle-preflighted so failures name the offending
          field), submits it, and feeds worker outcomes to the
          collector.
        - Worker processes run transformation bodies and hash outputs;
          they never touch the catalog, the executor, or any lock.
        - A single-writer collector thread performs *all* provenance
          and metrics writeback — replica and invocation records are
          allocated parent-side and committed one
          ``catalog.transaction`` per step, in dispatch-completion
          order, so an upstream step's provenance always lands before
          anything downstream of it and catalog locks never cross a
          process boundary.
        """
        from repro.executor.process import preflight_payload, run_invocation

        order_index = {
            name: i for i, name in enumerate(plan.topological_order())
        }
        frontier = plan.frontier()
        completed: dict[str, Invocation] = {}
        failures: dict[str, ExecutionError] = {}
        skipped: set[str] = set()
        collector = _ProvenanceCollector(self, parent=parent)
        collector.start()
        pool = ProcessPoolExecutor(max_workers=workers)
        futures: dict = {}  # future -> step name
        payloads: dict[str, tuple] = {}  # name -> (payload, dv, tr)
        busy_outputs: set[str] = set()  # sandbox paths being written
        try:
            while True:
                if collector.failure is not None:
                    raise collector.failure
                if not (frontier.exhausted and not futures):
                    stop_dispatch = policy == FAIL_FAST and failures
                    if not stop_dispatch:
                        for name in frontier.ready():
                            if (
                                name in futures.values()
                                or name in skipped
                                or name in failures
                            ):
                                continue
                            step = plan.steps[name]
                            try:
                                payload, dv, tr = self._build_payload(step)
                                # Two live steps must never write the
                                # same sandbox file (LFNs can collide
                                # after path sanitization); hold such a
                                # step back until the writer finishes.
                                outs = set(payload.output_paths.values())
                                if outs & busy_outputs:
                                    continue
                                preflight_payload(payload)
                            except ExecutionError as exc:
                                failures[name] = exc
                                skipped.update(
                                    self._downstream_of(plan, name)
                                )
                                self._note_step(name, None, "failure")
                                if self.obs.enabled:
                                    self.obs.count(
                                        "executor.invocations",
                                        status="failure",
                                        help=(
                                            "local executions by "
                                            "terminal status"
                                        ),
                                    )
                                continue
                            payloads[name] = (payload, dv, tr)
                            busy_outputs.update(
                                payload.output_paths.values()
                            )
                            futures[
                                pool.submit(run_invocation, payload)
                            ] = name
                            if self.obs.progress is not None:
                                self.obs.progress.step_started(name)
                        self._obs_in_flight(len(futures))
                self._sample_frontier(
                    frontier, futures, completed, len(plan.steps)
                )
                if not futures:
                    break
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for future in sorted(
                    done, key=lambda f: order_index[futures[f]]
                ):
                    name = futures.pop(future)
                    payload, dv, tr = payloads.pop(name)
                    busy_outputs.difference_update(
                        payload.output_paths.values()
                    )
                    try:
                        outcome = future.result()
                    except Exception as exc:
                        # A worker died hard (pool broken, unpicklable
                        # outcome): fail the step without provenance.
                        failures[name] = ExecutionError(
                            f"derivation {dv.name!r}: worker failed "
                            f"({type(exc).__name__}: {exc})"
                        )
                        skipped.update(self._downstream_of(plan, name))
                        self._note_step(name, None, "failure")
                        collector.submit(dv, tr, None, None)
                        continue
                    if outcome.status == "success":
                        invocation = self._outcome_invocation(
                            dv, tr, payload, outcome
                        )
                        collector.submit(dv, tr, invocation, outcome)
                        completed[name] = invocation
                        frontier.complete(name)
                        self._note_step(name, invocation, "success")
                    else:
                        if outcome.commit:
                            invocation = self._outcome_invocation(
                                dv, tr, payload, outcome
                            )
                            collector.submit(dv, tr, invocation, outcome)
                            message = (
                                f"derivation {dv.name!r} failed: "
                                f"{outcome.error}"
                            )
                        else:
                            # No invocation to commit, but the worker's
                            # telemetry (spans, stream tails) still
                            # merges — failed steps are exactly the
                            # ones whose trace matters.
                            collector.submit(dv, tr, None, outcome)
                            message = outcome.error or (
                                f"derivation {dv.name!r} failed"
                            )
                        failures[name] = ExecutionError(message)
                        skipped.update(self._downstream_of(plan, name))
                        self._note_step(name, None, "failure")
                self._obs_in_flight(len(futures))
                if policy == FAIL_FAST and failures and not futures:
                    break
                if (
                    policy == RUN_WHAT_YOU_CAN
                    and not futures
                    and not any(
                        name not in skipped and name not in failures
                        for name in frontier.ready()
                    )
                ):
                    break
        finally:
            pool.shutdown(wait=True)
            collector.close()
            self._obs_in_flight(0)
        if collector.failure is not None:
            raise collector.failure
        for name in sorted(skipped, key=order_index.__getitem__):
            if self.obs.progress is not None:
                self.obs.progress.step_finished(name, "skipped")
            if self.obs.recorder is not None:
                self.obs.recorder.event(
                    "step.skipped", step=name, reason="upstream failure"
                )
        invocations = [
            completed[name]
            for name in sorted(completed, key=order_index.__getitem__)
        ]
        if failures:
            first = min(failures, key=order_index.__getitem__)
            if policy == FAIL_FAST:
                raise failures[first]
            raise MaterializationError(
                f"{len(failures)} step(s) failed "
                f"({', '.join(sorted(failures))}); "
                f"{len(skipped)} skipped downstream",
                invocations=invocations,
                failed=failures,
                skipped=skipped,
            ) from failures[first]
        return invocations

    def _build_payload(self, step):
        """Build the picklable payload for one plan step (parent side).

        Performs the same pre-run checks as the in-process path —
        compound transformations are refused and inputs must already be
        materialized — so scheduling semantics match the thread
        backend exactly.
        """
        from repro.executor.process import InvocationPayload

        dv = step.derivation
        tr = self.catalog.get_transformation(dv.transformation.name)
        if not isinstance(tr, SimpleTransformation):
            raise ExecutionError(
                f"local executor runs simple transformations only; "
                f"{tr.name!r} is compound (plan it first)"
            )
        values, input_paths, output_paths, parameters = self._bind(dv, tr)
        for formal, path in input_paths.items():
            if not path.exists():
                raise ExecutionError(
                    f"derivation {dv.name!r}: input {formal!r} "
                    f"({path.name}) is not materialized"
                )
        argv = tr.command_line(values)
        environment = {
            **dict(dv.environment),
            **tr.rendered_environment(values),
        }
        streams = {}
        for stream_name, rendered in tr.stream_redirects(values).items():
            path = Path(rendered)
            if not path.is_absolute():
                path = self.workdir / rendered.replace("/", "_")
            streams[stream_name] = str(path)
        output_datasets = {}
        for formal, path in output_paths.items():
            actual = dv.actuals.get(formal)
            output_datasets[formal] = (
                actual.dataset if hasattr(actual, "dataset") else path.name
            )
        payload = InvocationPayload(
            step_name=step.name,
            derivation_name=dv.name,
            executable=tr.executable,
            argv=tuple(argv),
            environment=environment,
            workdir=str(self.workdir),
            input_paths={k: str(v) for k, v in input_paths.items()},
            output_paths={k: str(v) for k, v in output_paths.items()},
            output_datasets=output_datasets,
            parameters=dict(parameters),
            streams=streams,
            body=self._bodies.get(tr.executable),
        )
        return payload, dv, tr

    def _outcome_invocation(self, dv, tr, payload, outcome) -> Invocation:
        """Materialize a worker outcome as an Invocation record.

        Allocation happens parent-side (ids, recipe stamp) so workers
        stay free of catalog concerns; field population mirrors
        ``_execute``'s in-process construction.
        """
        invocation = Invocation(
            derivation_name=dv.name,
            status=outcome.status,
            start_time=outcome.started,
            context=ExecutionContext.make(
                site=self.site_name,
                host=platform.node() or "localhost",
                os=platform.system().lower() or "linux",
                processor=platform.machine() or "x86_64",
                environment=dict(payload.environment),
            ),
            usage=ResourceUsage(
                cpu_seconds=outcome.wall_seconds,
                wall_seconds=outcome.wall_seconds,
                bytes_read=outcome.bytes_read,
                bytes_written=outcome.bytes_written,
            ),
            exit_code=outcome.exit_code,
            error=outcome.error,
        )
        stamp_recipe(invocation, dv, tr)
        return invocation

    def _commit_outcome(self, dv, tr, invocation, outcome) -> None:
        """Write one worker outcome's provenance (collector thread only).

        The single-writer twin of ``_execute``'s commit block: output
        replicas (digests already computed in the worker), materialized
        dataset records and the invocation land in one catalog
        transaction, or not at all.
        """
        with self.catalog.transaction(label=f"invocation:{dv.name}"):
            if invocation.status == "success":
                for formal, stat in sorted(outcome.outputs.items()):
                    actual = dv.actuals.get(formal)
                    dataset_name = (
                        actual.dataset
                        if hasattr(actual, "dataset")
                        else Path(stat.path).name
                    )
                    crashpoint("executor.stage-out")
                    replica = Replica(
                        dataset_name=dataset_name,
                        location=self.site_name,
                        descriptor=FileDescriptor(
                            path=stat.path, size=stat.size
                        ),
                        size=stat.size,
                        digest=stat.digest,
                    )
                    self.catalog.add_replica(replica)
                    invocation.replica_bindings[formal] = replica.replica_id
                    if self.catalog.has_dataset(dataset_name):
                        ds = self.catalog.get_dataset(dataset_name)
                    else:
                        ds = Dataset(name=dataset_name)
                    self.catalog.add_dataset(
                        ds.materialized(
                            FileDescriptor(path=stat.path, size=stat.size)
                        ),
                        replace=True,
                    )
                    self._verified[stat.path] = (stat.size, stat.mtime_ns)
            self.catalog.add_invocation(invocation)
        crashpoint("executor.post-commit")
        if self.obs.recorder is not None:
            self.obs.recorder.invocation(invocation)

    def _merge_worker_telemetry(self, outcome, parent=None) -> None:
        """Graft one worker's shipped telemetry into the parent's obs.

        Called from the collector thread, so all merges are serialized
        and land in dispatch-completion order.  Clock-skew alignment:
        worker span times are offsets from the worker's
        ``perf_counter`` base, whose epoch differs per process.  The
        worker ships ``wall0`` (its ``time.time()`` at that base);
        wall clocks agree across processes on one host, so
        ``wall0 + offset`` is an absolute wall timestamp, and adding
        this process's ``perf_counter() - time.time()`` delta rebases
        it into the parent's ``perf_counter`` domain — the clock every
        parent span already uses.
        """
        telemetry = getattr(outcome, "telemetry", None)
        if telemetry is None or not self.obs.enabled:
            return
        delta = time.perf_counter() - time.time()
        lane = f"worker-{telemetry.pid}"
        grafted: list = []
        for spec in telemetry.spans:
            if spec.parent is not None and spec.parent < len(grafted):
                span_parent = grafted[spec.parent]
            else:
                # Worker-side roots hang off the dispatching
                # materialize span, keeping the run a single tree.
                span_parent = parent
            attributes = dict(spec.attributes)
            attributes.setdefault("worker_pid", telemetry.pid)
            grafted.append(
                self.obs.tracer.graft(
                    spec.name,
                    telemetry.wall0 + spec.start + delta,
                    telemetry.wall0 + spec.end + delta,
                    parent=span_parent,
                    status=spec.status,
                    error=spec.error,
                    thread=lane,
                    **attributes,
                )
            )
        for metric in telemetry.metrics:
            if metric.kind == "counter":
                self.obs.count(
                    metric.name,
                    metric.value,
                    help=metric.help,
                    **metric.labels,
                )
            else:
                self.obs.observe(
                    metric.name,
                    metric.value,
                    help=metric.help,
                    **metric.labels,
                )
        if self.obs.recorder is not None:
            for event in telemetry.events:
                fields = {
                    k: v for k, v in event.items() if k != "name"
                }
                self.obs.recorder.event(
                    event.get("name", "worker.event"),
                    worker_pid=telemetry.pid,
                    **fields,
                )
            for stream in ("stdout", "stderr"):
                tail = getattr(telemetry, f"{stream}_tail")
                if tail:
                    self.obs.recorder.event(
                        "worker.stream_tail",
                        worker_pid=telemetry.pid,
                        stream=stream,
                        derivation=outcome.derivation_name,
                        tail=tail,
                    )

    def _execute_step_locked(self, step, parent=None) -> Invocation:
        """Run one plan step holding its output-dataset locks.

        Producer→consumer ordering is already enforced by the frontier,
        so inputs are stable once a step dispatches; the only sandbox
        race left is two steps writing the same file (e.g. LFNs that
        collide after path sanitization).  Locks are taken in sorted
        order so overlapping lock sets cannot deadlock.

        ``parent`` is the dispatching thread's ``executor.materialize``
        span: pool threads start with an empty context-local span
        stack, so the parent is adopted explicitly here to keep every
        ``executor.execute`` span nested under the materialize span
        rather than becoming a root.
        """
        names = sorted(set(step.outputs))
        locks = []
        with self._dataset_locks_guard:
            for dataset in names:
                locks.append(
                    self._dataset_locks.setdefault(dataset, threading.Lock())
                )
        for lock in locks:
            lock.acquire()
        try:
            with self.obs.adopt(parent):
                return self.execute(step.derivation)
        finally:
            for lock in reversed(locks):
                lock.release()

    def _note_step(
        self, name: str, invocation: Optional[Invocation], status: str
    ) -> None:
        """Publish one finished step to the recorder and progress sink."""
        if self.obs.recorder is not None:
            if invocation is not None:
                start = invocation.start_time
                end = start + invocation.usage.wall_seconds
            else:
                start = end = time.time()
            self.obs.recorder.step(
                name,
                status=status,
                start=start,
                end=end,
                clock="wall",
                site=self.site_name,
            )
        if self.obs.progress is not None:
            self.obs.progress.step_finished(
                name, "ok" if status == "success" else "failed"
            )

    def _sample_frontier(
        self, frontier, futures, completed, total: int
    ) -> None:
        if self.obs.recorder is not None:
            self.obs.recorder.sample(
                ready=frontier.ready_count(),
                in_flight=len(futures),
                completed=len(completed),
                total=total,
            )

    def _obs_in_flight(self, count: int) -> None:
        if self.obs.enabled:
            self.obs.gauge(
                "executor.pool.in_flight",
                count,
                help="plan steps currently running in the local pool",
            )

    @staticmethod
    def _downstream_of(plan, name: str) -> set[str]:
        """Transitive dependents of ``name`` in the plan DAG.

        Uses the plan's memoized frontier shape instead of re-deriving
        the dependents map — a failure storm on a 10^5-step plan used
        to pay O(edges) per failed step just to find what to skip.
        """
        dependents = plan.frontier_shape()[1]
        out: set[str] = set()
        stack = [name]
        while stack:
            for child in dependents.get(stack.pop(), ()):
                if child not in out:
                    out.add(child)
                    stack.append(child)
        return out


class _ProvenanceCollector:
    """The process backend's single catalog writer.

    Worker processes compute; this thread records.  Outcomes are
    committed strictly in submission order (a FIFO queue), and the main
    thread only submits a step's outcome before releasing its
    dependents, so upstream provenance is always durable before
    anything downstream commits — the same invariant the sequential
    path gets for free.  Invocation metrics are also counted here so
    the counters observed after a run match the thread backend's
    exactly.
    """

    def __init__(self, executor: LocalExecutor, parent=None):
        self._executor = executor
        #: The dispatching ``executor.materialize`` span — worker-side
        #: root spans are grafted under it at merge time.
        self._parent = parent
        self._queue: queue.Queue = queue.Queue()
        self._thread = threading.Thread(
            target=self._run, name="provenance-collector", daemon=True
        )
        #: First exception raised while committing, if any; the main
        #: scheduling loop re-raises it.
        self.failure: Optional[BaseException] = None
        self.committed = 0

    def start(self) -> None:
        self._thread.start()

    def submit(self, dv, tr, invocation, outcome) -> None:
        """Queue one finished step.  ``invocation=None`` records
        nothing and only counts a failure (pre-run refusals)."""
        self._queue.put((dv, tr, invocation, outcome))

    def close(self) -> None:
        """Drain the queue and stop the thread."""
        self._queue.put(None)
        self._thread.join()

    def _run(self) -> None:
        executor = self._executor
        while True:
            item = self._queue.get()
            if item is None:
                return
            if self.failure is not None:
                continue  # drain without committing after a failure
            dv, tr, invocation, outcome = item
            try:
                if invocation is not None:
                    executor._commit_outcome(dv, tr, invocation, outcome)
                    self.committed += 1
                if outcome is not None:
                    executor._merge_worker_telemetry(
                        outcome, self._parent
                    )
                if executor.obs.enabled:
                    status = (
                        invocation.status
                        if invocation is not None
                        and invocation.status == "success"
                        else "failure"
                    )
                    executor.obs.count(
                        "executor.invocations",
                        status=status,
                        help="local executions by terminal status",
                    )
                    if invocation is not None and status == "success":
                        executor.obs.observe(
                            "executor.invocation.seconds",
                            invocation.usage.wall_seconds,
                            help="wall time per local derivation",
                        )
                        executor.obs.count(
                            "executor.bytes_written",
                            invocation.usage.bytes_written,
                            help="output bytes produced locally",
                        )
            except BaseException as exc:
                self.failure = exc


class _maybe_open:
    """Context manager: open a path or yield None."""

    def __init__(self, path: Optional[Path], mode: str):
        self._path = path
        self._mode = mode
        self._handle = None

    def __enter__(self):
        if self._path is None:
            return None
        self._handle = open(self._path, self._mode)
        return self._handle

    def __exit__(self, *exc_info):
        if self._handle is not None:
            self._handle.close()
