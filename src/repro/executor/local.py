"""Local execution of transformations with full provenance capture.

This executor actually runs transformations — as registered Python
callables or real subprocesses — against a sandbox directory, and
records what the schema demands: an
:class:`~repro.core.invocation.Invocation` with timing, environment and
resource usage; :class:`~repro.core.replica.Replica` records with
content digests for every output; and materialized dataset descriptors.

It is the "interactive environment" execution path of §5: "a user could
trigger the invocation of a derivation, and ... this mechanism would
run with low overhead and with response time that is as rapid as the
speed of the transformation itself."
"""

from __future__ import annotations

import os
import platform
import subprocess
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from pathlib import Path
from typing import Callable, Optional

from repro.catalog.base import VirtualDataCatalog
from repro.core.dataset import Dataset
from repro.core.derivation import Derivation
from repro.core.descriptors import FileDescriptor
from repro.core.invocation import ExecutionContext, Invocation, ResourceUsage
from repro.core.recipe import stamp_recipe
from repro.core.replica import Replica
from repro.core.transformation import SimpleTransformation
from repro.durability.checksum import file_digest, verify_file
from repro.durability.crashpoints import crashpoint
from repro.durability.recovery import sandbox_filename
from repro.errors import ExecutionError, MaterializationError
from repro.observability.instrument import NULL, Instrumentation
from repro.planner.dag import Planner
from repro.planner.request import MaterializationRequest
from repro.resilience.policies import (
    FAIL_FAST,
    FAILURE_POLICIES,
    RUN_WHAT_YOU_CAN,
)


class RunContext:
    """Everything a registered Python transformation body receives."""

    def __init__(
        self,
        workdir: Path,
        argv: tuple[str, ...],
        environment: dict[str, str],
        input_paths: dict[str, Path],
        output_paths: dict[str, Path],
        parameters: dict[str, str],
        streams: dict[str, Path],
    ):
        self.workdir = workdir
        self.argv = argv
        self.environment = environment
        self.input_paths = input_paths
        self.output_paths = output_paths
        self.parameters = parameters
        self.streams = streams

    def read_input(self, formal: str) -> bytes:
        """Read the full contents of the input bound to ``formal``."""
        return self.input_paths[formal].read_bytes()

    def write_output(self, formal: str, data: bytes | str) -> None:
        """Write the output bound to ``formal``."""
        path = self.output_paths[formal]
        if isinstance(data, str):
            data = data.encode()
        path.write_bytes(data)


#: A registered transformation body: receives the context, returns
#: nothing; raises to signal failure.
TransformationBody = Callable[[RunContext], None]


class LocalExecutor:
    """Runs derivations in a sandbox directory, recording provenance."""

    def __init__(
        self,
        catalog: VirtualDataCatalog,
        workdir: str | Path,
        site_name: str = "local",
        instrumentation: Optional[Instrumentation] = None,
        quarantine_dir: Optional[str | Path] = None,
    ):
        self.catalog = catalog
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.site_name = site_name
        self.quarantine_dir = (
            Path(quarantine_dir)
            if quarantine_dir
            else self.workdir / "quarantine"
        )
        # Sandbox files verified against their replica checksum, keyed
        # by path with the (size, mtime_ns) stamp seen at verification;
        # lets verify-on-consume cost one stat, not one hash, per reuse.
        self._verified: dict[str, tuple[int, int]] = {}
        self.obs = instrumentation or NULL
        if self.obs.enabled and not self.catalog.obs.enabled:
            # Adopt the catalog into this executor's observability
            # scope unless it already has its own.
            self.catalog.obs = self.obs
        self._bodies: dict[str, TransformationBody] = {}
        # Per-dataset sandbox locks for the parallel engine.
        self._dataset_locks: dict[str, threading.Lock] = {}
        self._dataset_locks_guard = threading.Lock()

    # -- registration ---------------------------------------------------------

    def register(self, executable: str, body: TransformationBody) -> None:
        """Bind a Python callable to an executable path.

        When a transformation's ``exec`` matches a registered path the
        callable runs instead of a real subprocess, which is how test
        and example pipelines execute hermetically.
        """
        self._bodies[executable] = body

    def path_for(self, dataset_name: str) -> Path:
        """Sandbox path holding (or destined to hold) a dataset."""
        return self.workdir / sandbox_filename(dataset_name)

    def is_materialized(self, dataset_name: str) -> bool:
        return self.path_for(dataset_name).exists()

    def has_valid_replica(self, dataset_name: str) -> bool:
        """Whether a sandbox copy exists *and* matches its checksum.

        The planner's ``has_replica`` oracle: existence alone is not
        enough once replicas carry content digests — a file that rotted
        (or was half-written when the process died) must not satisfy
        reuse.  On a mismatch the copy is quarantined, its replica
        record removed, and its downstream provenance invalidated, so
        planning transparently re-derives from the recipe.

        Files without a replica record (user-staged sources) verify
        trivially, and clean verifications are cached against the
        file's (size, mtime_ns) so steady-state reuse costs one
        ``stat``, not one hash.
        """
        path = self.path_for(dataset_name)
        if not path.exists():
            return False
        matching = [
            replica
            for replica in self.catalog.replicas_of(dataset_name)
            if isinstance(replica.descriptor, FileDescriptor)
            and replica.descriptor.path == str(path)
        ]
        if not matching:
            return True
        stat = path.stat()
        stamp = (stat.st_size, stat.st_mtime_ns)
        if self._verified.get(str(path)) == stamp:
            return True
        for replica in matching:
            if not verify_file(path, size=replica.size, digest=replica.digest):
                self._quarantine_corrupt(dataset_name, replica, path)
                return False
        self._verified[str(path)] = stamp
        return True

    def _quarantine_corrupt(self, dataset_name, replica, path: Path) -> None:
        """Sideline a checksum-mismatched sandbox file and its records."""
        if self.obs.enabled:
            self.obs.count(
                "durability.checksum.failures",
                help="replica checksum/size verification failures",
            )
        from repro.provenance.graph import DerivationGraph
        from repro.provenance.invalidation import invalidated_by

        graph = DerivationGraph.from_catalog(self.catalog)
        tainted = invalidated_by(
            graph, bad_datasets=[dataset_name]
        ).tainted_datasets
        with self.catalog.transaction(label=f"quarantine:{dataset_name}"):
            for name in sorted({dataset_name, *tainted}):
                target = self.path_for(name)
                if name != dataset_name and not target.exists():
                    continue
                for rep in self.catalog.replicas_of(name):
                    if (
                        isinstance(rep.descriptor, FileDescriptor)
                        and rep.descriptor.path == str(target)
                    ):
                        self.catalog.remove_replica(rep.replica_id)
                if target.exists():
                    self._move_to_quarantine(target)
                self._verified.pop(str(target), None)
                if self.catalog.has_dataset(name):
                    ds = self.catalog.get_dataset(name)
                    if not ds.is_virtual:
                        self.catalog.add_dataset(
                            Dataset(
                                name=ds.name,
                                dataset_type=ds.dataset_type,
                                attributes=ds.attributes.copy(),
                                producer=ds.producer,
                            ),
                            replace=True,
                        )
        if self.obs.recorder is not None:
            self.obs.recorder.event(
                "replica.quarantined",
                dataset=dataset_name,
                replica=replica.replica_id,
                tainted=sorted(tainted),
            )

    def _move_to_quarantine(self, path: Path) -> Path:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        ordinal = 0
        while target.exists():
            ordinal += 1
            target = self.quarantine_dir / f"{path.name}.{ordinal}"
        os.replace(path, target)
        return target

    # -- execution ---------------------------------------------------------------

    def execute(self, dv: Derivation | str) -> Invocation:
        """Run one derivation now; returns the recorded invocation.

        Inputs must already be materialized in the sandbox.  On
        success, output datasets get replicas (with sha256 digests) and
        file descriptors registered in the catalog.
        """
        name = dv if isinstance(dv, str) else dv.name
        with self.obs.span("executor.execute", derivation=name):
            try:
                invocation = self._execute(dv)
            except ExecutionError:
                if self.obs.enabled:
                    self.obs.count(
                        "executor.invocations",
                        status="failure",
                        help="local executions by terminal status",
                    )
                raise
            if self.obs.enabled:
                self.obs.count(
                    "executor.invocations",
                    status=invocation.status,
                    help="local executions by terminal status",
                )
                self.obs.observe(
                    "executor.invocation.seconds",
                    invocation.usage.wall_seconds,
                    help="wall time per local derivation",
                )
                self.obs.count(
                    "executor.bytes_written",
                    invocation.usage.bytes_written,
                    help="output bytes produced locally",
                )
            return invocation

    def _execute(self, dv: Derivation | str) -> Invocation:
        if isinstance(dv, str):
            dv = self.catalog.get_derivation(dv)
        tr = self.catalog.get_transformation(dv.transformation.name)
        if not isinstance(tr, SimpleTransformation):
            raise ExecutionError(
                f"local executor runs simple transformations only; "
                f"{tr.name!r} is compound (plan it first)"
            )
        values, input_paths, output_paths, parameters = self._bind(dv, tr)
        for formal, path in input_paths.items():
            if not path.exists():
                raise ExecutionError(
                    f"derivation {dv.name!r}: input {formal!r} "
                    f"({path.name}) is not materialized"
                )
        argv = tr.command_line(values)
        environment = {**dict(dv.environment), **tr.rendered_environment(values)}
        streams = {}
        for stream_name, rendered in tr.stream_redirects(values).items():
            path = Path(rendered)
            if not path.is_absolute():
                # A bare LFN (e.g. a string default): sandbox it.
                path = self.workdir / rendered.replace("/", "_")
            streams[stream_name] = path
        context = RunContext(
            workdir=self.workdir,
            argv=argv,
            environment=environment,
            input_paths=input_paths,
            output_paths=output_paths,
            parameters=parameters,
            streams=streams,
        )
        started = time.time()
        clock0 = time.perf_counter()
        error: Optional[str] = None
        exit_code = 0
        try:
            self._run_body(tr, context)
        except ExecutionError:
            raise
        except Exception as exc:  # body failures become failed invocations
            error = f"{type(exc).__name__}: {exc}"
            exit_code = 1
        elapsed = time.perf_counter() - clock0
        bytes_read = sum(
            p.stat().st_size for p in input_paths.values() if p.exists()
        )
        bytes_written = sum(
            p.stat().st_size for p in output_paths.values() if p.exists()
        )
        invocation = Invocation(
            derivation_name=dv.name,
            status="success" if error is None else "failure",
            start_time=started,
            context=ExecutionContext.make(
                site=self.site_name,
                host=platform.node() or "localhost",
                os=platform.system().lower() or "linux",
                processor=platform.machine() or "x86_64",
                environment=environment,
            ),
            usage=ResourceUsage(
                cpu_seconds=elapsed,
                wall_seconds=elapsed,
                bytes_read=bytes_read,
                bytes_written=bytes_written,
            ),
            exit_code=exit_code,
            error=error,
        )
        stamp_recipe(invocation, dv, tr)
        # One atomic provenance commit: output replicas, materialized
        # dataset records and the invocation land together or not at
        # all.  A kill inside this window leaves either a rollback-able
        # journal/backend transaction or nothing — never a replica
        # without its invocation.
        with self.catalog.transaction(label=f"invocation:{dv.name}"):
            if error is None:
                self._record_outputs(dv, invocation, output_paths)
            self.catalog.add_invocation(invocation)
        crashpoint("executor.post-commit")
        if self.obs.recorder is not None:
            self.obs.recorder.invocation(invocation)
        if error is not None:
            raise ExecutionError(
                f"derivation {dv.name!r} failed: {error}"
            )
        return invocation

    def _bind(self, dv: Derivation, tr: SimpleTransformation):
        values: dict[str, str] = {}
        input_paths: dict[str, Path] = {}
        output_paths: dict[str, Path] = {}
        parameters: dict[str, str] = {}
        for formal in tr.signature.formals:
            actual = dv.actuals.get(formal.name, formal.default)
            if actual is None:
                raise ExecutionError(
                    f"derivation {dv.name!r}: formal {formal.name!r} unbound"
                )
            if isinstance(actual, str):
                values[formal.name] = actual
                if formal.is_string:
                    parameters[formal.name] = actual
                else:
                    # Dataset formal bound via default LFN string.
                    path = self.path_for(actual)
                    if formal.is_input:
                        input_paths[formal.name] = path
                    if formal.is_output:
                        output_paths[formal.name] = path
                    values[formal.name] = str(path)
            else:
                path = self.path_for(actual.dataset)
                values[formal.name] = str(path)
                if actual.is_input:
                    input_paths[formal.name] = path
                if actual.is_output:
                    output_paths[formal.name] = path
        return values, input_paths, output_paths, parameters

    def _run_body(self, tr: SimpleTransformation, context: RunContext) -> None:
        body = self._bodies.get(tr.executable)
        if body is not None:
            body(context)
            return
        if not os.path.exists(tr.executable):
            raise ExecutionError(
                f"executable {tr.executable!r} does not exist and no "
                f"Python body is registered for it"
            )
        stdin_path = context.streams.get("stdin")
        stdout_path = context.streams.get("stdout")
        stderr_path = context.streams.get("stderr")
        # VDL argument statements are text fragments of the command
        # line; a real invocation splits them into words the way a
        # shell would (Chimera's POSIX execution model).
        import shlex

        words = shlex.split(" ".join(context.argv))
        with _maybe_open(stdin_path, "rb") as stdin, _maybe_open(
            stdout_path, "wb"
        ) as stdout, _maybe_open(stderr_path, "wb") as stderr:
            completed = subprocess.run(
                [tr.executable, *words],
                stdin=stdin,
                stdout=stdout,
                stderr=stderr,
                env={**os.environ, **context.environment},
                cwd=context.workdir,
                check=False,
            )
        if completed.returncode != 0:
            raise RuntimeError(
                f"{tr.executable} exited with {completed.returncode}"
            )

    def _record_outputs(
        self,
        dv: Derivation,
        invocation: Invocation,
        output_paths: dict[str, Path],
    ) -> None:
        for formal, path in output_paths.items():
            actual = dv.actuals.get(formal)
            dataset_name = (
                actual.dataset if hasattr(actual, "dataset") else path.name
            )
            if not path.exists():
                raise ExecutionError(
                    f"derivation {dv.name!r} succeeded but output "
                    f"{dataset_name!r} was not written"
                )
            size = path.stat().st_size
            digest = file_digest(path)
            crashpoint("executor.stage-out")
            replica = Replica(
                dataset_name=dataset_name,
                location=self.site_name,
                descriptor=FileDescriptor(path=str(path), size=size),
                size=size,
                digest=digest,
            )
            self.catalog.add_replica(replica)
            invocation.replica_bindings[formal] = replica.replica_id
            if self.catalog.has_dataset(dataset_name):
                ds = self.catalog.get_dataset(dataset_name)
            else:
                ds = Dataset(name=dataset_name)
            self.catalog.add_dataset(
                ds.materialized(FileDescriptor(path=str(path), size=size)),
                replace=True,
            )
            stat = path.stat()
            self._verified[str(path)] = (stat.st_size, stat.st_mtime_ns)

    # -- end-to-end materialization ------------------------------------------------

    def materialize(
        self,
        target: str,
        reuse: str = "always",
        workers: int = 1,
        failure_policy: Optional[str] = None,
    ) -> list[Invocation]:
        """Plan and execute everything needed to produce ``target``.

        Existing sandbox files count as replicas for the reuse policy.
        Returns the invocations performed, ordered by the plan's
        topological order (which for ``workers=1`` is execution order).

        ``workers`` sizes a thread pool that dispatches the entire
        ready frontier concurrently (§5.4's workflow manager dispatches
        "nodes of the workflow graph when the node's predecessor
        dependencies have completed").  ``failure_policy`` is one of
        the PR-3 policies: ``"fail-fast"`` (default) stops dispatching
        on the first failure and re-raises it once in-flight steps
        drain; ``"run-what-you-can"`` keeps executing steps outside the
        failed subtree and raises
        :class:`~repro.errors.MaterializationError` at the end.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        policy = failure_policy or FAIL_FAST
        if policy not in FAILURE_POLICIES:
            raise ValueError(
                f"unknown failure policy {policy!r}; expected one of "
                f"{FAILURE_POLICIES}"
            )
        with self.obs.span(
            "executor.materialize", targets=target, workers=workers
        ) as mspan:
            planner = Planner(
                self.catalog,
                has_replica=self.has_valid_replica,
                instrumentation=self.obs,
            )
            plan = planner.plan(
                MaterializationRequest(targets=(target,), reuse=reuse)
            )
            if self.obs.recorder is not None:
                self.obs.recorder.plan(plan)
            if self.obs.progress is not None:
                self.obs.progress.start_plan(plan)
            if workers == 1 and policy == FAIL_FAST:
                # Today's sequential path, unchanged.
                invocations = []
                for name in plan.topological_order():
                    if self.obs.progress is not None:
                        self.obs.progress.step_started(name)
                    try:
                        invocation = self.execute(
                            plan.steps[name].derivation
                        )
                    except ExecutionError:
                        self._note_step(name, None, "failure")
                        raise
                    invocations.append(invocation)
                    self._note_step(name, invocation, "success")
                return invocations
            return self._materialize_parallel(plan, workers, policy, mspan)

    def _materialize_parallel(
        self, plan, workers: int, policy: str, parent=None
    ) -> list[Invocation]:
        """Frontier-driven pool execution of a plan.

        The main thread owns all scheduling state (frontier, skip set,
        bookkeeping); worker threads only run :meth:`execute` — which
        takes per-output dataset locks so two steps can never write the
        same sandbox file concurrently — and the catalog serializes its
        own mutations.
        """
        order_index = {
            name: i for i, name in enumerate(plan.topological_order())
        }
        frontier = plan.frontier()
        completed: dict[str, Invocation] = {}
        failures: dict[str, ExecutionError] = {}
        skipped: set[str] = set()
        pool = ThreadPoolExecutor(max_workers=workers)
        futures: dict = {}  # future -> step name
        try:
            while True:
                if not (frontier.exhausted and not futures):
                    # Dispatch every ready step there is pool room for,
                    # in deterministic name order.
                    dispatchable = [
                        name
                        for name in frontier.ready()
                        if name not in futures.values()
                        and name not in skipped
                        and name not in failures
                    ]
                    stop_dispatch = policy == FAIL_FAST and failures
                    if not stop_dispatch:
                        for name in dispatchable:
                            step = plan.steps[name]
                            futures[
                                pool.submit(
                                    self._execute_step_locked, step, parent
                                )
                            ] = name
                            if self.obs.progress is not None:
                                self.obs.progress.step_started(name)
                        self._obs_in_flight(len(futures))
                self._sample_frontier(
                    frontier, futures, completed, len(plan.steps)
                )
                if not futures:
                    break
                done, _ = wait(
                    list(futures), return_when=FIRST_COMPLETED
                )
                for future in sorted(
                    done, key=lambda f: order_index[futures[f]]
                ):
                    name = futures.pop(future)
                    try:
                        completed[name] = future.result()
                    except ExecutionError as exc:
                        failures[name] = exc
                        skipped.update(self._downstream_of(plan, name))
                        self._note_step(name, None, "failure")
                    else:
                        frontier.complete(name)
                        self._note_step(name, completed[name], "success")
                self._obs_in_flight(len(futures))
                if policy == FAIL_FAST and failures and not futures:
                    break
                # Under run-what-you-can, steps downstream of a failure
                # never become ready; everything else keeps flowing.
                if (
                    policy == RUN_WHAT_YOU_CAN
                    and not futures
                    and not any(
                        name not in skipped and name not in failures
                        for name in frontier.ready()
                    )
                ):
                    break
        finally:
            pool.shutdown(wait=True)
            self._obs_in_flight(0)
        for name in sorted(skipped, key=order_index.__getitem__):
            if self.obs.progress is not None:
                self.obs.progress.step_finished(name, "skipped")
            if self.obs.recorder is not None:
                self.obs.recorder.event(
                    "step.skipped", step=name, reason="upstream failure"
                )
        invocations = [
            completed[name]
            for name in sorted(completed, key=order_index.__getitem__)
        ]
        if failures:
            first = min(failures, key=order_index.__getitem__)
            if policy == FAIL_FAST:
                raise failures[first]
            raise MaterializationError(
                f"{len(failures)} step(s) failed "
                f"({', '.join(sorted(failures))}); "
                f"{len(skipped)} skipped downstream",
                invocations=invocations,
                failed=failures,
                skipped=skipped,
            ) from failures[first]
        return invocations

    def _execute_step_locked(self, step, parent=None) -> Invocation:
        """Run one plan step holding its output-dataset locks.

        Producer→consumer ordering is already enforced by the frontier,
        so inputs are stable once a step dispatches; the only sandbox
        race left is two steps writing the same file (e.g. LFNs that
        collide after path sanitization).  Locks are taken in sorted
        order so overlapping lock sets cannot deadlock.

        ``parent`` is the dispatching thread's ``executor.materialize``
        span: pool threads start with an empty context-local span
        stack, so the parent is adopted explicitly here to keep every
        ``executor.execute`` span nested under the materialize span
        rather than becoming a root.
        """
        names = sorted(set(step.outputs))
        locks = []
        with self._dataset_locks_guard:
            for dataset in names:
                locks.append(
                    self._dataset_locks.setdefault(dataset, threading.Lock())
                )
        for lock in locks:
            lock.acquire()
        try:
            with self.obs.adopt(parent):
                return self.execute(step.derivation)
        finally:
            for lock in reversed(locks):
                lock.release()

    def _note_step(
        self, name: str, invocation: Optional[Invocation], status: str
    ) -> None:
        """Publish one finished step to the recorder and progress sink."""
        if self.obs.recorder is not None:
            if invocation is not None:
                start = invocation.start_time
                end = start + invocation.usage.wall_seconds
            else:
                start = end = time.time()
            self.obs.recorder.step(
                name,
                status=status,
                start=start,
                end=end,
                clock="wall",
                site=self.site_name,
            )
        if self.obs.progress is not None:
            self.obs.progress.step_finished(
                name, "ok" if status == "success" else "failed"
            )

    def _sample_frontier(
        self, frontier, futures, completed, total: int
    ) -> None:
        if self.obs.recorder is not None:
            self.obs.recorder.sample(
                ready=frontier.ready_count(),
                in_flight=len(futures),
                completed=len(completed),
                total=total,
            )

    def _obs_in_flight(self, count: int) -> None:
        if self.obs.enabled:
            self.obs.gauge(
                "executor.pool.in_flight",
                count,
                help="plan steps currently running in the local pool",
            )

    @staticmethod
    def _downstream_of(plan, name: str) -> set[str]:
        """Transitive dependents of ``name`` in the plan DAG."""
        dependents: dict[str, set[str]] = {}
        for step, deps in plan.dependencies.items():
            for dep in deps:
                dependents.setdefault(dep, set()).add(step)
        out: set[str] = set()
        stack = [name]
        while stack:
            for child in dependents.get(stack.pop(), ()):
                if child not in out:
                    out.add(child)
                    stack.append(child)
        return out


class _maybe_open:
    """Context manager: open a path or yield None."""

    def __init__(self, path: Optional[Path], mode: str):
        self._path = path
        self._mode = mode
        self._handle = None

    def __enter__(self):
        if self._path is None:
            return None
        self._handle = open(self._path, self._mode)
        return self._handle

    def __exit__(self, *exc_info):
        if self._handle is not None:
            self._handle.close()
