"""Execution monitoring: a structured event log.

The workflow layer "monitors their completion" (§5.4); this module
provides the small observable used by examples and tests to watch a
run without coupling to executor internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class Event:
    """One timestamped execution event."""

    time: float
    kind: str
    subject: str
    detail: dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Collects events and fans them out to listeners."""

    def __init__(self):
        self._events: list[Event] = []
        self._listeners: list[Callable[[Event], None]] = []

    def emit(
        self,
        time: float,
        kind: str,
        subject: str,
        **detail: Any,
    ) -> Event:
        """Record an event and notify listeners."""
        event = Event(time=time, kind=kind, subject=subject, detail=detail)
        self._events.append(event)
        for listener in self._listeners:
            listener(event)
        return event

    def listen(self, listener: Callable[[Event], None]) -> None:
        self._listeners.append(listener)

    def events(self, kind: Optional[str] = None) -> list[Event]:
        """All events, optionally filtered by kind, in emit order."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def subjects(self, kind: str) -> list[str]:
        return [e.subject for e in self._events if e.kind == kind]

    def __len__(self) -> int:
        return len(self._events)
