"""Execution monitoring: a structured event log.

The workflow layer "monitors their completion" (§5.4); this module
provides the small observable used by examples and tests to watch a
run without coupling to executor internals.

Two robustness properties hold by construction:

* a raising listener can never break the run or starve later
  listeners — the exception is recorded as a ``listener-error`` event
  and delivery continues;
* an optional ``max_events`` bound gives the log ring-buffer
  semantics so long simulated runs cannot grow memory without limit
  (the default remains unbounded).

When built with an :class:`~repro.observability.Instrumentation`,
every emitted event is also bridged into the active tracing span (as
a span event) and counted in the metrics registry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.observability.instrument import NULL, Instrumentation


@dataclass(frozen=True)
class Event:
    """One timestamped execution event."""

    time: float
    kind: str
    subject: str
    detail: dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Collects events and fans them out to listeners.

    ``max_events`` bounds retention (oldest events are dropped first);
    listener delivery and the instrumentation bridge always see every
    event regardless of retention.
    """

    def __init__(
        self,
        max_events: Optional[int] = None,
        instrumentation: Optional[Instrumentation] = None,
    ):
        if max_events is not None and max_events <= 0:
            raise ValueError("max_events must be positive (or None)")
        self.max_events = max_events
        self.obs = instrumentation or NULL
        self._events: deque[Event] = deque(maxlen=max_events)
        self._listeners: list[Callable[[Event], None]] = []
        self._dropped = 0

    @property
    def dropped(self) -> int:
        """Events discarded by the ring buffer so far."""
        return self._dropped

    def emit(
        self,
        time: float,
        kind: str,
        subject: str,
        **detail: Any,
    ) -> Event:
        """Record an event and notify listeners.

        Listener exceptions are isolated: each failure is appended to
        the log as a ``listener-error`` event (not re-delivered, to
        keep one broken listener from cascading) and remaining
        listeners still run.
        """
        event = Event(time=time, kind=kind, subject=subject, detail=detail)
        self._append(event)
        if self.obs.enabled:
            self.obs.event(kind, subject=subject, **detail)
            self.obs.count("events.emitted", kind=kind)
        for listener in list(self._listeners):
            try:
                listener(event)
            except Exception as exc:
                self._append(
                    Event(
                        time=time,
                        kind="listener-error",
                        subject=kind,
                        detail={
                            "listener": getattr(
                                listener, "__qualname__", repr(listener)
                            ),
                            "error": f"{type(exc).__name__}: {exc}",
                        },
                    )
                )
                if self.obs.enabled:
                    self.obs.count("events.listener_errors", kind=kind)
        return event

    def _append(self, event: Event) -> None:
        if (
            self._events.maxlen is not None
            and len(self._events) == self._events.maxlen
        ):
            self._dropped += 1
        self._events.append(event)

    def listen(self, listener: Callable[[Event], None]) -> None:
        self._listeners.append(listener)

    def unlisten(self, listener: Callable[[Event], None]) -> None:
        self._listeners.remove(listener)

    def events(self, kind: Optional[str] = None) -> list[Event]:
        """All retained events, optionally filtered by kind, in order."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def subjects(self, kind: str) -> list[str]:
        return [e.subject for e in self._events if e.kind == kind]

    def __len__(self) -> int:
        return len(self._events)
