"""Derivation execution: local sandbox runs and grid workflow runs (§5.4)."""

from repro.executor.events import Event, EventLog
from repro.executor.grid_executor import GridExecutor
from repro.executor.local import LocalExecutor, RunContext, TransformationBody
from repro.executor.session import InteractiveSession, SessionEntry

__all__ = [
    "Event",
    "EventLog",
    "GridExecutor",
    "InteractiveSession",
    "LocalExecutor",
    "RunContext",
    "SessionEntry",
    "TransformationBody",
]
