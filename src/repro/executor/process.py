"""Process-pool execution primitives: escape the GIL for CPU-bound steps.

Thread workers share one interpreter, so a Python transformation body
that computes (rather than waits) serializes on the GIL and ``workers=N``
buys nothing.  The process backend runs bodies in worker *processes*:

- The parent builds one :class:`InvocationPayload` per plan step at
  dispatch time — a picklable, self-contained description of the run
  (argv, environment, bound paths, streams, and the registered body, if
  any).  Workers never see the catalog, the executor, or any lock.
- :func:`run_invocation` executes the payload in the worker and returns
  an :class:`InvocationOutcome`: status, timing, byte counts, and a
  content digest per output (hashing large outputs in the worker keeps
  the parent off the critical path).
- All provenance writeback happens parent-side through a single-writer
  collector thread (see ``LocalExecutor._materialize_process``), so
  catalog locks and transactions never cross a process boundary.

:func:`preflight_payload` pickles a payload *before* submission and, on
failure, re-pickles field by field so the error names the offending
field — typically a transformation body that is a lambda or closure
instead of a module-level function.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import time
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, Optional

from repro.errors import ExecutionError


@dataclass
class InvocationPayload:
    """Everything a worker process needs to run one plan step.

    Paths are plain strings (not ``Path``) and all mappings are plain
    dicts so the payload pickles compactly and identically across
    start methods.  ``body`` is the registered Python callable for the
    executable, or ``None`` to run a real subprocess.
    """

    step_name: str
    derivation_name: str
    executable: str
    argv: tuple[str, ...]
    environment: dict[str, str]
    workdir: str
    input_paths: dict[str, str]
    output_paths: dict[str, str]
    #: formal -> logical dataset name, for error messages that must
    #: match the in-process executor's wording exactly.
    output_datasets: dict[str, str]
    parameters: dict[str, str]
    streams: dict[str, str]
    body: Optional[Callable] = None


@dataclass
class OutputStat:
    """What the worker observed about one written output file."""

    path: str
    size: int
    digest: str
    mtime_ns: int


@dataclass
class InvocationOutcome:
    """A worker's report for one payload.

    ``commit=False`` marks failures the in-process executor would have
    raised *without* recording an invocation (missing executable,
    declared output never written): the collector must record nothing
    and the step fails with ``error`` as the message.  ``commit=True``
    failures are ordinary body failures and are recorded as failed
    invocations, exactly like the sequential path.
    """

    step_name: str
    derivation_name: str
    status: str
    commit: bool = True
    error: Optional[str] = None
    exit_code: int = 0
    started: float = 0.0
    wall_seconds: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    outputs: dict[str, OutputStat] = field(default_factory=dict)
    pid: int = 0


def preflight_payload(payload: InvocationPayload) -> bytes:
    """Pickle a payload, attributing failures to the offending field.

    Raises :class:`ExecutionError` naming the unpicklable field so a
    lambda body (the common mistake) produces an actionable message
    instead of a raw ``PicklingError`` from pool internals.
    """
    try:
        return pickle.dumps(payload)
    except Exception as exc:
        for f in fields(payload):
            try:
                pickle.dumps(getattr(payload, f.name))
            except Exception as field_exc:
                hint = ""
                if f.name == "body":
                    hint = (
                        "; the process backend requires registered "
                        "transformation bodies to be module-level "
                        "functions (lambdas and closures cannot cross "
                        "a process boundary)"
                    )
                raise ExecutionError(
                    f"derivation {payload.derivation_name!r}: payload "
                    f"field {f.name!r} is not picklable "
                    f"({type(field_exc).__name__}: {field_exc}){hint}"
                ) from field_exc
        raise ExecutionError(
            f"derivation {payload.derivation_name!r}: payload is not "
            f"picklable ({type(exc).__name__}: {exc})"
        ) from exc


def run_invocation(payload: InvocationPayload) -> InvocationOutcome:
    """Execute one payload in a worker process.

    Mirrors ``LocalExecutor._execute``'s run phase: registered body or
    subprocess, body exceptions become failed outcomes, and output
    stats (size, sha256, mtime) are gathered here so the parent's
    collector can write provenance without re-reading output bytes.
    """
    # Imported here, not at module top: worker processes only need the
    # light pieces, and RunContext lives in the executor module.
    from repro.durability.checksum import file_digest
    from repro.executor.local import RunContext

    started = time.time()
    clock0 = time.perf_counter()
    outcome = InvocationOutcome(
        step_name=payload.step_name,
        derivation_name=payload.derivation_name,
        status="success",
        started=started,
        pid=os.getpid(),
    )
    input_paths = {k: Path(v) for k, v in payload.input_paths.items()}
    output_paths = {k: Path(v) for k, v in payload.output_paths.items()}
    context = RunContext(
        workdir=Path(payload.workdir),
        argv=payload.argv,
        environment=dict(payload.environment),
        input_paths=input_paths,
        output_paths=output_paths,
        parameters=dict(payload.parameters),
        streams={k: Path(v) for k, v in payload.streams.items()},
    )
    try:
        _run_payload(payload, context)
    except ExecutionError as exc:
        # Infrastructure refusals (missing executable): the in-process
        # path raises these without recording an invocation.
        outcome.status = "failure"
        outcome.commit = False
        outcome.error = str(exc)
        outcome.wall_seconds = time.perf_counter() - clock0
        return outcome
    except Exception as exc:  # body failures become failed invocations
        outcome.status = "failure"
        outcome.error = f"{type(exc).__name__}: {exc}"
        outcome.exit_code = 1
    outcome.wall_seconds = time.perf_counter() - clock0
    outcome.bytes_read = sum(
        p.stat().st_size for p in input_paths.values() if p.exists()
    )
    outcome.bytes_written = sum(
        p.stat().st_size for p in output_paths.values() if p.exists()
    )
    if outcome.status == "success":
        for formal, path in output_paths.items():
            if not path.exists():
                dataset = payload.output_datasets.get(formal, path.name)
                outcome.status = "failure"
                outcome.commit = False
                outcome.error = (
                    f"derivation {payload.derivation_name!r} succeeded "
                    f"but output {dataset!r} was not written"
                )
                return outcome
            stat = path.stat()
            outcome.outputs[formal] = OutputStat(
                path=str(path),
                size=stat.st_size,
                digest=file_digest(path),
                mtime_ns=stat.st_mtime_ns,
            )
    return outcome


def _run_payload(payload: InvocationPayload, context: Any) -> None:
    """The worker-side twin of ``LocalExecutor._run_body``."""
    if payload.body is not None:
        payload.body(context)
        return
    if not os.path.exists(payload.executable):
        raise ExecutionError(
            f"executable {payload.executable!r} does not exist and no "
            f"Python body is registered for it"
        )
    import shlex

    from repro.executor.local import _maybe_open

    words = shlex.split(" ".join(context.argv))
    stdin_path = context.streams.get("stdin")
    stdout_path = context.streams.get("stdout")
    stderr_path = context.streams.get("stderr")
    with _maybe_open(stdin_path, "rb") as stdin, _maybe_open(
        stdout_path, "wb"
    ) as stdout, _maybe_open(stderr_path, "wb") as stderr:
        completed = subprocess.run(
            [payload.executable, *words],
            stdin=stdin,
            stdout=stdout,
            stderr=stderr,
            env={**os.environ, **context.environment},
            cwd=context.workdir,
            check=False,
        )
    if completed.returncode != 0:
        raise RuntimeError(
            f"{payload.executable} exited with {completed.returncode}"
        )
