"""Process-pool execution primitives: escape the GIL for CPU-bound steps.

Thread workers share one interpreter, so a Python transformation body
that computes (rather than waits) serializes on the GIL and ``workers=N``
buys nothing.  The process backend runs bodies in worker *processes*:

- The parent builds one :class:`InvocationPayload` per plan step at
  dispatch time — a picklable, self-contained description of the run
  (argv, environment, bound paths, streams, and the registered body, if
  any).  Workers never see the catalog, the executor, or any lock.
- :func:`run_invocation` executes the payload in the worker and returns
  an :class:`InvocationOutcome`: status, timing, byte counts, and a
  content digest per output (hashing large outputs in the worker keeps
  the parent off the critical path).
- All provenance writeback happens parent-side through a single-writer
  collector thread (see ``LocalExecutor._materialize_process``), so
  catalog locks and transactions never cross a process boundary.

:func:`preflight_payload` pickles a payload *before* submission and, on
failure, re-pickles field by field so the error names the offending
field — typically a transformation body that is a lambda or closure
instead of a module-level function.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, Iterator, Optional

from repro.errors import ExecutionError

#: How many bytes of a redirected stdout/stderr file ride back to the
#: parent on failure.  Tails, not heads: the last lines of a crashed
#: tool are the diagnostic ones.
STREAM_TAIL_BYTES = 2048


@dataclass
class InvocationPayload:
    """Everything a worker process needs to run one plan step.

    Paths are plain strings (not ``Path``) and all mappings are plain
    dicts so the payload pickles compactly and identically across
    start methods.  ``body`` is the registered Python callable for the
    executable, or ``None`` to run a real subprocess.
    """

    step_name: str
    derivation_name: str
    executable: str
    argv: tuple[str, ...]
    environment: dict[str, str]
    workdir: str
    input_paths: dict[str, str]
    output_paths: dict[str, str]
    #: formal -> logical dataset name, for error messages that must
    #: match the in-process executor's wording exactly.
    output_datasets: dict[str, str]
    parameters: dict[str, str]
    streams: dict[str, str]
    body: Optional[Callable] = None


@dataclass
class OutputStat:
    """What the worker observed about one written output file."""

    path: str
    size: int
    digest: str
    mtime_ns: int


@dataclass
class WorkerSpan:
    """One completed span captured in a worker process.

    ``start``/``end`` are offsets (seconds) from the capture's
    ``perf_counter`` base; the parent rebases them into its own clock
    domain at merge time.  ``parent`` is an index into the owning
    telemetry's span list (spans are appended at open time, so a
    parent's index is always smaller than its children's), or ``None``
    for the worker-side root.
    """

    name: str
    start: float
    end: float
    parent: Optional[int] = None
    status: str = "ok"
    error: Optional[str] = None
    attributes: dict[str, Any] = field(default_factory=dict)


@dataclass
class WorkerMetric:
    """A counter increment or histogram observation made in a worker."""

    kind: str  # "counter" | "histogram"
    name: str
    value: float
    labels: dict[str, str] = field(default_factory=dict)
    help: str = ""


@dataclass
class WorkerTelemetry:
    """Everything a worker observed about one invocation, picklable.

    Workers cannot touch the parent's ``Tracer``/``MetricsRegistry`` —
    they live in another process — so spans, metric deltas, and events
    are captured into plain dataclasses and shipped home inside the
    :class:`InvocationOutcome`.  ``wall0`` is the worker's
    ``time.time()`` at the capture's ``perf_counter`` base: the parent
    uses it to map span offsets into its own ``perf_counter`` domain
    (wall clocks agree across processes on one host; ``perf_counter``
    bases do not).
    """

    pid: int
    wall0: float
    spans: list[WorkerSpan] = field(default_factory=list)
    metrics: list[WorkerMetric] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)
    stdout_tail: str = ""
    stderr_tail: str = ""


class TelemetryCapture:
    """Worker-side recorder: cheap list appends, no locks, no I/O.

    Mirrors the parent ``Instrumentation`` surface (``span`` /
    ``count`` / ``observe`` / ``event``) closely enough that worker
    code reads like executor code, but every call lands in the
    picklable :class:`WorkerTelemetry` instead of shared state.
    """

    def __init__(self, pid: int) -> None:
        self._perf0 = time.perf_counter()
        self.telemetry = WorkerTelemetry(pid=pid, wall0=time.time())
        self._stack: list[int] = []

    def _now(self) -> float:
        return time.perf_counter() - self._perf0

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[WorkerSpan]:
        index = len(self.telemetry.spans)
        parent = self._stack[-1] if self._stack else None
        span = WorkerSpan(
            name=name,
            start=self._now(),
            end=0.0,
            parent=parent,
            attributes=dict(attributes),
        )
        self.telemetry.spans.append(span)
        self._stack.append(index)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.end = self._now()
            self._stack.pop()

    def count(
        self, name: str, amount: float = 1, help: str = "", **labels: str
    ) -> None:
        self.telemetry.metrics.append(
            WorkerMetric("counter", name, amount, dict(labels), help)
        )

    def observe(
        self, name: str, value: float, help: str = "", **labels: str
    ) -> None:
        self.telemetry.metrics.append(
            WorkerMetric("histogram", name, value, dict(labels), help)
        )

    def event(self, name: str, **fields_: Any) -> None:
        self.telemetry.events.append(
            {"name": name, "at": self._now(), **fields_}
        )

    def capture_tails(self, streams: dict[str, str]) -> None:
        """Read the last bytes of redirected stdout/stderr files."""
        for key in ("stdout", "stderr"):
            path = streams.get(key)
            if not path or not os.path.exists(path):
                continue
            try:
                size = os.path.getsize(path)
                with open(path, "rb") as handle:
                    if size > STREAM_TAIL_BYTES:
                        handle.seek(-STREAM_TAIL_BYTES, os.SEEK_END)
                    tail = handle.read().decode("utf-8", "replace")
            except OSError:
                continue
            setattr(self.telemetry, f"{key}_tail", tail)


@dataclass
class InvocationOutcome:
    """A worker's report for one payload.

    ``commit=False`` marks failures the in-process executor would have
    raised *without* recording an invocation (missing executable,
    declared output never written): the collector must record nothing
    and the step fails with ``error`` as the message.  ``commit=True``
    failures are ordinary body failures and are recorded as failed
    invocations, exactly like the sequential path.
    """

    step_name: str
    derivation_name: str
    status: str
    commit: bool = True
    error: Optional[str] = None
    exit_code: int = 0
    started: float = 0.0
    wall_seconds: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    outputs: dict[str, OutputStat] = field(default_factory=dict)
    pid: int = 0
    telemetry: Optional[WorkerTelemetry] = None


def preflight_payload(payload: InvocationPayload) -> bytes:
    """Pickle a payload, attributing failures to the offending field.

    Raises :class:`ExecutionError` naming the unpicklable field so a
    lambda body (the common mistake) produces an actionable message
    instead of a raw ``PicklingError`` from pool internals.
    """
    try:
        return pickle.dumps(payload)
    except Exception as exc:
        for f in fields(payload):
            try:
                pickle.dumps(getattr(payload, f.name))
            except Exception as field_exc:
                hint = ""
                if f.name == "body":
                    hint = (
                        "; the process backend requires registered "
                        "transformation bodies to be module-level "
                        "functions (lambdas and closures cannot cross "
                        "a process boundary)"
                    )
                raise ExecutionError(
                    f"derivation {payload.derivation_name!r}: payload "
                    f"field {f.name!r} is not picklable "
                    f"({type(field_exc).__name__}: {field_exc}){hint}"
                ) from field_exc
        raise ExecutionError(
            f"derivation {payload.derivation_name!r}: payload is not "
            f"picklable ({type(exc).__name__}: {exc})"
        ) from exc


def run_invocation(payload: InvocationPayload) -> InvocationOutcome:
    """Execute one payload in a worker process.

    Mirrors ``LocalExecutor._execute``'s run phase: registered body or
    subprocess, body exceptions become failed outcomes, and output
    stats (size, sha256, mtime) are gathered here so the parent's
    collector can write provenance without re-reading output bytes.
    """
    # Imported here, not at module top: worker processes only need the
    # light pieces, and RunContext lives in the executor module.
    from repro.durability.checksum import file_digest
    from repro.executor.local import RunContext

    pid = os.getpid()
    capture = TelemetryCapture(pid)
    started = time.time()
    clock0 = time.perf_counter()
    outcome = InvocationOutcome(
        step_name=payload.step_name,
        derivation_name=payload.derivation_name,
        status="success",
        started=started,
        pid=pid,
        telemetry=capture.telemetry,
    )
    input_paths = {k: Path(v) for k, v in payload.input_paths.items()}
    output_paths = {k: Path(v) for k, v in payload.output_paths.items()}
    context = RunContext(
        workdir=Path(payload.workdir),
        argv=payload.argv,
        environment=dict(payload.environment),
        input_paths=input_paths,
        output_paths=output_paths,
        parameters=dict(payload.parameters),
        streams={k: Path(v) for k, v in payload.streams.items()},
    )
    with capture.span(
        "worker.invocation",
        derivation=payload.derivation_name,
        step=payload.step_name,
        worker_pid=pid,
    ) as root:
        try:
            with capture.span(
                "worker.run", executable=payload.executable
            ):
                _run_payload(payload, context)
        except ExecutionError as exc:
            # Infrastructure refusals (missing executable): the
            # in-process path raises these without recording an
            # invocation.
            outcome.status = "failure"
            outcome.commit = False
            outcome.error = str(exc)
            outcome.wall_seconds = time.perf_counter() - clock0
            root.status = "error"
            root.error = outcome.error
            _finish_capture(capture, payload, outcome)
            return outcome
        except Exception as exc:  # body failures → failed invocations
            outcome.status = "failure"
            outcome.error = f"{type(exc).__name__}: {exc}"
            outcome.exit_code = 1
        outcome.wall_seconds = time.perf_counter() - clock0
        outcome.bytes_read = sum(
            p.stat().st_size for p in input_paths.values() if p.exists()
        )
        outcome.bytes_written = sum(
            p.stat().st_size
            for p in output_paths.values()
            if p.exists()
        )
        if outcome.status == "success":
            with capture.span(
                "worker.digest", outputs=len(output_paths)
            ):
                for formal, path in output_paths.items():
                    if not path.exists():
                        dataset = payload.output_datasets.get(
                            formal, path.name
                        )
                        outcome.status = "failure"
                        outcome.commit = False
                        outcome.error = (
                            f"derivation "
                            f"{payload.derivation_name!r} succeeded "
                            f"but output {dataset!r} was not written"
                        )
                        capture.event(
                            "worker.output.missing",
                            derivation=payload.derivation_name,
                            dataset=dataset,
                        )
                        break
                    stat = path.stat()
                    outcome.outputs[formal] = OutputStat(
                        path=str(path),
                        size=stat.st_size,
                        digest=file_digest(path),
                        mtime_ns=stat.st_mtime_ns,
                    )
        if outcome.status != "success":
            root.status = "error"
            root.error = outcome.error
    _finish_capture(capture, payload, outcome)
    return outcome


def _finish_capture(
    capture: TelemetryCapture,
    payload: InvocationPayload,
    outcome: InvocationOutcome,
) -> None:
    """Record worker-side metrics and stream tails on the outcome.

    Worker metrics live in a ``worker.*`` namespace: the parent's
    collector already replays ``executor.*`` counters for backend
    parity, so the relay must not double-count them.
    """
    capture.count(
        "worker.invocations",
        help="invocations executed in worker processes",
        status=outcome.status,
    )
    capture.observe(
        "worker.invocation.seconds",
        outcome.wall_seconds,
        help="worker-side wall time per invocation",
    )
    if outcome.bytes_written:
        capture.count(
            "worker.bytes_written",
            outcome.bytes_written,
            help="bytes written by worker processes",
        )
    if outcome.status != "success":
        capture.capture_tails(payload.streams)


def _run_payload(payload: InvocationPayload, context: Any) -> None:
    """The worker-side twin of ``LocalExecutor._run_body``."""
    if payload.body is not None:
        payload.body(context)
        return
    if not os.path.exists(payload.executable):
        raise ExecutionError(
            f"executable {payload.executable!r} does not exist and no "
            f"Python body is registered for it"
        )
    import shlex

    from repro.executor.local import _maybe_open

    words = shlex.split(" ".join(context.argv))
    stdin_path = context.streams.get("stdin")
    stdout_path = context.streams.get("stdout")
    stderr_path = context.streams.get("stderr")
    with _maybe_open(stdin_path, "rb") as stdin, _maybe_open(
        stdout_path, "wb"
    ) as stdout, _maybe_open(stderr_path, "wb") as stderr:
        completed = subprocess.run(
            [payload.executable, *words],
            stdin=stdin,
            stdout=stdout,
            stderr=stderr,
            env={**os.environ, **context.environment},
            cwd=context.workdir,
            check=False,
        )
    if completed.returncode != 0:
        raise RuntimeError(
            f"{payload.executable} exited with {completed.returncode}"
        )
