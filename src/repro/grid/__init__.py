"""The simulated data grid substrate (§4.3, §5.2).

Replaces the paper's Globus/Condor testbed: a deterministic
discrete-event simulator, sites with compute/storage elements, a
network topology with transfer accounting, a replica location service,
and a GRAM-like job submission service.
"""

from repro.grid.gram import (
    GridExecutionService,
    JOB_STATES,
    JobRecord,
    JobSpec,
)
from repro.grid.network import (
    DEFAULT_BANDWIDTH,
    DEFAULT_LATENCY,
    Link,
    LinkStats,
    NetworkTopology,
    star_topology,
    uniform_topology,
)
from repro.grid.objectstore import ObjectStore, ObjectStoreRegistry, StoredObject
from repro.grid.replica_catalog import ReplicaLocationService
from repro.grid.simulator import Simulator
from repro.grid.site import ComputeElement, Host, Site, StorageElement, StoredFile

__all__ = [
    "ComputeElement",
    "DEFAULT_BANDWIDTH",
    "DEFAULT_LATENCY",
    "GridExecutionService",
    "Host",
    "JOB_STATES",
    "JobRecord",
    "JobSpec",
    "Link",
    "LinkStats",
    "NetworkTopology",
    "ObjectStore",
    "ObjectStoreRegistry",
    "ReplicaLocationService",
    "Simulator",
    "Site",
    "StorageElement",
    "StoredFile",
    "StoredObject",
    "star_topology",
    "uniform_topology",
]
