"""A toy persistent object store for multi-modal datasets.

The Chimera-0 HEP pipeline's last two stages exchanged "object-oriented
database files from a commercial OODBMS product" (§6), and the dataset
model must support "a closure of object references from a persistent
object database" (§3.1).  This module provides the minimum store that
makes :class:`~repro.core.descriptors.ObjectClosureDescriptor`
meaningful: named objects with payloads and typed references, plus
closure computation over the reference graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import GridError


@dataclass
class StoredObject:
    """One persistent object: a payload plus outgoing references."""

    oid: str
    payload: Any = None
    refs: tuple[str, ...] = ()


class ObjectStore:
    """A named store of objects addressed by object id (OID)."""

    def __init__(self, name: str):
        self.name = name
        self._objects: dict[str, StoredObject] = {}

    def put(self, oid: str, payload: Any = None, refs: Iterable[str] = ()) -> None:
        """Insert or replace an object."""
        self._objects[oid] = StoredObject(
            oid=oid, payload=payload, refs=tuple(refs)
        )

    def get(self, oid: str) -> StoredObject:
        try:
            return self._objects[oid]
        except KeyError:
            raise GridError(
                f"object {oid!r} not found in store {self.name!r}"
            ) from None

    def has(self, oid: str) -> bool:
        return oid in self._objects

    def delete(self, oid: str) -> None:
        if oid not in self._objects:
            raise GridError(f"object {oid!r} not found in store {self.name!r}")
        del self._objects[oid]

    def oids(self) -> list[str]:
        return sorted(self._objects)

    def __len__(self) -> int:
        return len(self._objects)

    def closure(self, roots: Iterable[str]) -> set[str]:
        """All OIDs reachable from ``roots`` through references.

        Dangling references are ignored (a real OODBMS would fault
        them in; a provenance snapshot just records what exists).
        """
        seen: set[str] = set()
        frontier = [oid for oid in roots]
        while frontier:
            oid = frontier.pop()
            if oid in seen or oid not in self._objects:
                continue
            seen.add(oid)
            frontier.extend(self._objects[oid].refs)
        return seen

    def extract(self, roots: Iterable[str]) -> dict[str, Any]:
        """Materialize the closure: ``{oid: payload}`` for reachable objects."""
        return {oid: self._objects[oid].payload for oid in self.closure(roots)}

    def closure_size(self, roots: Iterable[str]) -> int:
        return len(self.closure(roots))


class ObjectStoreRegistry:
    """All object stores known to the process, by name.

    Local executors resolve
    :class:`~repro.core.descriptors.ObjectClosureDescriptor` containers
    through this registry.
    """

    def __init__(self):
        self._stores: dict[str, ObjectStore] = {}

    def create(self, name: str) -> ObjectStore:
        if name in self._stores:
            raise GridError(f"object store {name!r} already exists")
        store = ObjectStore(name)
        self._stores[name] = store
        return store

    def get(self, name: str) -> ObjectStore:
        try:
            return self._stores[name]
        except KeyError:
            raise GridError(f"unknown object store {name!r}") from None

    def get_or_create(self, name: str) -> ObjectStore:
        if name not in self._stores:
            return self.create(name)
        return self._stores[name]

    def names(self) -> list[str]:
        return sorted(self._stores)
