"""Discrete-event simulation core for the grid substrate.

The paper's evaluation ran on real Globus/Condor testbeds ("a grid
consisting of almost 800 hosts spread across four sites", §6).  We
replace that testbed with a deterministic discrete-event simulator so
planner and executor code paths run unchanged at the paper's scales on
one machine.  The simulator is intentionally small: a clock, a priority
queue of timestamped callbacks, and deterministic tie-breaking so runs
are exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.errors import GridError
from repro.observability.instrument import NULL, Instrumentation

#: An event callback takes no arguments; closures carry state.
EventCallback = Callable[[], None]


class Simulator:
    """A minimal deterministic discrete-event simulator.

    Events scheduled at the same timestamp fire in scheduling order
    (FIFO), which makes every simulation replayable.
    """

    def __init__(self, instrumentation: Optional[Instrumentation] = None):
        self._now = 0.0
        self._queue: list[tuple[float, int, EventCallback]] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self.obs = instrumentation or NULL

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay: float, callback: EventCallback) -> None:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise GridError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self._now + delay, next(self._sequence), callback)
        )

    def schedule_at(self, when: float, callback: EventCallback) -> None:
        """Schedule ``callback`` at absolute time ``when``."""
        self.schedule(when - self._now, callback)

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue empties (or ``until`` passes).

        Returns the final simulation time.
        """
        before = self._events_processed
        while self._queue:
            when, _, callback = self._queue[0]
            if until is not None and when > until:
                self._now = until
                break
            heapq.heappop(self._queue)
            self._now = when
            self._events_processed += 1
            callback()
        if self.obs.enabled:
            self.obs.count(
                "sim.events",
                self._events_processed - before,
                help="discrete events processed",
            )
            self.obs.gauge(
                "sim.clock_seconds", self._now, help="current simulation time"
            )
        return self._now

    def step(self) -> bool:
        """Process exactly one event; returns False when queue is empty."""
        if not self._queue:
            return False
        when, _, callback = heapq.heappop(self._queue)
        self._now = when
        self._events_processed += 1
        callback()
        return True

    def pending(self) -> int:
        return len(self._queue)

    def flush(self) -> int:
        """Discard all pending events without advancing the clock.

        Used when a run is killed mid-flight (``until=`` cut-off): the
        abandoned completion events must not replay into a resumed run
        on the same simulator.  Returns the number discarded.
        """
        dropped = len(self._queue)
        self._queue.clear()
        return dropped

    def reset(self) -> None:
        """Clear all state, returning the clock to zero."""
        self._now = 0.0
        self._queue.clear()
        self._sequence = itertools.count()
        self._events_processed = 0
