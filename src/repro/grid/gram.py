"""GRAM-like job submission over the simulated grid.

Models the paper's execution substrate: the Globus "Grid Resource
Allocation and Management (GRAM) protocol, which allows ... for
application-specific environment variable settings, prestaging of input
data, redirection of standard output, and poststaging of output data"
(§4.3).  A submitted job therefore goes through:

1. **stage-in** — every input LFN not already at the target site is
   fetched from its cheapest replica (transfers serialize, as on a
   single GridFTP door);
2. **queue + run** — the site's compute element allocates the earliest
   available host (FIFO);
3. **stage-out** — outputs land in the site's storage element and are
   registered with the replica location service.

Jobs may be injected with deterministic pseudo-random failures to
exercise retry logic in the workflow executor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import SubmissionError, TransferError
from repro.resilience.rescue import expected_digest
from repro.grid.network import NetworkTopology
from repro.observability.instrument import NULL, Instrumentation
from repro.grid.replica_catalog import ReplicaLocationService
from repro.grid.simulator import Simulator
from repro.grid.site import Site

if TYPE_CHECKING:
    from repro.resilience.faults import FaultInjector

#: Job terminal states ("killed" = cancelled by the scheduler, e.g. a
#: straggler that outlived its step timeout).
JOB_STATES = ("pending", "staging", "running", "done", "failed", "killed")


@dataclass
class JobSpec:
    """Everything GRAM needs to run one job at one site."""

    name: str
    site: str
    cpu_seconds: float
    inputs: tuple[str, ...] = ()
    #: Output LFN -> size in bytes.
    outputs: dict[str, int] = field(default_factory=dict)
    executable: str = ""
    environment: dict[str, str] = field(default_factory=dict)
    #: Cap on usable hosts at the site (workflow-level width limit).
    max_hosts: Optional[int] = None
    #: Extra pre-run time (e.g. shipping/installing the procedure,
    #: §4.3 resource virtualization); charged before queueing.
    setup_seconds: float = 0.0


@dataclass
class JobRecord:
    """The observed life of one job."""

    spec: JobSpec
    status: str = "pending"
    submitted_at: float = 0.0
    stage_in_seconds: float = 0.0
    queue_seconds: float = 0.0
    start_time: float = 0.0
    end_time: float = 0.0
    host: str = ""
    bytes_staged: int = 0
    error: Optional[str] = None
    #: Injected fault kind, when a fault caused the failure (one of
    #: :data:`repro.resilience.faults.FAULT_KINDS`).
    fault: Optional[str] = None
    #: Set by :meth:`GridExecutionService.cancel`; the job's completion
    #: event then discards its outputs instead of staging them out.
    cancelled: bool = False

    @property
    def makespan(self) -> float:
        """Submission-to-completion wall time."""
        return self.end_time - self.submitted_at

    @property
    def succeeded(self) -> bool:
        return self.status == "done"


#: Completion callback signature.
CompletionCallback = Callable[[JobRecord], None]


class GridExecutionService:
    """Submits jobs to sites on a shared simulator."""

    def __init__(
        self,
        simulator: Simulator,
        sites: dict[str, Site],
        network: NetworkTopology,
        replicas: ReplicaLocationService,
        failure_rate: float = 0.0,
        seed: int = 0,
        instrumentation: Optional[Instrumentation] = None,
        injector: Optional["FaultInjector"] = None,
    ):
        if not 0.0 <= failure_rate < 1.0:
            raise SubmissionError("failure_rate must be in [0, 1)")
        self.simulator = simulator
        self.sites = dict(sites)
        self.network = network
        self.replicas = replicas
        #: Legacy knob: uniform transient execution faults drawn from a
        #: shared RNG stream.  The injector models everything richer.
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self.records: list[JobRecord] = []
        self.obs = instrumentation or NULL
        self.injector = injector
        if injector is not None:
            # Timed stage-in transfers consult the same fault model.
            self.network.injector = injector
            if injector.obs is NULL:
                injector.obs = self.obs

    # -- submission ------------------------------------------------------------

    def submit(
        self, spec: JobSpec, on_complete: Optional[CompletionCallback] = None
    ) -> JobRecord:
        """Submit a job; completion fires on the simulator's clock.

        The returned record is updated in place as the job progresses;
        its terminal state is set before ``on_complete`` fires.
        """
        site = self.sites.get(spec.site)
        if site is None:
            raise SubmissionError(f"unknown site {spec.site!r}")
        now = self.simulator.now
        record = JobRecord(spec=spec, submitted_at=now, status="staging")
        self.records.append(record)
        if self.obs.enabled:
            self.obs.count(
                "grid.jobs.submitted",
                site=spec.site,
                help="GRAM submissions per site",
            )

        if self.injector is not None:
            down = self.injector.site_down(spec.site, now)
            if down is not None:
                record.status = "failed"
                record.fault = "outage"
                record.error = down
                record.end_time = now
                if on_complete is not None:
                    self.simulator.schedule(0.0, lambda: on_complete(record))
                return record

        try:
            stage_seconds, staged_bytes = self._stage_in(spec, site)
        except TransferError as exc:
            record.status = "failed"
            record.fault = "transfer"
            record.error = str(exc)
            record.end_time = now
            if on_complete is not None:
                self.simulator.schedule(0.0, lambda: on_complete(record))
            return record

        record.stage_in_seconds = stage_seconds + spec.setup_seconds
        record.bytes_staged = staged_bytes
        ready = now + stage_seconds + spec.setup_seconds
        slowdown = 1.0
        if self.injector is not None:
            slowdown = self.injector.slowdown(spec.site, ready)
        host, start, end = site.compute.allocate(
            ready, spec.cpu_seconds, max_hosts=spec.max_hosts,
            slowdown=slowdown,
        )
        record.queue_seconds = start - ready
        record.start_time = start
        record.end_time = end
        record.host = host.name
        record.status = "running"

        def finish() -> None:
            if record.cancelled:
                # The scheduler killed this attempt (straggler timeout)
                # and already moved on; discard outputs, skip callback.
                record.status = "killed"
                if self.obs.enabled:
                    self._observe_completion(record, site)
                return
            # The legacy failure_rate draw stays first so seeded runs
            # without an injector reproduce their historical schedules.
            if self.failure_rate and self._rng.random() < self.failure_rate:
                record.status = "failed"
                record.error = "simulated execution failure"
            else:
                verdict = None
                if self.injector is not None:
                    verdict = self.injector.run_fault(
                        spec.name, spec.site, start, end
                    )
                if verdict is not None:
                    record.fault, record.error = verdict
                    record.status = "failed"
                else:
                    self._stage_out(spec, site, end)
                    record.status = "done"
            if self.obs.enabled:
                self._observe_completion(record, site)
            if on_complete is not None:
                on_complete(record)

        self.simulator.schedule(end - now, finish)
        return record

    def _observe_completion(self, record: JobRecord, site: Site) -> None:
        """Account one finished job and refresh the site gauges."""
        self.obs.count(
            "grid.jobs.completed",
            site=site.name,
            status=record.status,
            help="GRAM completions per site and status",
        )
        self.obs.observe(
            "grid.job.queue_seconds",
            record.queue_seconds,
            help="batch queue wait per job (sim time)",
        )
        self.obs.observe(
            "grid.job.stage_in_seconds",
            record.stage_in_seconds,
            help="input staging time per job (sim time)",
        )
        self.obs.count(
            "grid.stage_in.bytes",
            record.bytes_staged,
            help="wide-area bytes staged for jobs",
        )
        now = self.simulator.now
        self.obs.gauge(
            "grid.site.utilization",
            site.compute.utilization(now),
            site=site.name,
            help="fraction of host-seconds busy since t=0",
        )
        self.obs.gauge(
            "grid.site.storage_bytes",
            site.storage.used,
            site=site.name,
            help="bytes held by the site's storage element",
        )
        self.obs.gauge(
            "grid.site.free_hosts",
            site.compute.free_hosts(now),
            site=site.name,
            help="hosts idle at the site right now",
        )

    # -- staging ------------------------------------------------------------------

    def _stage_in(self, spec: JobSpec, site: Site) -> tuple[float, int]:
        """Serialize input transfers to the target site; returns
        (seconds, bytes moved over the wide area)."""
        total_seconds = 0.0
        total_bytes = 0
        now = self.simulator.now
        for lfn in spec.inputs:
            if site.storage.holds(lfn):
                site.storage.touch(lfn, now)
                continue
            source, _ = self.replicas.best_source(lfn, site.name)
            size = self.replicas.size_of(lfn)
            duration = self.network.record_transfer(
                size, source, site.name, now=now + total_seconds, lfn=lfn
            )
            total_seconds += duration
            if source != site.name:
                total_bytes += size
            evicted = site.storage.store(lfn, size, now)
            for victim in evicted:
                if self.replicas.has(victim, site.name):
                    self.replicas.unregister(victim, site.name)
            self.replicas.register(lfn, site.name, size)
        return total_seconds, total_bytes

    def _stage_out(self, spec: JobSpec, site: Site, when: float) -> None:
        for lfn, size in spec.outputs.items():
            digest = expected_digest(lfn, size)
            if self.injector is not None and self.injector.corrupt_output(
                spec.name, lfn
            ):
                digest = "corrupt:" + digest
            evicted = site.storage.store(lfn, size, when, digest=digest)
            for victim in evicted:
                if self.replicas.has(victim, site.name):
                    self.replicas.unregister(victim, site.name)
            self.replicas.register(lfn, site.name, size)

    # -- recovery hooks ------------------------------------------------------------

    def cancel(self, record: JobRecord) -> None:
        """Kill a running job (straggler timeout).

        The host stays busy until the original end time — a killed
        straggler's slot is not reclaimed — but its completion event
        discards outputs and fires no callback.
        """
        if record.status in ("done", "failed", "killed"):
            return
        record.cancelled = True
        record.fault = record.fault or "timeout"
        record.error = record.error or "killed: step timeout exceeded"

    def verify_outputs(self, record: JobRecord) -> list[str]:
        """Outputs of a finished job whose stored copy fails size or
        digest verification at the job's site (corrupt replicas)."""
        site = self.sites[record.spec.site]
        bad = []
        for lfn, size in record.spec.outputs.items():
            if not site.storage.holds(lfn):
                continue
            stored = site.storage.file(lfn)
            expected = expected_digest(lfn, size)
            if stored.size != size or (
                stored.digest is not None and stored.digest != expected
            ):
                bad.append(lfn)
        return bad

    def quarantine(self, lfn: str, site_name: str) -> None:
        """Delete one corrupt replica from site storage and the RLS."""
        site = self.sites.get(site_name)
        if site is not None and site.storage.holds(lfn):
            site.storage.delete(lfn)
        if self.replicas.has(lfn, site_name):
            self.replicas.unregister(lfn, site_name)
        if self.obs.enabled:
            self.obs.count(
                "grid.replicas.quarantined",
                site=site_name,
                help="corrupt replicas deleted after failed verification",
            )

    # -- reporting -------------------------------------------------------------------

    def completed(self) -> list[JobRecord]:
        return [r for r in self.records if r.status == "done"]

    def failed(self) -> list[JobRecord]:
        return [r for r in self.records if r.status == "failed"]

    def mean_response_time(self) -> float:
        """Mean makespan of completed jobs (the replication metric)."""
        done = self.completed()
        if not done:
            return 0.0
        return sum(r.makespan for r in done) / len(done)
