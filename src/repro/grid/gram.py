"""GRAM-like job submission over the simulated grid.

Models the paper's execution substrate: the Globus "Grid Resource
Allocation and Management (GRAM) protocol, which allows ... for
application-specific environment variable settings, prestaging of input
data, redirection of standard output, and poststaging of output data"
(§4.3).  A submitted job therefore goes through:

1. **stage-in** — every input LFN not already at the target site is
   fetched from its cheapest replica (transfers serialize, as on a
   single GridFTP door);
2. **queue + run** — the site's compute element allocates the earliest
   available host (FIFO);
3. **stage-out** — outputs land in the site's storage element and are
   registered with the replica location service.

Jobs may be injected with deterministic pseudo-random failures to
exercise retry logic in the workflow executor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SubmissionError, TransferError
from repro.grid.network import NetworkTopology
from repro.observability.instrument import NULL, Instrumentation
from repro.grid.replica_catalog import ReplicaLocationService
from repro.grid.simulator import Simulator
from repro.grid.site import Site

#: Job terminal states.
JOB_STATES = ("pending", "staging", "running", "done", "failed")


@dataclass
class JobSpec:
    """Everything GRAM needs to run one job at one site."""

    name: str
    site: str
    cpu_seconds: float
    inputs: tuple[str, ...] = ()
    #: Output LFN -> size in bytes.
    outputs: dict[str, int] = field(default_factory=dict)
    executable: str = ""
    environment: dict[str, str] = field(default_factory=dict)
    #: Cap on usable hosts at the site (workflow-level width limit).
    max_hosts: Optional[int] = None
    #: Extra pre-run time (e.g. shipping/installing the procedure,
    #: §4.3 resource virtualization); charged before queueing.
    setup_seconds: float = 0.0


@dataclass
class JobRecord:
    """The observed life of one job."""

    spec: JobSpec
    status: str = "pending"
    submitted_at: float = 0.0
    stage_in_seconds: float = 0.0
    queue_seconds: float = 0.0
    start_time: float = 0.0
    end_time: float = 0.0
    host: str = ""
    bytes_staged: int = 0
    error: Optional[str] = None

    @property
    def makespan(self) -> float:
        """Submission-to-completion wall time."""
        return self.end_time - self.submitted_at

    @property
    def succeeded(self) -> bool:
        return self.status == "done"


#: Completion callback signature.
CompletionCallback = Callable[[JobRecord], None]


class GridExecutionService:
    """Submits jobs to sites on a shared simulator."""

    def __init__(
        self,
        simulator: Simulator,
        sites: dict[str, Site],
        network: NetworkTopology,
        replicas: ReplicaLocationService,
        failure_rate: float = 0.0,
        seed: int = 0,
        instrumentation: Optional[Instrumentation] = None,
    ):
        if not 0.0 <= failure_rate < 1.0:
            raise SubmissionError("failure_rate must be in [0, 1)")
        self.simulator = simulator
        self.sites = dict(sites)
        self.network = network
        self.replicas = replicas
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self.records: list[JobRecord] = []
        self.obs = instrumentation or NULL

    # -- submission ------------------------------------------------------------

    def submit(
        self, spec: JobSpec, on_complete: Optional[CompletionCallback] = None
    ) -> JobRecord:
        """Submit a job; completion fires on the simulator's clock.

        The returned record is updated in place as the job progresses;
        its terminal state is set before ``on_complete`` fires.
        """
        site = self.sites.get(spec.site)
        if site is None:
            raise SubmissionError(f"unknown site {spec.site!r}")
        now = self.simulator.now
        record = JobRecord(spec=spec, submitted_at=now, status="staging")
        self.records.append(record)
        if self.obs.enabled:
            self.obs.count(
                "grid.jobs.submitted",
                site=spec.site,
                help="GRAM submissions per site",
            )

        try:
            stage_seconds, staged_bytes = self._stage_in(spec, site)
        except TransferError as exc:
            record.status = "failed"
            record.error = str(exc)
            record.end_time = now
            if on_complete is not None:
                self.simulator.schedule(0.0, lambda: on_complete(record))
            return record

        record.stage_in_seconds = stage_seconds + spec.setup_seconds
        record.bytes_staged = staged_bytes
        ready = now + stage_seconds + spec.setup_seconds
        host, start, end = site.compute.allocate(
            ready, spec.cpu_seconds, max_hosts=spec.max_hosts
        )
        record.queue_seconds = start - ready
        record.start_time = start
        record.end_time = end
        record.host = host.name
        record.status = "running"

        def finish() -> None:
            if self.failure_rate and self._rng.random() < self.failure_rate:
                record.status = "failed"
                record.error = "simulated execution failure"
            else:
                self._stage_out(spec, site, end)
                record.status = "done"
            if self.obs.enabled:
                self._observe_completion(record, site)
            if on_complete is not None:
                on_complete(record)

        self.simulator.schedule(end - now, finish)
        return record

    def _observe_completion(self, record: JobRecord, site: Site) -> None:
        """Account one finished job and refresh the site gauges."""
        self.obs.count(
            "grid.jobs.completed",
            site=site.name,
            status=record.status,
            help="GRAM completions per site and status",
        )
        self.obs.observe(
            "grid.job.queue_seconds",
            record.queue_seconds,
            help="batch queue wait per job (sim time)",
        )
        self.obs.observe(
            "grid.job.stage_in_seconds",
            record.stage_in_seconds,
            help="input staging time per job (sim time)",
        )
        self.obs.count(
            "grid.stage_in.bytes",
            record.bytes_staged,
            help="wide-area bytes staged for jobs",
        )
        now = self.simulator.now
        self.obs.gauge(
            "grid.site.utilization",
            site.compute.utilization(now),
            site=site.name,
            help="fraction of host-seconds busy since t=0",
        )
        self.obs.gauge(
            "grid.site.storage_bytes",
            site.storage.used,
            site=site.name,
            help="bytes held by the site's storage element",
        )
        self.obs.gauge(
            "grid.site.free_hosts",
            site.compute.free_hosts(now),
            site=site.name,
            help="hosts idle at the site right now",
        )

    # -- staging ------------------------------------------------------------------

    def _stage_in(self, spec: JobSpec, site: Site) -> tuple[float, int]:
        """Serialize input transfers to the target site; returns
        (seconds, bytes moved over the wide area)."""
        total_seconds = 0.0
        total_bytes = 0
        now = self.simulator.now
        for lfn in spec.inputs:
            if site.storage.holds(lfn):
                site.storage.touch(lfn, now)
                continue
            source, _ = self.replicas.best_source(lfn, site.name)
            size = self.replicas.size_of(lfn)
            duration = self.network.record_transfer(size, source, site.name)
            total_seconds += duration
            if source != site.name:
                total_bytes += size
            evicted = site.storage.store(lfn, size, now)
            for victim in evicted:
                if self.replicas.has(victim, site.name):
                    self.replicas.unregister(victim, site.name)
            self.replicas.register(lfn, site.name, size)
        return total_seconds, total_bytes

    def _stage_out(self, spec: JobSpec, site: Site, when: float) -> None:
        for lfn, size in spec.outputs.items():
            evicted = site.storage.store(lfn, size, when)
            for victim in evicted:
                if self.replicas.has(victim, site.name):
                    self.replicas.unregister(victim, site.name)
            self.replicas.register(lfn, site.name, size)

    # -- reporting -------------------------------------------------------------------

    def completed(self) -> list[JobRecord]:
        return [r for r in self.records if r.status == "done"]

    def failed(self) -> list[JobRecord]:
        return [r for r in self.records if r.status == "failed"]

    def mean_response_time(self) -> float:
        """Mean makespan of completed jobs (the replication metric)."""
        done = self.completed()
        if not done:
            return 0.0
        return sum(r.makespan for r in done) / len(done)
