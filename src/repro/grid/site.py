"""Grid sites: compute elements and storage elements.

A :class:`Site` bundles a :class:`ComputeElement` (a pool of hosts fed
from a FIFO batch queue, standing in for Condor pools) and a
:class:`StorageElement` (a byte-budgeted file store with LRU eviction,
standing in for GridFTP-fronted disk arrays).  The SDSS experiment's
"almost 800 hosts spread across four sites" (§6) is four ``Site``
objects with a couple of hundred hosts each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import GridError, TransferError


@dataclass
class StoredFile:
    """One logical file held by a storage element."""

    lfn: str
    size: int
    #: Last-touch logical time, maintained by the element for LRU.
    last_used: float = 0.0
    #: Pinned files are never evicted (e.g. mid-transfer or mid-job).
    pinned: int = 0
    #: Simulated content digest (see :func:`repro.resilience.rescue.
    #: expected_digest`); ``None`` for files stored before checksum
    #: tracking or via legacy call sites.  A digest that does not match
    #: the expected value for (lfn, size) marks a corrupted copy.
    digest: Optional[str] = None


class StorageElement:
    """A site's disk store with capacity accounting and LRU eviction."""

    def __init__(self, name: str, capacity: int = 10**15):
        if capacity <= 0:
            raise GridError("storage capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._files: dict[str, StoredFile] = {}
        self._used = 0
        self.evictions = 0

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def holds(self, lfn: str) -> bool:
        return lfn in self._files

    def file(self, lfn: str) -> StoredFile:
        try:
            return self._files[lfn]
        except KeyError:
            raise TransferError(
                f"storage {self.name!r} does not hold {lfn!r}"
            ) from None

    def lfns(self) -> list[str]:
        return sorted(self._files)

    def touch(self, lfn: str, now: float) -> None:
        """Refresh LRU recency for ``lfn``."""
        self.file(lfn).last_used = now

    def pin(self, lfn: str) -> None:
        self.file(lfn).pinned += 1

    def unpin(self, lfn: str) -> None:
        record = self.file(lfn)
        if record.pinned <= 0:
            raise GridError(f"{lfn!r} is not pinned at {self.name!r}")
        record.pinned -= 1

    def store(
        self,
        lfn: str,
        size: int,
        now: float = 0.0,
        digest: Optional[str] = None,
    ) -> list[str]:
        """Add a file, evicting LRU unpinned files if needed.

        Returns the LFNs evicted to make room.  Raises
        :class:`~repro.errors.TransferError` when the file cannot fit
        even after evicting everything evictable.  A re-store of an
        existing LFN refreshes its recency and (when given) its
        digest — a stage-out overwrites the previous copy's bytes.
        """
        if size < 0:
            raise TransferError("negative file size")
        if lfn in self._files:
            self.touch(lfn, now)
            if digest is not None:
                self._files[lfn].digest = digest
            return []
        evicted = []
        if size > self.capacity:
            raise TransferError(
                f"{lfn!r} ({size} B) exceeds capacity of {self.name!r}"
            )
        while self.free < size:
            victim = self._lru_victim()
            if victim is None:
                raise TransferError(
                    f"storage {self.name!r} full and nothing evictable "
                    f"for {lfn!r} ({size} B needed, {self.free} B free)"
                )
            self.delete(victim)
            self.evictions += 1
            evicted.append(victim)
        self._files[lfn] = StoredFile(
            lfn=lfn, size=size, last_used=now, digest=digest
        )
        self._used += size
        return evicted

    def delete(self, lfn: str) -> None:
        record = self.file(lfn)
        if record.pinned:
            raise GridError(f"cannot delete pinned file {lfn!r}")
        del self._files[lfn]
        self._used -= record.size

    def _lru_victim(self) -> Optional[str]:
        candidates = [f for f in self._files.values() if not f.pinned]
        if not candidates:
            return None
        victim = min(candidates, key=lambda f: (f.last_used, f.lfn))
        return victim.lfn


@dataclass
class Host:
    """One worker host within a compute element."""

    name: str
    speed: float = 1.0  # relative CPU speed factor
    busy_until: float = 0.0
    jobs_run: int = 0


class ComputeElement:
    """A pool of hosts fed from a FIFO queue.

    The element does not own a clock: callers (the GRAM layer) ask it
    to *allocate* a host at a given simulation time and get back the
    host and the completion time.  This keeps the element reusable in
    both simulated and analytic (estimator) contexts.
    """

    def __init__(self, name: str, hosts: int = 1, speed: float = 1.0):
        if hosts <= 0:
            raise GridError("a compute element needs at least one host")
        self.name = name
        self.hosts = [
            Host(name=f"{name}-h{i:03d}", speed=speed) for i in range(hosts)
        ]
        self.jobs_completed = 0
        self.busy_seconds = 0.0

    @property
    def host_count(self) -> int:
        return len(self.hosts)

    def free_hosts(self, now: float) -> int:
        return sum(1 for h in self.hosts if h.busy_until <= now)

    def allocate(
        self,
        now: float,
        cpu_seconds: float,
        max_hosts: Optional[int] = None,
        slowdown: float = 1.0,
    ) -> tuple[Host, float, float]:
        """Reserve the earliest-available host for a job.

        ``max_hosts`` restricts scheduling to the first N hosts, which
        is how a workflow-level concurrency cap ("as many as 120 hosts
        in a single workflow", §6) is enforced.  ``slowdown`` > 1
        models a degraded (straggling) site: the job occupies its host
        that much longer.  Returns ``(host, start_time, end_time)``.
        """
        pool = self.hosts if max_hosts is None else self.hosts[:max_hosts]
        host = min(pool, key=lambda h: (max(h.busy_until, now), h.name))
        start = max(host.busy_until, now)
        duration = cpu_seconds * slowdown / host.speed
        end = start + duration
        host.busy_until = end
        host.jobs_run += 1
        self.jobs_completed += 1
        self.busy_seconds += duration
        return host, start, end

    def utilization(self, horizon: float) -> float:
        """Fraction of host-seconds busy over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (horizon * len(self.hosts)))


class Site:
    """One grid site: a named compute element plus storage element."""

    def __init__(
        self,
        name: str,
        hosts: int = 1,
        speed: float = 1.0,
        storage_capacity: int = 10**15,
    ):
        self.name = name
        self.compute = ComputeElement(f"{name}-ce", hosts=hosts, speed=speed)
        self.storage = StorageElement(f"{name}-se", capacity=storage_capacity)

    def __repr__(self) -> str:
        return (
            f"<Site {self.name}: {self.compute.host_count} hosts, "
            f"{self.storage.used}/{self.storage.capacity} B used>"
        )
