"""Replica location service over the simulated grid.

Maps logical file names (LFNs) to the sites currently holding a copy,
and picks the cheapest source for a transfer given the topology.  This
is the grid-level counterpart of the schema-level
:class:`~repro.core.replica.Replica`: the schema records provenance-
relevant copies, while this service answers the planner's "where can I
fetch this from fastest?" question.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TransferError
from repro.grid.network import NetworkTopology


class ReplicaLocationService:
    """LFN -> {site: size} with best-source selection."""

    def __init__(self, network: Optional[NetworkTopology] = None):
        self._network = network
        self._locations: dict[str, dict[str, int]] = {}
        self.lookups = 0

    # -- registration -------------------------------------------------------

    def register(self, lfn: str, site: str, size: int) -> None:
        """Record that ``site`` holds a copy of ``lfn`` of ``size`` bytes."""
        if size < 0:
            raise TransferError("negative replica size")
        self._locations.setdefault(lfn, {})[site] = size

    def unregister(self, lfn: str, site: str) -> None:
        sites = self._locations.get(lfn)
        if not sites or site not in sites:
            raise TransferError(f"no replica of {lfn!r} at {site!r}")
        del sites[site]
        if not sites:
            del self._locations[lfn]

    # -- queries ----------------------------------------------------------------

    def sites_of(self, lfn: str) -> list[str]:
        """Sites currently holding ``lfn``, sorted."""
        self.lookups += 1
        return sorted(self._locations.get(lfn, ()))

    def has(self, lfn: str, site: Optional[str] = None) -> bool:
        sites = self._locations.get(lfn)
        if not sites:
            return False
        return site in sites if site is not None else True

    def size_of(self, lfn: str) -> int:
        """Size of ``lfn`` (replicas of one LFN share a size)."""
        sites = self._locations.get(lfn)
        if not sites:
            raise TransferError(f"unknown LFN {lfn!r}")
        return next(iter(sites.values()))

    def replica_count(self, lfn: str) -> int:
        return len(self._locations.get(lfn, ()))

    def lfns(self) -> list[str]:
        return sorted(self._locations)

    def best_source(self, lfn: str, destination: str) -> tuple[str, float]:
        """Cheapest site to fetch ``lfn`` from, for ``destination``.

        Returns ``(site, transfer_seconds)``.  A copy already at the
        destination wins with its (near-zero) local cost.
        """
        sites = self._locations.get(lfn)
        if not sites:
            raise TransferError(f"no replica of {lfn!r} anywhere")
        if self._network is None:
            site = destination if destination in sites else sorted(sites)[0]
            return site, 0.0
        best_site = None
        best_time = float("inf")
        for site, size in sorted(sites.items()):
            t = self._network.transfer_time(size, site, destination)
            if t < best_time:
                best_time = t
                best_site = site
        assert best_site is not None
        return best_site, best_time

    def total_replicas(self) -> int:
        return sum(len(sites) for sites in self._locations.values())
