"""Network topology and transfer cost model between grid sites.

Transfers cost ``latency + size / bandwidth`` over the configured link.
Links are directional; :meth:`NetworkTopology.connect` installs both
directions unless told otherwise.  Intra-site "transfers" cost the
site's local copy rate (effectively free for planning purposes but
non-zero so orderings stay deterministic).

The topology also keeps simple accounting (bytes and transfer counts
per link) that the replication benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import TransferError
from repro.observability.instrument import NULL, Instrumentation

#: Default wide-area link characteristics (roughly early-2000s WAN).
DEFAULT_BANDWIDTH = 10e6  # bytes/second
DEFAULT_LATENCY = 0.05  # seconds
#: Local (intra-site) copy rate.
LOCAL_BANDWIDTH = 400e6
LOCAL_LATENCY = 0.0005


@dataclass(frozen=True)
class Link:
    """One directional network link between two sites."""

    src: str
    dst: str
    bandwidth: float = DEFAULT_BANDWIDTH
    latency: float = DEFAULT_LATENCY

    def transfer_time(self, size_bytes: int) -> float:
        if size_bytes < 0:
            raise TransferError("negative transfer size")
        return self.latency + size_bytes / self.bandwidth


@dataclass
class LinkStats:
    """Accumulated traffic accounting for one directional link."""

    transfers: int = 0
    bytes_moved: int = 0
    seconds_busy: float = 0.0


class NetworkTopology:
    """The set of sites and the links between them."""

    def __init__(
        self,
        default_bandwidth: float = DEFAULT_BANDWIDTH,
        default_latency: float = DEFAULT_LATENCY,
        fully_connected: bool = True,
        instrumentation: Optional[Instrumentation] = None,
    ):
        self._sites: set[str] = set()
        self._links: dict[tuple[str, str], Link] = {}
        self._stats: dict[tuple[str, str], LinkStats] = {}
        self._default_bandwidth = default_bandwidth
        self._default_latency = default_latency
        self._fully_connected = fully_connected
        self.obs = instrumentation or NULL
        #: Optional :class:`repro.resilience.FaultInjector`; when set,
        #: timed transfers (``record_transfer`` with ``now``) consult it
        #: for link/site faults before moving any bytes.
        self.injector = None

    # -- construction ---------------------------------------------------------

    def add_site(self, name: str) -> None:
        self._sites.add(name)

    def sites(self) -> list[str]:
        return sorted(self._sites)

    def connect(
        self,
        a: str,
        b: str,
        bandwidth: Optional[float] = None,
        latency: Optional[float] = None,
        symmetric: bool = True,
    ) -> None:
        """Install a link (both directions unless ``symmetric=False``)."""
        self._sites.update((a, b))
        bw = bandwidth if bandwidth is not None else self._default_bandwidth
        lat = latency if latency is not None else self._default_latency
        self._links[(a, b)] = Link(a, b, bw, lat)
        if symmetric:
            self._links[(b, a)] = Link(b, a, bw, lat)

    # -- lookup --------------------------------------------------------------

    def link(self, src: str, dst: str) -> Link:
        """The link used from ``src`` to ``dst``.

        Same-site transfers use the fast local link.  When the topology
        is ``fully_connected``, missing inter-site links fall back to
        the default characteristics; otherwise they raise.
        """
        if src == dst:
            return Link(src, dst, LOCAL_BANDWIDTH, LOCAL_LATENCY)
        existing = self._links.get((src, dst))
        if existing is not None:
            return existing
        if self._fully_connected and src in self._sites and dst in self._sites:
            return Link(src, dst, self._default_bandwidth, self._default_latency)
        raise TransferError(f"no route from {src!r} to {dst!r}")

    def transfer_time(self, size_bytes: int, src: str, dst: str) -> float:
        """Seconds to move ``size_bytes`` from ``src`` to ``dst``."""
        return self.link(src, dst).transfer_time(size_bytes)

    # -- accounting -------------------------------------------------------------

    def record_transfer(
        self,
        size_bytes: int,
        src: str,
        dst: str,
        now: Optional[float] = None,
        lfn: str = "",
    ) -> float:
        """Account for a transfer and return its duration.

        When a fault injector is attached and the caller supplies the
        simulation time, the transfer may fail — a down endpoint or a
        mid-stream wide-area fault raises
        :class:`~repro.errors.TransferError` before any accounting.
        """
        if self.injector is not None and now is not None:
            reason = self.injector.transfer_fault(lfn, src, dst, now)
            if reason is not None:
                if self.obs.enabled:
                    self.obs.count(
                        "grid.transfer.faults",
                        help="transfers aborted by injected faults",
                    )
                raise TransferError(reason)
        duration = self.transfer_time(size_bytes, src, dst)
        stats = self._stats.setdefault((src, dst), LinkStats())
        stats.transfers += 1
        stats.bytes_moved += size_bytes
        stats.seconds_busy += duration
        if self.obs.enabled:
            scope = "local" if src == dst else "wide-area"
            self.obs.count(
                "grid.transfers", scope=scope, help="transfer count by scope"
            )
            self.obs.count(
                "grid.transfer.bytes",
                size_bytes,
                scope=scope,
                help="bytes moved by scope",
            )
            self.obs.observe(
                "grid.transfer.seconds",
                duration,
                scope=scope,
                help="per-transfer duration (sim time)",
            )
            self.obs.record(
                "grid.transfer",
                src=src,
                dst=dst,
                bytes=size_bytes,
                seconds=round(duration, 6),
            )
        return duration

    def stats(self, src: str, dst: str) -> LinkStats:
        return self._stats.get((src, dst), LinkStats())

    def total_bytes_moved(self, wide_area_only: bool = True) -> int:
        """Total bytes across all links (optionally excluding local)."""
        return sum(
            s.bytes_moved
            for (src, dst), s in self._stats.items()
            if not wide_area_only or src != dst
        )

    def total_transfers(self, wide_area_only: bool = True) -> int:
        return sum(
            s.transfers
            for (src, dst), s in self._stats.items()
            if not wide_area_only or src != dst
        )

    def reset_stats(self) -> None:
        self._stats.clear()


def star_topology(
    center: str,
    leaves: list[str],
    bandwidth: float = DEFAULT_BANDWIDTH,
    latency: float = DEFAULT_LATENCY,
) -> NetworkTopology:
    """A hub-and-spoke topology (tier-0 centre, tier-1 leaves)."""
    net = NetworkTopology(fully_connected=False)
    net.add_site(center)
    for leaf in leaves:
        net.connect(center, leaf, bandwidth=bandwidth, latency=latency)
    # Leaf-to-leaf routes go through two hops; approximate as half rate.
    for i, a in enumerate(leaves):
        for b in leaves[i + 1:]:
            net.connect(a, b, bandwidth=bandwidth / 2, latency=latency * 2)
    return net


def uniform_topology(
    sites: list[str],
    bandwidth: float = DEFAULT_BANDWIDTH,
    latency: float = DEFAULT_LATENCY,
) -> NetworkTopology:
    """A fully connected topology with identical links."""
    net = NetworkTopology(
        default_bandwidth=bandwidth,
        default_latency=latency,
        fully_connected=True,
    )
    for site in sites:
        net.add_site(site)
    return net
