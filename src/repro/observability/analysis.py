"""Post-hoc analytics over recorded runs.

Everything here consumes a :class:`~repro.observability.recorder.
RunRecord` — nothing needs the live process that produced it:

* :func:`critical_path` — the longest duration-weighted chain through
  the executed plan, found by walking the *actual schedule* backwards
  (each step's critical predecessor is the dependency that finished
  last, i.e. the one that released it).  Because the executors dispatch
  a step the moment its dependencies complete, the path's step
  durations tile the makespan; the report says what to speed up.
* :func:`compute_slack` — classical CPM slack per executed step (how
  much longer a step could have taken without moving the finish line);
  critical steps have zero slack.
* :func:`transformation_profiles` / :func:`site_profiles` — latency and
  throughput aggregates from the recorded invocations, the same shape
  :meth:`repro.estimator.cost.Estimator.train_on_record` learns from.
* :func:`chrome_trace` — Chrome Trace Event Format (the JSON object
  form), loadable in Perfetto / ``chrome://tracing``: spans become
  complete (``"X"``) events laned by recording thread, step attempts
  laned by site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.observability.recorder import RunRecord


@dataclass
class CriticalStep:
    """One step on the critical path."""

    step: str
    transformation: Optional[str]
    site: Optional[str]
    start: float
    end: float
    slack: float = 0.0
    attempts: int = 1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPathReport:
    """The critical path plus its makespan accounting."""

    steps: list[CriticalStep] = field(default_factory=list)
    makespan: float = 0.0
    clock: str = "sim"
    #: Per-step CPM slack for *every* executed step, not just the path.
    slack: dict[str, float] = field(default_factory=dict)

    @property
    def path_seconds(self) -> float:
        return sum(s.duration for s in self.steps)

    @property
    def coverage(self) -> float:
        """path_seconds / makespan (≈1.0 when dispatch never idled)."""
        if self.makespan <= 0:
            return 0.0
        return self.path_seconds / self.makespan

    def to_dict(self) -> dict[str, Any]:
        return {
            "makespan": self.makespan,
            "clock": self.clock,
            "path_seconds": self.path_seconds,
            "coverage": self.coverage,
            "steps": [
                {
                    "step": s.step,
                    "transformation": s.transformation,
                    "site": s.site,
                    "start": s.start,
                    "end": s.end,
                    "duration": s.duration,
                    "slack": s.slack,
                    "attempts": s.attempts,
                }
                for s in self.steps
            ],
            "slack": dict(sorted(self.slack.items())),
        }


def compute_slack(record: RunRecord) -> dict[str, float]:
    """CPM slack per executed step, from recorded durations.

    Forward pass computes each step's earliest finish over the recorded
    dependency DAG; the backward pass its latest finish against the
    project end; slack is the difference.  Dependencies that never ran
    (reused or pre-completed steps) are treated as instantly available.
    """
    timings = record.step_timings()
    if not timings:
        return {}
    deps = {
        name: [d for d in ds if d in timings]
        for name, ds in record.dependencies().items()
        if name in timings
    }
    for name in timings:
        deps.setdefault(name, [])
    durations = {n: t["end"] - t["start"] for n, t in timings.items()}

    # Both passes are iterative over a topological order: recursive
    # formulations hit Python's recursion limit near 10^3-deep chains,
    # and flight records now reach 10^5+ steps.
    dependents: dict[str, list[str]] = {n: [] for n in timings}
    indegree: dict[str, int] = {n: len(ds) for n, ds in deps.items()}
    for name, ds in deps.items():
        for d in ds:
            dependents[d].append(name)
    order: list[str] = [n for n, d in indegree.items() if d == 0]
    cursor = 0
    while cursor < len(order):
        name = order[cursor]
        cursor += 1
        for child in dependents[name]:
            indegree[child] -= 1
            if indegree[child] == 0:
                order.append(child)

    earliest_finish: dict[str, float] = {}
    for name in order:
        start = max(
            (earliest_finish[d] for d in deps[name]), default=0.0
        )
        earliest_finish[name] = start + durations[name]
    project_end = max(earliest_finish.values())

    latest_finish: dict[str, float] = {}
    for name in reversed(order):
        succ = dependents[name]
        if not succ:
            latest_finish[name] = project_end
        else:
            latest_finish[name] = min(
                latest_finish[c] - durations[c] for c in succ
            )

    return {
        name: max(latest_finish[name] - earliest_finish[name], 0.0)
        for name in timings
    }


def critical_path(record: RunRecord) -> CriticalPathReport:
    """Extract the critical path by walking the schedule backwards.

    Starts at the last step to finish; at each hop the critical
    predecessor is the executed dependency with the latest end time —
    the one whose completion released the step.  The chain's durations
    tile the makespan because dispatch is immediate on readiness.
    """
    timings = record.step_timings()
    report = CriticalPathReport()
    if not timings:
        return report
    report.clock = next(iter(timings.values())).get("clock", "sim")
    report.slack = compute_slack(record)
    deps = record.dependencies()
    plan_steps = record.plan_steps()

    # Built tail-first then reversed: list.insert(0, ...) is O(n) per
    # hop, which made deep chains quadratic to extract.
    chain: list[dict[str, Any]] = [
        max(timings.values(), key=lambda t: (t["end"], t["step"]))
    ]
    while True:
        executed = [
            timings[d]
            for d in deps.get(chain[-1]["step"], ())
            if d in timings
        ]
        if not executed:
            break
        chain.append(
            max(executed, key=lambda t: (t["end"], t["step"]))
        )
    chain.reverse()
    for timing in chain:
        name = timing["step"]
        report.steps.append(
            CriticalStep(
                step=name,
                transformation=(
                    plan_steps.get(name, {}).get("transformation")
                ),
                site=timing.get("site"),
                start=timing["start"],
                end=timing["end"],
                slack=report.slack.get(name, 0.0),
                attempts=timing.get("attempts", 1),
            )
        )
    makespan = record.makespan()
    report.makespan = (
        makespan if makespan is not None else report.path_seconds
    )
    return report


# -- latency / throughput profiles -------------------------------------------


def transformation_profiles(record: RunRecord) -> list[dict[str, Any]]:
    """Per-transformation latency+throughput from recorded invocations.

    This is exactly the estimator's food: (bytes_read, cpu_seconds)
    pairs aggregated per transformation, plus wall latency and
    bytes/second throughput.
    """
    plan_steps = record.plan_steps()
    groups: dict[str, list[dict[str, Any]]] = {}
    for inv in record.invocations:
        name = inv.get("derivation_name", "")
        entry = plan_steps.get(name)
        transformation = (
            entry["transformation"] if entry else f"?{name}"
        )
        groups.setdefault(transformation, []).append(inv)
    profiles = []
    for transformation in sorted(groups):
        invs = groups[transformation]
        ok = [i for i in invs if i.get("status") == "success"]
        walls = [i["usage"]["wall_seconds"] for i in ok]
        cpus = [i["usage"]["cpu_seconds"] for i in ok]
        read = sum(i["usage"]["bytes_read"] for i in ok)
        written = sum(i["usage"]["bytes_written"] for i in ok)
        wall_total = sum(walls)
        profiles.append(
            {
                "transformation": transformation,
                "runs": len(invs),
                "failures": len(invs) - len(ok),
                "mean_wall_seconds": (
                    wall_total / len(walls) if walls else 0.0
                ),
                "mean_cpu_seconds": (
                    sum(cpus) / len(cpus) if cpus else 0.0
                ),
                "bytes_read": read,
                "bytes_written": written,
                "throughput_bytes_per_second": (
                    read / wall_total if wall_total > 0 else 0.0
                ),
            }
        )
    return profiles


def site_profiles(record: RunRecord) -> list[dict[str, Any]]:
    """Per-site latency+throughput from recorded invocations."""
    groups: dict[str, list[dict[str, Any]]] = {}
    for inv in record.invocations:
        site = inv.get("context", {}).get("site", "?")
        groups.setdefault(site, []).append(inv)
    profiles = []
    for site in sorted(groups):
        invs = groups[site]
        ok = [i for i in invs if i.get("status") == "success"]
        walls = [i["usage"]["wall_seconds"] for i in ok]
        read = sum(i["usage"]["bytes_read"] for i in ok)
        wall_total = sum(walls)
        profiles.append(
            {
                "site": site,
                "runs": len(invs),
                "failures": len(invs) - len(ok),
                "busy_seconds": wall_total,
                "mean_wall_seconds": (
                    wall_total / len(walls) if walls else 0.0
                ),
                "throughput_bytes_per_second": (
                    read / wall_total if wall_total > 0 else 0.0
                ),
            }
        )
    return profiles


# -- Chrome trace (Perfetto) export ------------------------------------------


def chrome_trace(record: RunRecord) -> dict[str, Any]:
    """A Chrome Trace Event Format object for one recorded run.

    JSON Object Format: ``{"traceEvents": [...], "displayTimeUnit":
    "ms"}``.  Spans become complete (``"X"``) events in one lane per
    recording thread; step attempts become ``"X"`` events in one lane
    per site.  Timestamps are microseconds from the run's first event,
    in the run's dominant clock (sim for grid runs, wall otherwise).

    Spans relayed from worker processes (the ``worker_pid`` attribute,
    set by the process backend's telemetry merge) get their own
    Perfetto *process* track — ``pid`` is the real worker pid — so a
    ``backend="process"`` run renders as the parent process plus one
    track per worker instead of flattening every lane onto ``pid 1``.
    Profiled runs (schema v2 ``profile`` line) additionally get a
    ``profiler`` lane with one event per lifecycle-phase interval.
    """
    attempts = record.step_attempts
    clock = attempts[0].get("clock", "sim") if attempts else "wall"
    events: list[tuple[int, str, str, float, float, dict[str, Any]]] = []
    # (pid, lane, name, start, end, args)
    for attempt in attempts:
        events.append(
            (
                1,
                f"site {attempt.get('site') or '?'}",
                attempt["step"],
                float(attempt["start"]),
                float(attempt["end"]),
                {
                    "status": attempt.get("status"),
                    "attempt": attempt.get("attempt", 1),
                    "host": attempt.get("host"),
                },
            )
        )
    for span in record.spans:
        if clock == "sim":
            start, end = span.get("start_sim"), span.get("end_sim")
        else:
            start, end = span.get("start_wall"), span.get("end_wall")
        if start is None or end is None:
            continue
        args = dict(span.get("attributes") or {})
        args["status"] = span.get("status")
        try:
            pid = int(args.get("worker_pid", 1))
        except (TypeError, ValueError):
            pid = 1
        lane = f"thread {span.get('thread') or 'main'}"
        events.append(
            (pid, lane, span["name"], float(start), float(end), args)
        )
    if record.profile and clock == "wall":
        # Phase intervals are absolute wall stamps — the same clock
        # domain local step attempts already use.
        for phase, stat in sorted(
            record.profile.get("phases", {}).items()
        ):
            for interval in stat.get("intervals", ()):
                events.append(
                    (
                        1,
                        "profiler",
                        f"phase {phase}",
                        float(interval[0]),
                        float(interval[1]),
                        {"samples": stat.get("samples")},
                    )
                )

    trace_events: list[dict[str, Any]] = []
    if events:
        t0 = min(start for _, _, _, start, _, _ in events)
        pids = sorted({pid for pid, *_ in events})
        lanes_by_pid = {
            pid: sorted(
                {lane for p, lane, *_ in events if p == pid}
            )
            for pid in pids
        }
        tids = {
            (pid, lane): i + 1
            for pid in pids
            for i, lane in enumerate(lanes_by_pid[pid])
        }
        for pid in pids:
            label = (
                f"repro {record.run_id} ({clock} clock)"
                if pid == 1
                else f"worker {pid}"
            )
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
            for lane in lanes_by_pid[pid]:
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tids[(pid, lane)],
                        "args": {"name": lane},
                    }
                )
        for pid, lane, name, start, end, args in sorted(
            events, key=lambda e: (e[3], e[0], e[1], e[2])
        ):
            trace_events.append(
                {
                    "name": name,
                    "cat": "repro",
                    "ph": "X",
                    "pid": pid,
                    "tid": tids[(pid, lane)],
                    "ts": (start - t0) * 1e6,
                    "dur": max(end - start, 0.0) * 1e6,
                    "args": {
                        k: v for k, v in args.items() if v is not None
                    },
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_chrome_trace(trace: dict[str, Any]) -> list[str]:
    """Shape-check a trace object; returns problems (empty = valid).

    Covers the Trace Event JSON requirements Perfetto actually
    enforces: a ``traceEvents`` list whose entries carry ``name``/
    ``ph``/``pid``/``tid``, with ``ts`` and a non-negative ``dur`` on
    complete events.
    """
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"event {i}: missing {key!r}")
        phase = event.get("ph")
        if phase == "X":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"event {i}: X event without numeric ts")
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"event {i}: X event needs a non-negative dur"
                )
        elif phase == "M":
            if "args" not in event:
                problems.append(f"event {i}: metadata event without args")
        elif phase is not None and not isinstance(phase, str):
            problems.append(f"event {i}: ph must be a string")
    return problems


# -- text report --------------------------------------------------------------


def report_dict(record: RunRecord) -> dict[str, Any]:
    """The machine-readable ``repro report --json`` payload."""
    path = critical_path(record)
    event_counts: dict[str, int] = {}
    for event in record.events:
        kind = event.get("kind", "?")
        event_counts[kind] = event_counts.get(kind, 0) + 1
    statuses: dict[str, int] = {}
    for timing in record.step_timings().values():
        statuses[timing["status"]] = statuses.get(timing["status"], 0) + 1
    data = {
        "run_id": record.run_id,
        "schema_version": record.schema_version,
        "command": record.command,
        "status": record.status,
        "makespan": record.makespan(),
        "steps": statuses,
        "invocations": len(record.invocations),
        "events": dict(sorted(event_counts.items())),
        "critical_path": path.to_dict(),
        "transformation_profiles": transformation_profiles(record),
        "site_profiles": site_profiles(record),
    }
    # Only profiled (schema v2) runs carry the key: pre-profile
    # records keep producing byte-identical reports.
    if record.profile is not None:
        data["profile_phases"] = {
            name: {
                "seconds": stat.get("seconds", 0.0),
                "samples": stat.get("samples", 0),
                "peak_bytes": stat.get("peak_bytes", 0),
            }
            for name, stat in record.profile.get("phases", {}).items()
        }
    return data


def render_report(record: RunRecord) -> str:
    """The human-readable ``repro report`` text."""
    data = report_dict(record)
    path = data["critical_path"]
    lines = [
        f"run {data['run_id']}  status={data['status']}"
        + (f"  command={data['command']}" if data["command"] else ""),
    ]
    makespan = data["makespan"]
    if makespan is not None:
        lines.append(
            f"makespan {makespan:.3f}s ({path['clock']} clock)  "
            f"critical path {path['path_seconds']:.3f}s "
            f"({path['coverage'] * 100.0:.1f}% of makespan)"
        )
    if data["steps"]:
        summary = "  ".join(
            f"{status}={n}" for status, n in sorted(data["steps"].items())
        )
        lines.append(
            f"steps: {summary}  invocations: {data['invocations']}"
        )
    if path["steps"]:
        # Wall-clock records carry epoch timestamps; print the time
        # axis relative to the first path step either way.
        t0 = min(step["start"] for step in path["steps"])
        lines.append("")
        lines.append("critical path:")
        lines.append(
            f"  {'start':>10} {'end':>10} {'dur':>8} {'slack':>7}  "
            f"{'step':<28} {'transformation':<20} site"
        )
        for step in path["steps"]:
            lines.append(
                f"  {step['start'] - t0:>10.3f} {step['end'] - t0:>10.3f} "
                f"{step['duration']:>8.3f} {step['slack']:>7.3f}  "
                f"{step['step']:<28} "
                f"{step['transformation'] or '-':<20} "
                f"{step['site'] or '-'}"
            )
    if data["transformation_profiles"]:
        lines.append("")
        lines.append("transformation profiles:")
        lines.append(
            f"  {'transformation':<24} {'runs':>5} {'fail':>5} "
            f"{'mean wall':>10} {'mean cpu':>10} {'MB/s':>8}"
        )
        for profile in data["transformation_profiles"]:
            lines.append(
                f"  {profile['transformation']:<24} "
                f"{profile['runs']:>5} {profile['failures']:>5} "
                f"{profile['mean_wall_seconds']:>9.3f}s "
                f"{profile['mean_cpu_seconds']:>9.3f}s "
                f"{profile['throughput_bytes_per_second'] / 1e6:>8.2f}"
            )
    if data["site_profiles"]:
        lines.append("")
        lines.append("site profiles:")
        lines.append(
            f"  {'site':<16} {'runs':>5} {'fail':>5} "
            f"{'busy':>10} {'mean wall':>10} {'MB/s':>8}"
        )
        for profile in data["site_profiles"]:
            lines.append(
                f"  {profile['site']:<16} "
                f"{profile['runs']:>5} {profile['failures']:>5} "
                f"{profile['busy_seconds']:>9.3f}s "
                f"{profile['mean_wall_seconds']:>9.3f}s "
                f"{profile['throughput_bytes_per_second'] / 1e6:>8.2f}"
            )
    if data.get("profile_phases"):
        lines.append("")
        lines.append("profiled phases:")
        for name, stat in sorted(
            data["profile_phases"].items(),
            key=lambda kv: -kv[1]["seconds"],
        ):
            peak = stat["peak_bytes"]
            peak_note = f"  peak {peak / 1e6:.1f} MB" if peak else ""
            lines.append(
                f"  {name:<16} {stat['seconds']:8.3f}s "
                f"{stat['samples']:6d} samples{peak_note}"
            )
    if data["events"]:
        lines.append("")
        lines.append(
            "events: "
            + ", ".join(
                f"{kind} x{n}" for kind, n in data["events"].items()
            )
        )
    return "\n".join(lines) + "\n"
