"""Unified observability: tracing spans + metrics across the stack.

One :class:`Instrumentation` object (a :class:`Tracer` plus a
:class:`MetricsRegistry`) threads through catalog → planner →
executor → grid so a single ``materialize`` produces one span tree
and one metric namespace.  The default everywhere is :data:`NULL`,
a no-op handle, so uninstrumented call sites pay almost nothing.
"""

from repro.observability.export import (
    read_snapshot,
    render_metrics,
    render_span_tree,
    spans_to_jsonl,
    write_snapshot,
)
from repro.observability.instrument import (
    NULL,
    Instrumentation,
    NullInstrumentation,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import NullTracer, Span, Tracer

__all__ = [
    "NULL",
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NullInstrumentation",
    "NullTracer",
    "Span",
    "Tracer",
    "read_snapshot",
    "render_metrics",
    "render_span_tree",
    "spans_to_jsonl",
    "write_snapshot",
]
