"""Unified observability: tracing spans + metrics across the stack.

One :class:`Instrumentation` object (a :class:`Tracer` plus a
:class:`MetricsRegistry`) threads through catalog → planner →
executor → grid so a single ``materialize`` produces one span tree
and one metric namespace.  The default everywhere is :data:`NULL`,
a no-op handle, so uninstrumented call sites pay almost nothing.

Persistent observability lives next door: the
:class:`~repro.observability.recorder.FlightRecorder` streams one
run's spans/metrics/invocations/events to an append-only JSONL record
under the workspace, and :mod:`repro.observability.analysis` turns a
loaded :class:`~repro.observability.recorder.RunRecord` into
critical-path reports, latency/throughput profiles, and Chrome
(Perfetto) traces.
"""

from repro.observability.analysis import (
    chrome_trace,
    critical_path,
    render_report,
    report_dict,
    site_profiles,
    transformation_profiles,
    validate_chrome_trace,
)
from repro.observability.diff import (
    RunDiff,
    TransformationDelta,
    diff_records,
    regression_report,
)
from repro.observability.export import (
    openmetrics_snapshot,
    read_snapshot,
    render_metrics,
    render_span_tree,
    spans_to_jsonl,
    to_openmetrics,
    validate_openmetrics,
    write_snapshot,
)
from repro.observability.health import (
    HealthReport,
    SiteHealth,
    SLOPolicy,
    grid_health,
    health_metrics,
    health_penalties,
)
from repro.observability.history import HistoryStore
from repro.observability.instrument import (
    NULL,
    Instrumentation,
    NullInstrumentation,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.profiler import (
    SamplingProfiler,
    collapsed_stacks,
    hot_frames,
    render_profile,
)
from repro.observability.progress import ProgressSink, ProgressTicker
from repro.observability.recorder import (
    RECORD_SCHEMA_VERSION,
    FlightRecorder,
    RunRecord,
    find_run,
    list_runs,
    prune_runs,
)
from repro.observability.tracing import NullTracer, Span, Tracer

__all__ = [
    "NULL",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "HealthReport",
    "Histogram",
    "HistoryStore",
    "Instrumentation",
    "MetricsRegistry",
    "NullInstrumentation",
    "NullTracer",
    "ProgressSink",
    "ProgressTicker",
    "RECORD_SCHEMA_VERSION",
    "RunDiff",
    "RunRecord",
    "SLOPolicy",
    "SamplingProfiler",
    "SiteHealth",
    "Span",
    "Tracer",
    "TransformationDelta",
    "chrome_trace",
    "collapsed_stacks",
    "critical_path",
    "diff_records",
    "find_run",
    "grid_health",
    "health_metrics",
    "health_penalties",
    "hot_frames",
    "list_runs",
    "openmetrics_snapshot",
    "prune_runs",
    "read_snapshot",
    "regression_report",
    "render_metrics",
    "render_profile",
    "render_report",
    "render_span_tree",
    "report_dict",
    "site_profiles",
    "spans_to_jsonl",
    "to_openmetrics",
    "transformation_profiles",
    "validate_chrome_trace",
    "validate_openmetrics",
    "write_snapshot",
]
