"""Run-diff and regression detection over flight records.

Two complementary entry points:

* :func:`diff_records` — pairwise comparison of two parsed
  :class:`~repro.observability.recorder.RunRecord` objects: makespan,
  critical-path seconds, retry/fault/failure counts, and
  per-transformation mean step durations, with each delta flagged
  significant or not;
* :func:`regression_report` — one candidate run against a *baseline
  population* pooled from the
  :class:`~repro.observability.history.HistoryStore`, the shape a CI
  regression gate wants ("is today's run slower than the last N?").

Significance is deliberately conservative and distribution-free at
its core: a delta is flagged when **both** the relative change exceeds
``threshold_pct`` **and** the absolute change exceeds ``abs_floor``
(simulated timings are often tiny and exactly reproducible, so a pure
relative test would scream over microseconds).  When both sides carry
enough samples (n ≥ 2) *and* show actual variance, a Welch t statistic
is additionally required to exceed :data:`T_THRESHOLD` — this quiets
flapping on noisy wall-clock runs without ever muting the
deterministic simulation case, whose zero variance always defers to
the relative test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.observability.analysis import critical_path
from repro.observability.recorder import RunRecord

#: Welch t statistic required when a variance-based test is possible.
T_THRESHOLD = 2.0

#: Default relative-change gate, in percent.
DEFAULT_THRESHOLD_PCT = 25.0

#: Default absolute-change floor, in seconds.
DEFAULT_ABS_FLOOR = 1e-3


def _mean(xs: list[float]) -> float:
    return sum(xs) / len(xs) if xs else 0.0


def _variance(xs: list[float]) -> float:
    if len(xs) < 2:
        return 0.0
    mu = _mean(xs)
    return sum((x - mu) ** 2 for x in xs) / (len(xs) - 1)


def welch_t(a: list[float], b: list[float]) -> Optional[float]:
    """Welch's t statistic, or None when variance can't support one."""
    if len(a) < 2 or len(b) < 2:
        return None
    pooled = _variance(a) / len(a) + _variance(b) / len(b)
    if pooled <= 0.0:
        return None
    return abs(_mean(b) - _mean(a)) / math.sqrt(pooled)


def is_significant(
    base: list[float],
    cand: list[float],
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    abs_floor: float = DEFAULT_ABS_FLOOR,
) -> bool:
    """Whether the base→cand shift clears the significance gate."""
    base_mean, cand_mean = _mean(base), _mean(cand)
    delta = cand_mean - base_mean
    if abs(delta) < abs_floor:
        return False
    if base_mean > 0:
        relative_pct = abs(delta) / base_mean * 100.0
    else:
        relative_pct = math.inf
    if relative_pct < threshold_pct:
        return False
    t = welch_t(base, cand)
    if t is not None and t < T_THRESHOLD:
        return False
    return True


@dataclass
class TransformationDelta:
    """One transformation's timing shift between base and candidate."""

    transformation: str
    base_mean: float
    cand_mean: float
    base_n: int
    cand_n: int
    significant: bool

    @property
    def delta(self) -> float:
        return self.cand_mean - self.base_mean

    @property
    def delta_pct(self) -> float:
        if self.base_mean > 0:
            return self.delta / self.base_mean * 100.0
        return math.inf if self.delta > 0 else 0.0

    @property
    def regressed(self) -> bool:
        return self.significant and self.delta > 0

    @property
    def improved(self) -> bool:
        return self.significant and self.delta < 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "transformation": self.transformation,
            "base_mean": self.base_mean,
            "cand_mean": self.cand_mean,
            "base_n": self.base_n,
            "cand_n": self.cand_n,
            "delta": self.delta,
            "delta_pct": (
                None if math.isinf(self.delta_pct) else self.delta_pct
            ),
            "significant": self.significant,
        }


@dataclass
class RunDiff:
    """The full comparison between a base and a candidate run."""

    base_id: str
    cand_id: str
    makespan: tuple[Optional[float], Optional[float]]
    critical_path: tuple[Optional[float], Optional[float]]
    retries: tuple[int, int]
    faults: tuple[int, int]
    failures: tuple[int, int]
    transformations: list[TransformationDelta] = field(
        default_factory=list
    )
    #: Profiled lifecycle-phase shifts (schema v2 runs only; the
    #: ``transformation`` field of each delta holds the phase name).
    #: Empty whenever either side was not profiled.
    phases: list[TransformationDelta] = field(default_factory=list)
    makespan_significant: bool = False
    threshold_pct: float = DEFAULT_THRESHOLD_PCT

    @property
    def regressions(self) -> list[TransformationDelta]:
        return [d for d in self.transformations if d.regressed]

    @property
    def improvements(self) -> list[TransformationDelta]:
        return [d for d in self.transformations if d.improved]

    @property
    def phase_regressions(self) -> list[TransformationDelta]:
        return [d for d in self.phases if d.regressed]

    @property
    def makespan_regressed(self) -> bool:
        base, cand = self.makespan
        return (
            self.makespan_significant
            and base is not None
            and cand is not None
            and cand > base
        )

    @property
    def clean(self) -> bool:
        """No regressions anywhere (improvements don't count)."""
        return (
            not self.regressions
            and not self.phase_regressions
            and not self.makespan_regressed
        )

    def to_dict(self) -> dict[str, Any]:
        out = {
            "base": self.base_id,
            "candidate": self.cand_id,
            "makespan": {
                "base": self.makespan[0],
                "candidate": self.makespan[1],
                "significant": self.makespan_significant,
            },
            "critical_path": {
                "base": self.critical_path[0],
                "candidate": self.critical_path[1],
            },
            "retries": {
                "base": self.retries[0],
                "candidate": self.retries[1],
            },
            "faults": {
                "base": self.faults[0],
                "candidate": self.faults[1],
            },
            "failures": {
                "base": self.failures[0],
                "candidate": self.failures[1],
            },
            "transformations": [
                d.to_dict() for d in self.transformations
            ],
            "regressions": [
                d.transformation for d in self.regressions
            ],
            "improvements": [
                d.transformation for d in self.improvements
            ],
            "clean": self.clean,
            "threshold_pct": self.threshold_pct,
        }
        # Phase keys appear only when a phase comparison happened, so
        # diffs of pre-profile (schema v1) records serialize exactly
        # as they did before the profiler existed.
        if self.phases:
            out["phases"] = [d.to_dict() for d in self.phases]
            out["phase_regressions"] = [
                d.transformation for d in self.phase_regressions
            ]
        return out

    def render(self) -> str:
        lines = [f"diff {self.base_id} -> {self.cand_id}"]

        def fmt(value: Optional[float]) -> str:
            return f"{value:.3f}s" if value is not None else "?"

        marker = " **" if self.makespan_significant else ""
        lines.append(
            f"  makespan       {fmt(self.makespan[0])} -> "
            f"{fmt(self.makespan[1])}{marker}"
        )
        lines.append(
            f"  critical path  {fmt(self.critical_path[0])} -> "
            f"{fmt(self.critical_path[1])}"
        )
        for label, pair in (
            ("retries", self.retries),
            ("faults", self.faults),
            ("failures", self.failures),
        ):
            lines.append(f"  {label:<14} {pair[0]} -> {pair[1]}")
        if self.transformations:
            lines.append("  per-transformation mean step duration:")
            for d in sorted(
                self.transformations,
                key=lambda d: -abs(d.delta),
            ):
                pct = (
                    f"{d.delta_pct:+.1f}%"
                    if not math.isinf(d.delta_pct)
                    else "new"
                )
                flag = " **" if d.significant else ""
                lines.append(
                    f"    {d.transformation:<20} "
                    f"{d.base_mean:.3f}s -> {d.cand_mean:.3f}s "
                    f"({pct}, n={d.base_n}->{d.cand_n}){flag}"
                )
        if self.phases:
            lines.append("  profiled phase seconds:")
            for d in sorted(self.phases, key=lambda d: -abs(d.delta)):
                pct = (
                    f"{d.delta_pct:+.1f}%"
                    if not math.isinf(d.delta_pct)
                    else "new"
                )
                flag = " **" if d.significant else ""
                lines.append(
                    f"    {d.transformation:<20} "
                    f"{d.base_mean:.3f}s -> {d.cand_mean:.3f}s "
                    f"({pct}, n={d.base_n}->{d.cand_n}){flag}"
                )
        regressed = [d.transformation for d in self.regressions]
        regressed.extend(
            f"phase:{d.transformation}" for d in self.phase_regressions
        )
        if regressed:
            lines.append(f"  REGRESSED: {', '.join(regressed)}")
        elif self.makespan_regressed:
            lines.append("  REGRESSED: makespan")
        else:
            lines.append("  no significant regressions")
        return "\n".join(lines)


def _transformation_durations(
    record: RunRecord,
) -> dict[str, list[float]]:
    """Successful per-step durations grouped by transformation."""
    plan_steps = record.plan_steps()
    out: dict[str, list[float]] = {}
    for name, timing in sorted(record.step_timings().items()):
        if timing["status"] != "success":
            continue
        entry = plan_steps.get(name)
        tr = entry["transformation"] if entry else name
        out.setdefault(tr, []).append(
            max(0.0, float(timing["end"]) - float(timing["start"]))
        )
    return out


def _retries(record: RunRecord) -> int:
    timings = record.step_timings()
    return sum(max(0, t["attempts"] - 1) for t in timings.values())


def _faults(record: RunRecord) -> int:
    return sum(
        1 for e in record.events if e.get("kind") == "fault.injected"
    )


def _failures(record: RunRecord) -> int:
    return sum(
        1
        for t in record.step_timings().values()
        if t["status"] != "success"
    )


def _phase_samples(record: RunRecord) -> dict[str, list[float]]:
    """Per-phase wall seconds from a profiled record ({} otherwise)."""
    if not record.profile:
        return {}
    return {
        name: [float(stat.get("seconds", 0.0))]
        for name, stat in record.profile.get("phases", {}).items()
    }


def _critical_seconds(record: RunRecord) -> Optional[float]:
    try:
        report = critical_path(record)
    except Exception:
        return None
    return report.path_seconds if report.steps else None


def diff_durations(
    base_id: str,
    cand_id: str,
    base_samples: dict[str, list[float]],
    cand_samples: dict[str, list[float]],
    *,
    makespan: tuple[Optional[float], Optional[float]] = (None, None),
    critical: tuple[Optional[float], Optional[float]] = (None, None),
    retries: tuple[int, int] = (0, 0),
    faults: tuple[int, int] = (0, 0),
    failures: tuple[int, int] = (0, 0),
    base_phases: Optional[dict[str, list[float]]] = None,
    cand_phases: Optional[dict[str, list[float]]] = None,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    abs_floor: float = DEFAULT_ABS_FLOOR,
) -> RunDiff:
    """Build a :class:`RunDiff` from pre-extracted duration samples.

    The shared core of :func:`diff_records` (samples from two parsed
    records) and :func:`regression_report` (baseline samples pooled
    from the history store).  ``base_phases``/``cand_phases`` carry
    profiled lifecycle-phase seconds; phase deltas are computed only
    when *both* sides have them, so an unprofiled run never gates on
    phases.
    """

    def build_deltas(
        base_map: dict[str, list[float]],
        cand_map: dict[str, list[float]],
    ) -> list[TransformationDelta]:
        deltas = []
        for tr in sorted(set(base_map) | set(cand_map)):
            base = base_map.get(tr, [])
            cand = cand_map.get(tr, [])
            if not cand:
                continue  # vanished from candidate: no timing signal
            deltas.append(
                TransformationDelta(
                    transformation=tr,
                    base_mean=_mean(base),
                    cand_mean=_mean(cand),
                    base_n=len(base),
                    cand_n=len(cand),
                    significant=bool(base)
                    and is_significant(
                        base, cand, threshold_pct, abs_floor
                    ),
                )
            )
        return deltas

    deltas = build_deltas(base_samples, cand_samples)
    phase_deltas: list[TransformationDelta] = []
    if base_phases and cand_phases:
        phase_deltas = build_deltas(base_phases, cand_phases)
    makespan_significant = (
        makespan[0] is not None
        and makespan[1] is not None
        and is_significant(
            [makespan[0]], [makespan[1]], threshold_pct, abs_floor
        )
    )
    return RunDiff(
        base_id=base_id,
        cand_id=cand_id,
        makespan=makespan,
        critical_path=critical,
        retries=retries,
        faults=faults,
        failures=failures,
        transformations=deltas,
        phases=phase_deltas,
        makespan_significant=makespan_significant,
        threshold_pct=threshold_pct,
    )


def diff_records(
    base: RunRecord,
    cand: RunRecord,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    abs_floor: float = DEFAULT_ABS_FLOOR,
) -> RunDiff:
    """Compare two flight records end to end."""
    return diff_durations(
        base.run_id,
        cand.run_id,
        _transformation_durations(base),
        _transformation_durations(cand),
        makespan=(base.makespan(), cand.makespan()),
        critical=(_critical_seconds(base), _critical_seconds(cand)),
        retries=(_retries(base), _retries(cand)),
        faults=(_faults(base), _faults(cand)),
        failures=(_failures(base), _failures(cand)),
        base_phases=_phase_samples(base),
        cand_phases=_phase_samples(cand),
        threshold_pct=threshold_pct,
        abs_floor=abs_floor,
    )


def regression_report(
    history: Any,
    candidate: RunRecord,
    baseline_ids: Optional[Iterable[str]] = None,
    window: int = 20,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    abs_floor: float = DEFAULT_ABS_FLOOR,
) -> RunDiff:
    """Compare one candidate run against a pooled historical baseline.

    ``baseline_ids`` defaults to the last ``window`` ingested runs,
    excluding the candidate itself.  Baseline duration samples are
    pooled across all baseline runs, so a one-off hiccup in a single
    old run doesn't dominate the mean.
    """
    if baseline_ids is None:
        ids = [
            rid
            for rid in history.run_ids()
            if rid != candidate.run_id
        ]
        baseline_ids = ids[-window:]
    else:
        baseline_ids = [
            rid for rid in baseline_ids if rid != candidate.run_id
        ]
    if not baseline_ids:
        raise ValueError("no baseline runs to regress against")
    base_rows = [history.run_row(rid) for rid in baseline_ids]
    missing = [
        rid
        for rid, row in zip(baseline_ids, base_rows)
        if row is None
    ]
    if missing:
        raise ValueError(
            f"baseline runs not in history: {', '.join(missing)}"
        )
    base_makespans = [
        float(row["makespan"])
        for row in base_rows
        if row["makespan"] is not None
    ]
    base_retries = sum(int(row["retries"]) for row in base_rows)
    base_faults = sum(int(row["faults"]) for row in base_rows)
    base_failures = sum(int(row["steps_failed"]) for row in base_rows)
    base_label = (
        baseline_ids[0]
        if len(baseline_ids) == 1
        else f"baseline[{len(baseline_ids)}]"
    )
    cand_makespan = candidate.makespan()
    diff = diff_durations(
        base_label,
        candidate.run_id,
        history.duration_samples(baseline_ids),
        _transformation_durations(candidate),
        makespan=(
            _mean(base_makespans) if base_makespans else None,
            cand_makespan,
        ),
        critical=(None, _critical_seconds(candidate)),
        retries=(base_retries, _retries(candidate)),
        faults=(base_faults, _faults(candidate)),
        failures=(base_failures, _failures(candidate)),
        base_phases=(
            history.phase_seconds(baseline_ids)
            if hasattr(history, "phase_seconds")
            else None
        ),
        cand_phases=_phase_samples(candidate),
        threshold_pct=threshold_pct,
        abs_floor=abs_floor,
    )
    # With n >= 2 baseline makespans, let the variance-aware test
    # arbitrate instead of the two-point comparison above.
    if len(base_makespans) >= 2 and cand_makespan is not None:
        diff.makespan_significant = is_significant(
            base_makespans,
            [cand_makespan],
            threshold_pct,
            abs_floor,
        )
    return diff
