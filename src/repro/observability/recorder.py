"""The workflow flight recorder: persistent per-run observability.

PR 1's spans and metrics evaporate when the process exits; the CMS
production experience (PAPERS.md) shows that operating a virtual data
grid at scale lives on *run-level* performance and audit records.  The
flight recorder captures every ``materialize``/``run`` into an
append-only JSONL file under the workspace::

    runs/<run_id>/record.jsonl

Each line is one JSON object with a ``type`` tag.  The first line is
always ``meta`` (schema version, run id, command); the stream then
interleaves, in arrival order:

``plan``
    the executed :class:`~repro.planner.dag.Plan`: steps with their
    transformation, cpu estimates, declared inputs/outputs, and the
    dependency edges (what critical-path analysis walks);
``invocation``
    one :class:`~repro.core.invocation.Invocation` with its full
    :class:`~repro.core.invocation.ResourceUsage` — the estimator's
    training data;
``step``
    one scheduler/executor step attempt with start/end stamps in its
    clock domain (``sim`` for grid runs, ``wall`` for local runs);
``event``
    point events: retries, circuit-breaker transitions, injected
    faults, straggler timeouts, breaker deferrals;
``sample``
    scheduler frontier occupancy (ready / in-flight / completed);
``span`` / ``metrics`` / ``result``
    written by :meth:`FlightRecorder.finalize`: the whole span tree,
    the final metric snapshot, and the run summary.

Writes are serialized by a lock and flushed per line, so the record
is truthful under ``workers=N`` and survives a crash mid-run (every
completed line is valid JSON).  The :class:`RunRecord` reader
reconstructs a finished (or crashed) run for post-hoc queries;
analytics on top live in :mod:`repro.observability.analysis`.

The schema is versioned (:data:`RECORD_SCHEMA_VERSION`); readers
reject records from a future major version rather than misreading
them.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Optional

#: Bump on breaking changes to the line schema.
#:
#: - v1: meta / plan / invocation / step / event / sample / span /
#:   metrics / result lines.
#: - v2: adds the optional ``profile`` line (sampling-profiler output,
#:   written at finalize when a profiler ran).  Pure addition: v1
#:   records load under the v2 reader unchanged, with
#:   ``RunRecord.profile`` left ``None``.
RECORD_SCHEMA_VERSION = 2

#: Per-run directory layout under the workspace.
RUNS_DIRNAME = "runs"
RECORD_FILENAME = "record.jsonl"

_run_counter = itertools.count(1)


def new_run_id(now: Optional[float] = None) -> str:
    """A workspace-unique run id: timestamp + pid + process ordinal."""
    stamp = time.strftime(
        "%Y%m%d-%H%M%S", time.localtime(now if now is not None else time.time())
    )
    return f"run-{stamp}-{os.getpid() % 0x10000:04x}{next(_run_counter):02d}"


class FlightRecorder:
    """Appends one run's observability stream to ``record.jsonl``.

    Attach it to a live :class:`~repro.observability.Instrumentation`
    (``obs.attach_recorder(recorder)``) and the instrumented executors,
    scheduler and fault injector write through it; call
    :meth:`finalize` once the run reaches a terminal state.  All
    methods are safe to call from pool threads.
    """

    def __init__(
        self,
        directory: str | Path,
        run_id: str,
        command: str = "",
        **meta: Any,
    ):
        self.run_id = run_id
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / RECORD_FILENAME
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        self._closed = False
        self._write(
            "meta",
            schema_version=RECORD_SCHEMA_VERSION,
            run_id=run_id,
            command=command,
            started_at=time.time(),
            pid=os.getpid(),
            **meta,
        )

    @classmethod
    def start(
        cls,
        runs_root: str | Path,
        run_id: Optional[str] = None,
        command: str = "",
        **meta: Any,
    ) -> "FlightRecorder":
        """Open a recorder at ``<runs_root>/<run_id>/record.jsonl``."""
        run_id = run_id or new_run_id()
        return cls(Path(runs_root) / run_id, run_id, command=command, **meta)

    # -- line writer ---------------------------------------------------------

    def _write(self, type_: str, **fields: Any) -> None:
        if self._closed:
            return
        fields["type"] = type_
        if "t" not in fields:
            fields["t"] = time.time()
        line = json.dumps(fields, sort_keys=True, default=str)
        with self._lock:
            if self._closed:
                return
            self._handle.write(line + "\n")
            # Flush per line: a crashed run keeps everything recorded
            # up to its last completed write.
            self._handle.flush()

    # -- recording hooks -----------------------------------------------------

    def event(self, kind: str, **fields: Any) -> None:
        """A point event (retry, breaker transition, fault, timeout)."""
        self._write("event", kind=kind, **fields)

    def sample(
        self,
        ready: int,
        in_flight: int,
        completed: int,
        total: int,
        sim: Optional[float] = None,
    ) -> None:
        """One frontier occupancy sample."""
        self._write(
            "sample",
            ready=ready,
            in_flight=in_flight,
            completed=completed,
            total=total,
            sim=sim,
        )

    def plan(self, plan: Any) -> None:
        """Record the executed plan's DAG (steps + dependency edges)."""
        steps = []
        for name, step in sorted(plan.steps.items()):
            steps.append(
                {
                    "name": name,
                    "transformation": step.transformation.name,
                    "cpu_seconds": step.cpu_seconds,
                    "inputs": list(step.inputs),
                    "outputs": list(step.outputs),
                    "deps": sorted(plan.dependencies.get(name, ())),
                }
            )
        self._write(
            "plan",
            targets=list(plan.targets),
            steps=steps,
            reused=sorted(plan.reused),
            sources=sorted(plan.sources),
        )

    def invocation(self, invocation: Any) -> None:
        """Record one invocation (with its full ``ResourceUsage``)."""
        self._write("invocation", invocation=invocation.to_dict())

    def step(
        self,
        name: str,
        status: str,
        start: float,
        end: float,
        clock: str = "sim",
        **fields: Any,
    ) -> None:
        """Record one step attempt with stamps in its clock domain."""
        self._write(
            "step",
            step=name,
            status=status,
            start=start,
            end=end,
            clock=clock,
            **fields,
        )

    def profile(self, profile: dict[str, Any]) -> None:
        """Record a sampling-profiler report (schema v2).

        One line per run, written just before :meth:`finalize` by the
        CLI's ``--profile`` path; readers on schema v1 never see it.
        """
        self._write("profile", profile=profile)

    # -- finalization --------------------------------------------------------

    def finalize(
        self, obs: Any = None, status: str = "ok", **fields: Any
    ) -> None:
        """Write spans + metrics + the run summary, then close.

        Idempotent: the second call is a no-op, so ``finally`` blocks
        can call it unconditionally.
        """
        if self._closed:
            return
        if obs is not None:
            for span in obs.tracer.spans():
                self._write("span", **span.to_dict())
            self._write("metrics", metrics=obs.metrics.to_dict())
        self._write("result", status=status, finished_at=time.time(), **fields)
        self.close()

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._handle.close()

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and not self._closed:
            self.finalize(status="error", error=f"{exc_type.__name__}: {exc}")
        self.close()


class RunRecord:
    """A parsed flight record, reconstructed for post-hoc queries.

    ``truncated`` is set by :meth:`load` when the file ended in a torn
    final line (the signature of a crash mid-write): the valid prefix
    is still a faithful record of everything that completed.
    """

    def __init__(
        self,
        path: Path,
        lines: list[dict[str, Any]],
        truncated: bool = False,
    ):
        self.path = path
        self.truncated = truncated
        self.meta: dict[str, Any] = {}
        self.plan: Optional[dict[str, Any]] = None
        self.spans: list[dict[str, Any]] = []
        self.invocations: list[dict[str, Any]] = []
        self.step_attempts: list[dict[str, Any]] = []
        self.events: list[dict[str, Any]] = []
        self.samples: list[dict[str, Any]] = []
        self.metrics: dict[str, dict] = {}
        self.result: dict[str, Any] = {}
        #: Sampling-profiler report (schema v2+), or ``None`` — every
        #: consumer treats the absence as "run was not profiled".
        self.profile: Optional[dict[str, Any]] = None
        for line in lines:
            kind = line.get("type")
            if kind == "meta":
                self.meta = line
            elif kind == "plan":
                self.plan = line
            elif kind == "span":
                self.spans.append(line)
            elif kind == "invocation":
                self.invocations.append(line["invocation"])
            elif kind == "step":
                self.step_attempts.append(line)
            elif kind == "event":
                self.events.append(line)
            elif kind == "sample":
                self.samples.append(line)
            elif kind == "metrics":
                self.metrics = line.get("metrics", {})
            elif kind == "profile":
                self.profile = line.get("profile")
            elif kind == "result":
                self.result = line

    # -- loading -------------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "RunRecord":
        """Load a record from a ``record.jsonl`` path or a run dir.

        A torn *final* line — the only corruption a crash can produce,
        because the recorder flushes one complete line at a time — is
        dropped and the record is flagged ``truncated``.  Unparseable
        lines anywhere earlier mean the file was damaged some other
        way, and raise :class:`ValueError` rather than misreading it.
        """
        path = Path(path)
        if path.is_dir():
            path = path / RECORD_FILENAME
        if not path.is_file():
            raise FileNotFoundError(f"no run record at {path}")
        raw_lines = [
            raw.strip()
            for raw in path.read_text(encoding="utf-8").splitlines()
            if raw.strip()
        ]
        lines: list[dict[str, Any]] = []
        truncated = False
        for i, raw in enumerate(raw_lines):
            try:
                lines.append(json.loads(raw))
            except json.JSONDecodeError:
                # The recorder flushes whole lines, meta first: a crash
                # can only tear the *final* line, and a valid prefix
                # always remains.  Anything else is real corruption.
                if i == len(raw_lines) - 1 and lines:
                    truncated = True
                    break
                raise ValueError(
                    f"run record {path} is corrupt at line {i + 1} "
                    "(not a torn final line)"
                ) from None
        record = cls(path, lines, truncated=truncated)
        version = record.schema_version
        if version > RECORD_SCHEMA_VERSION:
            raise ValueError(
                f"run record {path} has schema version {version}; this "
                f"reader understands <= {RECORD_SCHEMA_VERSION}"
            )
        return record

    # -- identity ------------------------------------------------------------

    @property
    def run_id(self) -> str:
        return self.meta.get("run_id", self.path.parent.name)

    @property
    def schema_version(self) -> int:
        return int(self.meta.get("schema_version", 0))

    @property
    def command(self) -> str:
        return self.meta.get("command", "")

    @property
    def status(self) -> str:
        """Terminal status, or ``"crashed"`` when no result was written."""
        return self.result.get("status", "crashed")

    @property
    def finished(self) -> bool:
        return bool(self.result)

    # -- derived views -------------------------------------------------------

    def plan_steps(self) -> dict[str, dict[str, Any]]:
        """Step name -> the plan record's step entry."""
        if not self.plan:
            return {}
        return {entry["name"]: entry for entry in self.plan["steps"]}

    def dependencies(self) -> dict[str, set[str]]:
        return {
            name: set(entry.get("deps", ()))
            for name, entry in self.plan_steps().items()
        }

    def transformation_of(self, step: str) -> Optional[str]:
        entry = self.plan_steps().get(step)
        return entry["transformation"] if entry else None

    def step_timings(self) -> dict[str, dict[str, Any]]:
        """Step name -> merged timing over its attempts.

        ``start`` is the first attempt's start (a retried step's clock
        keeps running across backoff waits), ``end`` the last attempt's
        end, ``status`` the terminal attempt's status; ``attempts``
        counts what actually ran.
        """
        merged: dict[str, dict[str, Any]] = {}
        for attempt in self.step_attempts:
            name = attempt["step"]
            entry = merged.get(name)
            if entry is None:
                entry = merged[name] = {
                    "step": name,
                    "start": attempt["start"],
                    "end": attempt["end"],
                    "status": attempt["status"],
                    "clock": attempt.get("clock", "sim"),
                    "site": attempt.get("site"),
                    "attempts": 0,
                }
            entry["start"] = min(entry["start"], attempt["start"])
            if attempt["end"] >= entry["end"]:
                entry["end"] = attempt["end"]
                entry["status"] = attempt["status"]
                if attempt.get("site") is not None:
                    entry["site"] = attempt.get("site")
            entry["attempts"] += 1
        return merged

    def makespan(self) -> Optional[float]:
        """The recorded makespan, preferring the result line."""
        if "makespan" in self.result:
            return float(self.result["makespan"])
        timings = self.step_timings()
        if not timings:
            return None
        start = min(t["start"] for t in timings.values())
        end = max(t["end"] for t in timings.values())
        return end - start

    def span_children(self) -> dict[Optional[int], list[dict[str, Any]]]:
        children: dict[Optional[int], list[dict[str, Any]]] = {}
        for span in self.spans:
            children.setdefault(span.get("parent_id"), []).append(span)
        for siblings in children.values():
            siblings.sort(key=lambda s: s.get("span_id", 0))
        return children

    def counter_total(self, name: str) -> float:
        """Sum of one recorded counter across label sets (0 if absent)."""
        entry = self.metrics.get(name)
        if not entry:
            return 0.0
        return sum(s.get("value", 0) for s in entry.get("series", ()))


def list_runs(runs_root: str | Path) -> list[RunRecord]:
    """All readable run records under ``runs_root``, oldest first."""
    root = Path(runs_root)
    if not root.is_dir():
        return []
    records = []
    for child in sorted(root.iterdir()):
        if (child / RECORD_FILENAME).is_file():
            try:
                records.append(RunRecord.load(child))
            except (ValueError, json.JSONDecodeError, OSError):
                continue
    records.sort(key=lambda r: (r.meta.get("started_at", 0), r.run_id))
    return records


def prune_runs(runs_root: str | Path, keep: int) -> list[str]:
    """Delete the oldest recorded runs, keeping the ``keep`` newest.

    Retention GC for ``<workspace>/runs/``: the per-run directories
    (record, exported traces) of everything older than the ``keep``
    most recent runs are removed.  Returns the pruned run ids, oldest
    first.  Ingest the records into a
    :class:`~repro.observability.history.HistoryStore` first if the
    aggregates should outlive the raw files.
    """
    import shutil

    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    runs = list_runs(runs_root)
    pruned: list[str] = []
    doomed = runs[: max(0, len(runs) - keep)]
    for record in doomed:
        run_dir = record.path.parent
        if run_dir.is_dir():
            shutil.rmtree(run_dir)
        pruned.append(record.run_id)
    return pruned


def find_run(runs_root: str | Path, run_id: str) -> RunRecord:
    """Load one run by id; ``"latest"`` selects the newest record."""
    runs = list_runs(runs_root)
    if run_id == "latest":
        if not runs:
            raise FileNotFoundError(f"no recorded runs under {runs_root}")
        return runs[-1]
    for record in runs:
        if record.run_id == run_id:
            return record
    known = ", ".join(r.run_id for r in runs[-10:]) or "none"
    raise FileNotFoundError(
        f"no run record {run_id!r} under {runs_root} (known: {known})"
    )
