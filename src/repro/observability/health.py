"""Grid health: per-site SLOs computed from the run history.

The CMS production postmortems (PAPERS.md) are unambiguous about what
keeps a long campaign alive: operators notice a *site* going bad —
rising failure rates, latency blowups, breakers flapping — before it
poisons whole workflow generations.  This module condenses the
:class:`~repro.observability.history.HistoryStore` into exactly that
signal.

For each site over a window of recent runs we compute:

* **success rate** against an SLO target (default 95%),
* **error budget burn** — failures divided by the failures the budget
  allows over the observed attempt volume (burn 1.0 = budget exactly
  spent; > 1.0 = overspent),
* **p95 step latency**, compared against the median of per-site p95s
  (a site ``latency_factor`` × slower than its peers is degraded even
  if it succeeds),
* **circuit-breaker open time**, reconstructed from recorded breaker
  transitions (a breaker that opened at all is a degradation signal).

The rollup is deliberately three-valued — ``ok`` / ``degraded`` /
``critical`` — because that's what an operator pages on, and
:func:`health_penalties` converts it into the soft scheduling penalty
(extra estimated queue seconds) the site selector folds into
placement, closing the loop from observed history back into planning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: Health statuses, worst-first rollup; codes exported as gauges.
OK, DEGRADED, CRITICAL = "ok", "degraded", "critical"
HEALTH_CODES = {OK: 0, DEGRADED: 1, CRITICAL: 2}


def percentile(samples: list[float], pct: float) -> float:
    """Nearest-rank percentile (0 for an empty sample set)."""
    if not samples:
        return 0.0
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(samples)
    rank = max(
        0, min(len(ordered) - 1, int(round(pct / 100.0 * len(ordered))) - 1)
    )
    if pct == 0.0:
        rank = 0
    return ordered[rank]


@dataclass
class SLOPolicy:
    """The service-level objectives a site is held to.

    ``success_target`` is the SLO itself (0.95 = at most 5% of
    attempts may fail before the error budget is spent).
    ``burn_degraded`` / ``burn_critical`` are the budget-burn levels
    at which the site's status escalates.  ``latency_factor`` flags a
    site whose p95 step latency exceeds that multiple of the reference
    (median per-site) p95.  ``window_runs`` bounds how much history
    the report reads.
    """

    success_target: float = 0.95
    latency_factor: float = 2.0
    burn_degraded: float = 1.0
    burn_critical: float = 3.0
    window_runs: int = 20

    def __post_init__(self) -> None:
        if not 0.0 < self.success_target < 1.0:
            raise ValueError("success_target must be in (0, 1)")
        if self.latency_factor <= 0:
            raise ValueError("latency_factor must be positive")
        if self.burn_critical < self.burn_degraded:
            raise ValueError("burn_critical must be >= burn_degraded")


@dataclass
class SiteHealth:
    """One site's SLO scorecard over the report window."""

    site: str
    attempts: int
    failures: int
    success_rate: float
    error_budget_burn: float
    p95_latency: float
    grid_p95_latency: float
    breaker_open_seconds: float
    status: str
    reasons: list[str] = field(default_factory=list)

    @property
    def status_code(self) -> int:
        return HEALTH_CODES[self.status]

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "attempts": self.attempts,
            "failures": self.failures,
            "success_rate": self.success_rate,
            "error_budget_burn": self.error_budget_burn,
            "p95_latency": self.p95_latency,
            "grid_p95_latency": self.grid_p95_latency,
            "breaker_open_seconds": self.breaker_open_seconds,
            "status": self.status,
            "reasons": list(self.reasons),
        }


@dataclass
class HealthReport:
    """The per-site scorecards plus the worst-status rollup."""

    sites: list[SiteHealth]
    runs_considered: int
    policy: SLOPolicy

    @property
    def status(self) -> str:
        worst = OK
        for site in self.sites:
            if HEALTH_CODES[site.status] > HEALTH_CODES[worst]:
                worst = site.status
        return worst

    def site(self, name: str) -> Optional[SiteHealth]:
        for entry in self.sites:
            if entry.site == name:
                return entry
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "runs_considered": self.runs_considered,
            "success_target": self.policy.success_target,
            "sites": [s.to_dict() for s in self.sites],
        }

    def render(self) -> str:
        lines = [
            f"grid health: {self.status} "
            f"({self.runs_considered} runs, "
            f"SLO {self.policy.success_target:.0%} success)"
        ]
        if not self.sites:
            lines.append("  no per-site attempts recorded")
            return "\n".join(lines)
        for s in self.sites:
            lines.append(
                f"  {s.site:<12} {s.status:<9} "
                f"success {s.success_rate:6.1%}  "
                f"burn {s.error_budget_burn:5.2f}  "
                f"p95 {s.p95_latency:8.3f}s  "
                f"breaker-open {s.breaker_open_seconds:7.1f}s"
            )
            for reason in s.reasons:
                lines.append(f"               - {reason}")
        return "\n".join(lines)


def grid_health(
    history: Any,
    policy: Optional[SLOPolicy] = None,
    window: Optional[int] = None,
) -> HealthReport:
    """Score every site seen in the last ``window`` ingested runs."""
    policy = policy or SLOPolicy()
    run_ids = history.run_ids()
    span = window if window is not None else policy.window_runs
    if span:
        run_ids = run_ids[-span:]
    stats = history.site_stats(run_ids)
    # Reference latency: the median of per-site p95s, so a single
    # pathological site cannot drag the grid reference up to itself
    # and mask its own outlier status.
    site_p95s = sorted(
        percentile(entry["durations"], 95.0)
        for entry in stats.values()
        if entry["durations"]
    )
    grid_p95 = (
        percentile(site_p95s, 50.0) if site_p95s else 0.0
    )
    allowed_rate = 1.0 - policy.success_target
    sites = []
    for name in sorted(stats):
        entry = stats[name]
        attempts = entry["attempts"]
        failures = entry["failures"]
        success_rate = (
            (attempts - failures) / attempts if attempts else 1.0
        )
        allowed_failures = attempts * allowed_rate
        if failures == 0:
            burn = 0.0
        elif allowed_failures > 0:
            burn = failures / allowed_failures
        else:
            burn = float(failures)
        p95 = percentile(entry["durations"], 95.0)
        reasons = []
        status = OK
        if burn >= policy.burn_critical:
            status = CRITICAL
            reasons.append(
                f"error budget overspent {burn:.1f}x "
                f"({failures}/{attempts} failed, "
                f"target {policy.success_target:.0%})"
            )
        elif burn > policy.burn_degraded:
            status = DEGRADED
            reasons.append(
                f"error budget burn {burn:.2f} "
                f"({failures}/{attempts} failed)"
            )
        if (
            grid_p95 > 0
            and p95 > policy.latency_factor * grid_p95
        ):
            status = status if status == CRITICAL else DEGRADED
            reasons.append(
                f"p95 latency {p95:.3f}s > "
                f"{policy.latency_factor:g}x grid p95 "
                f"({grid_p95:.3f}s)"
            )
        if entry["breaker_open_seconds"] > 0:
            status = status if status == CRITICAL else DEGRADED
            reasons.append(
                "circuit breaker open "
                f"{entry['breaker_open_seconds']:.1f}s in window"
            )
        sites.append(
            SiteHealth(
                site=name,
                attempts=attempts,
                failures=failures,
                success_rate=success_rate,
                error_budget_burn=burn,
                p95_latency=p95,
                grid_p95_latency=grid_p95,
                breaker_open_seconds=entry["breaker_open_seconds"],
                status=status,
                reasons=reasons,
            )
        )
    return HealthReport(
        sites=sites,
        runs_considered=len(run_ids),
        policy=policy,
    )


def health_penalties(
    report: HealthReport, scale: float = 60.0
) -> dict[str, float]:
    """Soft scheduling penalties (seconds) from a health report.

    A healthy site costs nothing; a degraded site is charged
    ``scale`` seconds of phantom queue time scaled by how badly its
    error budget is burning (floor 1x, so latency/breaker-only
    degradation still registers); a critical site is charged at least
    double.  The site selector adds these to its queue estimates —
    placement *prefers* healthy sites but can still use a degraded one
    when it is the only option, which is exactly the soft behaviour a
    breaker-style hard ban can't give.
    """
    penalties: dict[str, float] = {}
    for site in report.sites:
        if site.status == OK:
            penalties[site.site] = 0.0
            continue
        factor = max(1.0, site.error_budget_burn)
        if site.status == CRITICAL:
            factor = max(2.0, factor)
        penalties[site.site] = scale * factor
    return penalties


def health_metrics(report: HealthReport) -> dict[str, dict[str, Any]]:
    """The report as metric families (``MetricsRegistry.to_dict``
    shape), ready to merge into an OpenMetrics exposition."""

    def gauge(help_: str, series: list[dict[str, Any]]) -> dict[str, Any]:
        return {"kind": "gauge", "help": help_, "series": series}

    sites = report.sites
    return {
        "grid.health.status": gauge(
            "Grid health rollup (0=ok, 1=degraded, 2=critical)",
            [{"labels": {}, "value": HEALTH_CODES[report.status]}],
        ),
        "site.health.status": gauge(
            "Per-site health (0=ok, 1=degraded, 2=critical)",
            [
                {"labels": {"site": s.site}, "value": s.status_code}
                for s in sites
            ],
        ),
        "site.success.rate": gauge(
            "Per-site attempt success rate over the health window",
            [
                {"labels": {"site": s.site}, "value": s.success_rate}
                for s in sites
            ],
        ),
        "site.error.budget.burn": gauge(
            "Per-site error budget burn (1.0 = budget spent)",
            [
                {
                    "labels": {"site": s.site},
                    "value": s.error_budget_burn,
                }
                for s in sites
            ],
        ),
        "site.latency.p95": gauge(
            "Per-site p95 successful step latency (seconds)",
            [
                {"labels": {"site": s.site}, "value": s.p95_latency}
                for s in sites
            ],
        ),
        "site.breaker.open.seconds": gauge(
            "Per-site circuit-breaker open time over the window",
            [
                {
                    "labels": {"site": s.site},
                    "value": s.breaker_open_seconds,
                }
                for s in sites
            ],
        ),
    }
