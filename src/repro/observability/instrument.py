"""The shared instrumentation handle threaded through the stack.

One :class:`Instrumentation` object bundles a :class:`Tracer` and a
:class:`MetricsRegistry` and travels from :class:`~repro.system.
VirtualDataSystem` down through catalog, planner, scheduler, executors
and the simulated grid, so one ``materialize`` call produces one
coherent span tree and one metric namespace.

Every instrumented class defaults to :data:`NULL` — a no-op
instrumentation whose span context manager and metric methods cost a
couple of attribute lookups — so existing call sites keep working
unchanged and uninstrumented runs stay fast.

Metric naming convention (see docs/ARCHITECTURE.md · Observability):
dotted lowercase paths, ``<layer>.<subject>[.<unit>]``, e.g.
``catalog.ops``, ``scheduler.step.queue_seconds``,
``grid.transfer.bytes``.  Span names use the same layering:
``vds.materialize``, ``planner.plan``, ``scheduler.step``.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Optional

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import NullTracer, Tracer


class Instrumentation:
    """A tracer plus a metrics registry with convenience shorthands."""

    #: False on the null instance; hot paths check this before paying
    #: for ``time.perf_counter`` or label construction.
    enabled = True

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Optional :class:`~repro.observability.recorder.FlightRecorder`
        #: — when attached, the instrumented executors/scheduler write
        #: their run stream through it.  The handle rides on the same
        #: object that already travels catalog → planner → executor →
        #: grid, so attaching one never changes a constructor signature.
        self.recorder: Optional[Any] = None
        #: Optional :class:`~repro.observability.progress.ProgressSink`
        #: fed by executors/scheduler for the live ``--progress`` ticker.
        self.progress: Optional[Any] = None
        #: Optional :class:`~repro.observability.profiler.
        #: SamplingProfiler` — when attached, :meth:`phase` attributes
        #: sampled stacks to lifecycle phases (generate/plan/schedule/
        #: execute/analyze).
        self.profiler: Optional[Any] = None

    # -- tracing shorthands -------------------------------------------------

    def span(self, name: str, **attributes: Any):
        return self.tracer.span(name, **attributes)

    def record(self, name: str, **kwargs: Any):
        return self.tracer.record(name, **kwargs)

    def event(self, name: str, **attrs: Any) -> None:
        self.tracer.add_event(name, **attrs)

    def adopt(self, parent: Any):
        """Pool-boundary handoff: make ``parent`` the current span."""
        return self.tracer.adopt(parent)

    def phase(self, name: str):
        """Mark a lifecycle phase for the sampling profiler.

        A no-op context manager unless a profiler is attached, so
        phase marks cost nothing on unprofiled runs.
        """
        if self.profiler is None:
            return nullcontext()
        return self.profiler.phase(name)

    # -- metric shorthands --------------------------------------------------

    def count(
        self, name: str, amount: float = 1, help: str = "", **labels: Any
    ) -> None:
        self.metrics.counter(name, help=help).inc(amount, **labels)

    def observe(
        self,
        name: str,
        value: float,
        help: str = "",
        buckets: Optional[tuple[float, ...]] = None,
        **labels: Any,
    ) -> None:
        self.metrics.histogram(name, help=help, buckets=buckets).observe(
            value, **labels
        )

    def gauge(
        self, name: str, value: float, help: str = "", **labels: Any
    ) -> None:
        self.metrics.gauge(name, help=help).set(value, **labels)

    # -- wiring -------------------------------------------------------------

    def bind_simulator(self, simulator: Any) -> None:
        """Give spans a sim-time clock (``simulator.now``)."""
        self.tracer.bind_clock(lambda: simulator.now)

    def attach_recorder(self, recorder: Any) -> None:
        """Route this run's stream through a flight recorder."""
        self.recorder = recorder

    def attach_progress(self, sink: Any) -> None:
        """Feed a progress sink from the executors/scheduler."""
        self.progress = sink

    def attach_profiler(self, profiler: Any) -> None:
        """Attribute sampled stacks to phases marked via :meth:`phase`."""
        self.profiler = profiler

    def reset(self) -> None:
        self.tracer.reset()
        self.metrics.reset()


class NullInstrumentation(Instrumentation):
    """The do-nothing default; shared singleton :data:`NULL`."""

    enabled = False

    def __init__(self):
        super().__init__(tracer=NullTracer(), metrics=MetricsRegistry())

    def count(self, name, amount=1, help="", **labels):  # type: ignore[override]
        pass

    def observe(self, name, value, help="", buckets=None, **labels):  # type: ignore[override]
        pass

    def gauge(self, name, value, help="", **labels):  # type: ignore[override]
        pass

    def event(self, name, **attrs):  # type: ignore[override]
        pass

    def bind_simulator(self, simulator):  # type: ignore[override]
        pass

    def attach_recorder(self, recorder):  # type: ignore[override]
        # The NULL singleton is shared process-wide; never mutate it.
        pass

    def attach_progress(self, sink):  # type: ignore[override]
        pass

    def attach_profiler(self, profiler):  # type: ignore[override]
        pass


#: Shared no-op instance used as the default by every instrumented class.
NULL = NullInstrumentation()
