"""Counters, gauges and histograms for the virtual data stack.

The paper's workflow layer "monitors their completion" (§5.4); real
virtual-data deployments additionally instrumented every catalog
lookup and wide-area transfer.  :class:`MetricsRegistry` is the
process-local aggregation point: named metrics with label sets,
exportable as a plain dict, JSON, or Prometheus text exposition
format (see :mod:`repro.observability.export`).

All metrics are synchronous in-process objects — no locks, no
background threads — matching the deterministic single-threaded
simulator they instrument.
"""

from __future__ import annotations

import re
from typing import Iterator, Optional

#: Canonical label encoding: a sorted tuple of (key, value) pairs, so
#: label order at the call site never creates distinct series.
LabelKey = tuple[tuple[str, str], ...]

#: Default latency buckets in seconds: microseconds through minutes,
#: wide enough for both wall-clock catalog ops and simulated transfers.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0,
    10.0, 60.0, 300.0, 1800.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def label_key(labels: dict[str, object]) -> LabelKey:
    """Normalize a label dict into a canonical hashable key."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name for Prometheus exposition."""
    return _NAME_RE.sub("_", name)


class Metric:
    """Common shape: a name, help text, and per-label-set series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help

    def series(self) -> Iterator[tuple[LabelKey, object]]:
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def inc_at(self, key: LabelKey, amount: float = 1) -> None:
        """Hot-path increment with a precomputed :data:`LabelKey`."""
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(label_key(labels), 0)

    def total(self) -> float:
        """Sum across all label sets."""
        return sum(self._values.values())

    def series(self) -> Iterator[tuple[LabelKey, float]]:
        yield from sorted(self._values.items())

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(k), "value": v} for k, v in self.series()
            ],
        }


class Gauge(Metric):
    """A value that can go up and down per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[label_key(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(label_key(labels), 0)

    def series(self) -> Iterator[tuple[LabelKey, float]]:
        yield from sorted(self._values.items())

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(k), "value": v} for k, v in self.series()
            ],
        }


class HistogramSeries:
    """Bucket counts, sum and count for one label set."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int):
        #: Per-bucket (non-cumulative) counts; final slot is +Inf.
        self.bucket_counts = [0] * (n_buckets + 1)
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Fixed-bucket distribution of observed values.

    Buckets are upper bounds (``le`` semantics, like Prometheus): an
    observation lands in the first bucket whose bound is >= the value;
    values above every bound land in the implicit +Inf bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[tuple[float, ...]] = None,
    ):
        super().__init__(name, help)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.buckets = bounds
        self._series: dict[LabelKey, HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        self.observe_at(label_key(labels), value)

    def observe_at(self, key: LabelKey, value: float) -> None:
        """Hot-path observation with a precomputed :data:`LabelKey`."""
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = HistogramSeries(len(self.buckets))
        index = len(self.buckets)  # +Inf by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        series.bucket_counts[index] += 1
        series.sum += value
        series.count += 1

    def count(self, **labels: object) -> int:
        series = self._series.get(label_key(labels))
        return series.count if series else 0

    def sum(self, **labels: object) -> float:
        series = self._series.get(label_key(labels))
        return series.sum if series else 0.0

    def cumulative_buckets(self, **labels: object) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        series = self._series.get(label_key(labels))
        counts = (
            series.bucket_counts
            if series
            else [0] * (len(self.buckets) + 1)
        )
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip((*self.buckets, float("inf")), counts):
            running += n
            out.append((bound, running))
        return out

    def series(self) -> Iterator[tuple[LabelKey, HistogramSeries]]:
        yield from sorted(self._series.items(), key=lambda kv: kv[0])

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "series": [
                {
                    "labels": dict(k),
                    "bucket_counts": list(s.bucket_counts),
                    "sum": s.sum,
                    "count": s.count,
                }
                for k, s in self.series()
            ],
        }


class MetricsRegistry:
    """Named metrics, get-or-create, with one namespace per run."""

    def __init__(self):
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help=help, **kwargs)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[tuple[float, ...]] = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        for name in self.names():
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        self._metrics.clear()

    # -- export -------------------------------------------------------------

    def to_dict(self) -> dict[str, dict]:
        """All metrics as a JSON-serializable dict, keyed by name."""
        return {name: self._metrics[name].to_dict() for name in self.names()}

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for metric in self:
            pname = prometheus_name(metric.name)
            if metric.help:
                lines.append(f"# HELP {pname} {metric.help}")
            lines.append(f"# TYPE {pname} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, series in metric.series():
                    labels = dict(key)
                    running = 0
                    for bound, n in zip(
                        (*metric.buckets, float("inf")),
                        series.bucket_counts,
                    ):
                        running += n
                        le = "+Inf" if bound == float("inf") else _fmt(bound)
                        lines.append(
                            f"{pname}_bucket"
                            f"{_label_text({**labels, 'le': le})} {running}"
                        )
                    lines.append(
                        f"{pname}_sum{_label_text(labels)} {_fmt(series.sum)}"
                    )
                    lines.append(
                        f"{pname}_count{_label_text(labels)} {series.count}"
                    )
            else:
                for key, value in metric.series():
                    lines.append(
                        f"{pname}{_label_text(dict(key))} {_fmt(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _label_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt(value: float) -> str:
    """Render numbers the way Prometheus clients do: ints stay ints."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)
