"""Counters, gauges and histograms for the virtual data stack.

The paper's workflow layer "monitors their completion" (§5.4); real
virtual-data deployments additionally instrumented every catalog
lookup and wide-area transfer.  :class:`MetricsRegistry` is the
process-local aggregation point: named metrics with label sets,
exportable as a plain dict, JSON, or Prometheus text exposition
format (see :mod:`repro.observability.export`).

All metrics are synchronous in-process objects and **thread-safe**:
the parallel local executor records invocations (and therefore
metrics) from pool threads.  Counters and histograms write to
per-thread shards — each shard is mutated only by its owning thread,
so the hot path (``inc_at``/``observe_at``) takes no lock at all, and
reads merge the shards under the per-metric lock.  A read racing a
writer may lag that writer's newest observation by one update;
totals are exact once writers are joined, which is what the
thread-hammer regression tests assert.  Gauges and the registry's
get-or-create stay fully lock-serialized.  The overhead benchmark
(``benchmarks/test_bench_observability_overhead``) guards the budget.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Iterator, Optional

#: Canonical label encoding: a sorted tuple of (key, value) pairs, so
#: label order at the call site never creates distinct series.
LabelKey = tuple[tuple[str, str], ...]

#: Default latency buckets in seconds: microseconds through minutes,
#: wide enough for both wall-clock catalog ops and simulated transfers.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0,
    10.0, 60.0, 300.0, 1800.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def label_key(labels: dict[str, object]) -> LabelKey:
    """Normalize a label dict into a canonical hashable key."""
    if not labels:
        return ()
    if len(labels) == 1:
        # The overwhelmingly common case on hot paths (one status or
        # op label): skip the sort and generator machinery.
        [(k, v)] = labels.items()
        return ((k, v if type(v) is str else str(v)),)
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name for Prometheus exposition."""
    return _NAME_RE.sub("_", name)


class Metric:
    """Common shape: a name, help text, and per-label-set series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def series(self) -> Iterator[tuple[LabelKey, object]]:
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._local = threading.local()
        self._shards: list[dict[LabelKey, float]] = []

    def _new_shard(self) -> dict[LabelKey, float]:
        shard: dict[LabelKey, float] = {}
        self._local.shard = shard
        with self._lock:
            self._shards.append(shard)
        return shard

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.inc_at(label_key(labels), amount)

    def inc_at(self, key: LabelKey, amount: float = 1) -> None:
        """Hot-path increment with a precomputed :data:`LabelKey`.

        Writes land in this thread's shard, so no lock is taken.
        """
        try:
            shard = self._local.shard
        except AttributeError:
            shard = self._new_shard()
        try:
            shard[key] += amount
        except KeyError:
            shard[key] = amount

    def _merged(self) -> dict[LabelKey, float]:
        with self._lock:
            shards = list(self._shards)
        merged: dict[LabelKey, float] = {}
        for shard in shards:
            # list() snapshots the dict in one GIL-atomic step while
            # the owning thread keeps writing to it.
            for key, value in list(shard.items()):
                merged[key] = merged.get(key, 0) + value
        return merged

    def value(self, **labels: object) -> float:
        return self._merged().get(label_key(labels), 0)

    def total(self) -> float:
        """Sum across all label sets."""
        return sum(self._merged().values())

    def series(self) -> Iterator[tuple[LabelKey, float]]:
        yield from sorted(self._merged().items())

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(k), "value": v} for k, v in self.series()
            ],
        }


class Gauge(Metric):
    """A value that can go up and down per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[label_key(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(label_key(labels), 0)

    def series(self) -> Iterator[tuple[LabelKey, float]]:
        with self._lock:
            snapshot = sorted(self._values.items())
        yield from snapshot

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(k), "value": v} for k, v in self.series()
            ],
        }


class HistogramSeries:
    """Bucket counts, sum and count for one label set."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int):
        #: Per-bucket (non-cumulative) counts; final slot is +Inf.
        self.bucket_counts = [0] * (n_buckets + 1)
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Fixed-bucket distribution of observed values.

    Buckets are upper bounds (``le`` semantics, like Prometheus): an
    observation lands in the first bucket whose bound is >= the value;
    values above every bound land in the implicit +Inf bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[tuple[float, ...]] = None,
    ):
        super().__init__(name, help)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.buckets = bounds
        self._local = threading.local()
        self._shards: list[dict[LabelKey, HistogramSeries]] = []

    def _new_shard(self) -> dict[LabelKey, HistogramSeries]:
        shard: dict[LabelKey, HistogramSeries] = {}
        self._local.shard = shard
        with self._lock:
            self._shards.append(shard)
        return shard

    def observe(self, value: float, **labels: object) -> None:
        self.observe_at(label_key(labels), value)

    def observe_at(self, key: LabelKey, value: float) -> None:
        """Hot-path observation with a precomputed :data:`LabelKey`.

        Writes land in this thread's shard, so no lock is taken.
        ``bisect_left`` finds the first bound >= value — Prometheus
        ``le`` semantics; past-the-end means the implicit +Inf bucket.
        """
        try:
            shard = self._local.shard
        except AttributeError:
            shard = self._new_shard()
        series = shard.get(key)
        if series is None:
            series = shard[key] = HistogramSeries(len(self.buckets))
        series.bucket_counts[bisect_left(self.buckets, value)] += 1
        series.sum += value
        series.count += 1

    def _merged(self) -> dict[LabelKey, HistogramSeries]:
        with self._lock:
            shards = list(self._shards)
        merged: dict[LabelKey, HistogramSeries] = {}
        for shard in shards:
            for key, series in list(shard.items()):
                target = merged.get(key)
                if target is None:
                    target = merged[key] = HistogramSeries(
                        len(self.buckets)
                    )
                for i, n in enumerate(list(series.bucket_counts)):
                    target.bucket_counts[i] += n
                target.sum += series.sum
                target.count += series.count
        return merged

    def count(self, **labels: object) -> int:
        series = self._merged().get(label_key(labels))
        return series.count if series else 0

    def sum(self, **labels: object) -> float:
        series = self._merged().get(label_key(labels))
        return series.sum if series else 0.0

    def cumulative_buckets(self, **labels: object) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        series = self._merged().get(label_key(labels))
        counts = (
            list(series.bucket_counts)
            if series
            else [0] * (len(self.buckets) + 1)
        )
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip((*self.buckets, float("inf")), counts):
            running += n
            out.append((bound, running))
        return out

    def percentile(self, q: float, **labels: object) -> Optional[float]:
        """Estimated ``q``-th percentile (0..100) from bucket counts.

        Linear interpolation inside the containing bucket, with
        Prometheus ``histogram_quantile`` semantics at the edges: the
        first bucket interpolates from 0, and observations landing in
        the implicit +Inf bucket clamp to the highest finite bound
        (the histogram cannot resolve beyond it).  Returns ``None``
        for a label set with no observations.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q!r}")
        series = self._merged().get(label_key(labels))
        if series is None or series.count == 0:
            return None
        counts = series.bucket_counts
        total = series.count
        rank = (q / 100.0) * total
        running = 0.0
        for i, n in enumerate(counts):
            previous = running
            running += n
            if running >= rank and n:
                if i >= len(self.buckets):
                    # +Inf bucket: clamp to the largest finite bound.
                    return self.buckets[-1]
                lower = self.buckets[i - 1] if i else 0.0
                upper = self.buckets[i]
                fraction = (rank - previous) / n if n else 0.0
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.buckets[-1]

    def series(self) -> Iterator[tuple[LabelKey, HistogramSeries]]:
        yield from sorted(self._merged().items(), key=lambda kv: kv[0])

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "series": [
                {
                    "labels": dict(k),
                    "bucket_counts": list(s.bucket_counts),
                    "sum": s.sum,
                    "count": s.count,
                }
                for k, s in self.series()
            ],
        }


class MetricsRegistry:
    """Named metrics, get-or-create, with one namespace per run.

    Get-or-create is serialized by a registry lock so two pool threads
    asking for the same name always share one metric object.
    """

    def __init__(self):
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        # Lock-free fast path: dict reads are GIL-atomic and metrics
        # are never removed except by reset(), so a hit needs no lock.
        # Every count()/observe() resolves its metric here, which makes
        # this read the hottest registry operation by far.
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help=help, **kwargs)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[tuple[float, ...]] = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        for name in self.names():
            metric = self.get(name)
            if metric is not None:
                yield metric

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- export -------------------------------------------------------------

    def to_dict(self) -> dict[str, dict]:
        """All metrics as a JSON-serializable dict, keyed by name."""
        return {
            metric.name: metric.to_dict() for metric in self
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for metric in self:
            pname = prometheus_name(metric.name)
            if metric.help:
                lines.append(f"# HELP {pname} {metric.help}")
            lines.append(f"# TYPE {pname} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, series in metric.series():
                    labels = dict(key)
                    running = 0
                    for bound, n in zip(
                        (*metric.buckets, float("inf")),
                        series.bucket_counts,
                    ):
                        running += n
                        le = "+Inf" if bound == float("inf") else _fmt(bound)
                        lines.append(
                            f"{pname}_bucket"
                            f"{_label_text({**labels, 'le': le})} {running}"
                        )
                    lines.append(
                        f"{pname}_sum{_label_text(labels)} {_fmt(series.sum)}"
                    )
                    lines.append(
                        f"{pname}_count{_label_text(labels)} {series.count}"
                    )
            else:
                for key, value in metric.series():
                    lines.append(
                        f"{pname}{_label_text(dict(key))} {_fmt(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _label_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt(value: float) -> str:
    """Render numbers the way Prometheus clients do: ints stay ints."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)
