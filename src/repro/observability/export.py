"""Exporters: JSON-lines spans, Prometheus/OpenMetrics text, trees.

Machine formats and one human format:

* :func:`spans_to_jsonl` — one JSON object per span, in creation
  order (the natural format for shipping traces off-process);
* :meth:`MetricsRegistry.to_prometheus` — text exposition format
  (re-exported here via :func:`metrics_to_prometheus`);
* :func:`to_openmetrics` / :func:`validate_openmetrics` — the
  OpenMetrics text exposition (what ``repro metrics --openmetrics``
  prints and what a future catalog server's ``/metrics`` endpoint
  will serve), built from the portable
  :meth:`MetricsRegistry.to_dict` shape so it works equally on live
  registries, persisted snapshots, and flight-record metrics;
* :func:`render_span_tree` / :func:`render_metrics` — the terminal
  views behind ``repro trace`` and ``repro stats``.

:func:`write_snapshot` / :func:`read_snapshot` persist one run's
observability state to a directory, which is how the CLI hands data
from a ``materialize`` invocation to a later ``stats``/``trace``
invocation.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Optional

from repro.durability.atomic import atomic_write_text
from repro.observability.instrument import Instrumentation
from repro.observability.metrics import (
    MetricsRegistry,
    _fmt,
    _label_text,
    prometheus_name,
)
from repro.observability.tracing import Tracer

SPANS_FILE = "spans.jsonl"
METRICS_FILE = "metrics.json"
PROMETHEUS_FILE = "metrics.prom"


# -- spans -------------------------------------------------------------------


def spans_to_jsonl(tracer: Tracer) -> str:
    """One JSON document per line, one line per span."""
    return "".join(
        json.dumps(span.to_dict(), sort_keys=True) + "\n"
        for span in tracer.spans()
    )


def spans_from_jsonl(text: str) -> list[dict[str, Any]]:
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    return registry.to_prometheus()


def render_span_tree(source: Tracer | list[dict[str, Any]]) -> str:
    """An indented text tree of spans with both clocks and attributes.

    Accepts a live tracer or the dicts loaded from a JSONL export, so
    the CLI can render traces recorded by an earlier process.
    """
    if isinstance(source, Tracer):
        spans = [s.to_dict() for s in source.spans()]
    else:
        spans = list(source)
    children: dict[Optional[int], list[dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span["parent_id"], []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s["span_id"])

    lines: list[str] = []

    def walk(span: dict[str, Any], depth: int) -> None:
        lines.append("  " * depth + _span_line(span))
        for event in span.get("events", ()):
            lines.append("  " * (depth + 1) + _event_line(event))
        for child in children.get(span["span_id"], ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)


def _span_line(span: dict[str, Any]) -> str:
    parts = [span["name"]]
    start_wall, end_wall = span.get("start_wall"), span.get("end_wall")
    if start_wall is not None and end_wall is not None:
        parts.append(f"wall={_seconds(end_wall - start_wall)}")
    elif start_wall is not None:
        # Exported mid-flight (e.g. a crash dump): there is no duration
        # to print, and pretending 0s would misread as "instant".
        parts.append("unfinished")
    start_sim, end_sim = span.get("start_sim"), span.get("end_sim")
    if start_sim is not None and end_sim is not None:
        parts.append(f"sim={_seconds(end_sim - start_sim)}")
    if span.get("status") != "ok":
        parts.append(f"status={span['status']}")
    for key, value in sorted(span.get("attributes", {}).items()):
        parts.append(f"{key}={value}")
    return " ".join(str(p) for p in parts)


def _event_line(event: dict[str, Any]) -> str:
    parts = [f"· {event['name']}"]
    if event.get("sim") is not None:
        parts.append(f"sim_t={_seconds(event['sim'])}")
    for key, value in sorted(event.get("attributes", {}).items()):
        parts.append(f"{key}={value}")
    return " ".join(str(p) for p in parts)


def _seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1e3:.2f}ms"


# -- metrics (human view) ----------------------------------------------------


def render_metrics(metrics: dict[str, dict]) -> str:
    """Terminal view of :meth:`MetricsRegistry.to_dict` output."""
    lines: list[str] = []
    for name in sorted(metrics):
        entry = metrics[name]
        kind = entry.get("kind", "untyped")
        lines.append(f"{name} [{kind}]")
        for series in entry.get("series", ()):
            labels = series.get("labels", {})
            label_text = (
                "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if kind == "histogram":
                count = series.get("count", 0)
                total = series.get("sum", 0.0)
                mean = total / count if count else 0.0
                lines.append(
                    f"  {label_text or '(all)'} count={count} "
                    f"sum={total:.6g} mean={mean:.6g}"
                )
            else:
                lines.append(
                    f"  {label_text or '(all)'} {series.get('value', 0):.6g}"
                )
    return "\n".join(lines)


# -- OpenMetrics -------------------------------------------------------------

#: OpenMetrics sample-suffix rules per metric family type.
_OM_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("",),
    "histogram": ("_bucket", "_sum", "_count"),
    "untyped": ("",),
}

_OM_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")


def to_openmetrics(
    metrics: dict[str, dict[str, Any]],
    extra: Optional[dict[str, dict[str, Any]]] = None,
) -> str:
    """OpenMetrics text exposition from ``MetricsRegistry.to_dict``
    output (also the shape stored in snapshots and flight records).

    Differences from the Prometheus 0.0.4 format matter to scrapers:
    counter samples carry the ``_total`` suffix, the ``# TYPE`` line
    names the *family* (no suffix), and the exposition is terminated
    by a mandatory ``# EOF`` marker.  ``extra`` families (e.g.
    :func:`repro.observability.health.health_metrics`) are merged in
    after the live metrics; on a name collision the live metric wins.
    """
    merged = dict(extra or {})
    merged.update(metrics)
    lines: list[str] = []
    for name in sorted(merged):
        entry = merged[name]
        kind = entry.get("kind", "untyped")
        om_kind = kind if kind in _OM_SUFFIXES else "untyped"
        pname = prometheus_name(name)
        help_ = entry.get("help", "")
        if help_:
            # HELP text escapes only backslash and newline (the label
            # value escaper would also escape quotes, which OpenMetrics
            # does not do here).
            escaped = help_.replace("\\", r"\\").replace("\n", r"\n")
            lines.append(f"# HELP {pname} {escaped}")
        lines.append(
            f"# TYPE {pname} "
            f"{'unknown' if om_kind == 'untyped' else om_kind}"
        )
        for series in entry.get("series", ()):
            labels = dict(series.get("labels", {}))
            if om_kind == "histogram":
                running = 0
                bounds = [*entry.get("buckets", ()), float("inf")]
                counts = series.get("bucket_counts", [])
                for bound, n in zip(bounds, counts):
                    running += n
                    le = (
                        "+Inf"
                        if bound == float("inf")
                        else _fmt(bound)
                    )
                    lines.append(
                        f"{pname}_bucket"
                        f"{_label_text({**labels, 'le': le})} "
                        f"{running}"
                    )
                lines.append(
                    f"{pname}_sum{_label_text(labels)} "
                    f"{_fmt(series.get('sum', 0.0))}"
                )
                lines.append(
                    f"{pname}_count{_label_text(labels)} "
                    f"{series.get('count', 0)}"
                )
            elif om_kind == "counter":
                lines.append(
                    f"{pname}_total{_label_text(labels)} "
                    f"{_fmt(series.get('value', 0))}"
                )
            else:
                lines.append(
                    f"{pname}{_label_text(labels)} "
                    f"{_fmt(series.get('value', 0))}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_OM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)(?: (?P<timestamp>[0-9.+-eE]+))?$"
)

_OM_LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$'
)


def validate_openmetrics(text: str) -> list[str]:
    """Structural validation of an OpenMetrics exposition.

    Returns a list of problems (empty = valid).  Checks the contract a
    scraper relies on: a single terminating ``# EOF``; every sample
    preceded by its family's ``# TYPE``; no duplicate ``# TYPE`` for a
    family; type-appropriate sample suffixes (``_total`` for counters,
    ``_bucket``/``_sum``/``_count`` for histograms, bare names for
    gauges); histogram bucket sets ending at ``le="+Inf"``; and
    parseable label/value syntax throughout.
    """
    problems: list[str] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        problems.append("exposition must end with '# EOF'")
    body = lines[:-1] if lines and lines[-1] == "# EOF" else lines
    types: dict[str, str] = {}
    saw_inf_bucket: dict[str, bool] = {}
    for i, line in enumerate(body, 1):
        if not line:
            problems.append(f"line {i}: blank line inside exposition")
            continue
        if line == "# EOF":
            problems.append(f"line {i}: '# EOF' before end of text")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                problems.append(f"line {i}: malformed TYPE line")
                continue
            _, _, family, kind = parts
            if not _OM_NAME_RE.fullmatch(family):
                problems.append(
                    f"line {i}: invalid family name {family!r}"
                )
            if kind not in (
                "counter", "gauge", "histogram", "summary",
                "unknown", "info", "stateset",
            ):
                problems.append(
                    f"line {i}: unknown metric type {kind!r}"
                )
            if family in types:
                problems.append(
                    f"line {i}: duplicate TYPE for family {family!r}"
                )
            types[family] = kind
            continue
        if line.startswith("# HELP ") or line.startswith("# UNIT "):
            continue
        if line.startswith("#"):
            problems.append(f"line {i}: unrecognized comment {line!r}")
            continue
        match = _OM_SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {i}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        labels_text = match.group("labels")
        if labels_text:
            inner = labels_text[1:-1]
            if inner:
                for pair in _split_labels(inner):
                    if not _OM_LABEL_RE.match(pair):
                        problems.append(
                            f"line {i}: bad label syntax {pair!r}"
                        )
        try:
            float(match.group("value"))
        except ValueError:
            problems.append(
                f"line {i}: non-numeric value "
                f"{match.group('value')!r}"
            )
        family, suffix = _om_family_of(name, types)
        if family is None:
            problems.append(
                f"line {i}: sample {name!r} has no preceding TYPE"
            )
            continue
        kind = types[family]
        allowed = _OM_SUFFIXES.get(
            kind if kind != "unknown" else "untyped", ("",)
        )
        if suffix not in allowed:
            problems.append(
                f"line {i}: sample suffix {suffix!r} not allowed "
                f"for {kind} family {family!r}"
            )
        if kind == "histogram" and suffix == "_bucket":
            if labels_text and 'le="+Inf"' in labels_text:
                saw_inf_bucket[family] = True
            else:
                saw_inf_bucket.setdefault(family, False)
    for family, saw in saw_inf_bucket.items():
        if not saw:
            problems.append(
                f"histogram {family!r} has no le=\"+Inf\" bucket"
            )
    return problems


def _split_labels(inner: str) -> list[str]:
    """Split ``k="v",k2="v2"`` respecting escaped quotes in values."""
    pairs: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for ch in inner:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        pairs.append("".join(current))
    return pairs


def _om_family_of(
    sample_name: str, types: dict[str, str]
) -> tuple[Optional[str], str]:
    """Resolve a sample name to ``(family, suffix)`` via known TYPEs."""
    for suffix in ("_bucket", "_sum", "_count", "_total", ""):
        if suffix and not sample_name.endswith(suffix):
            continue
        family = (
            sample_name[: -len(suffix)] if suffix else sample_name
        )
        if family in types:
            return family, suffix
    return None, ""


def openmetrics_snapshot(
    metrics: dict[str, dict[str, Any]],
    health_report: Any = None,
) -> str:
    """The export-module hook for a scrape endpoint: live (or
    recorded) metrics merged with health gauges, as OpenMetrics text.

    ``health_report`` is an optional
    :class:`~repro.observability.health.HealthReport`; its gauges ride
    along so one scrape carries both run metrics and grid SLO state.
    """
    extra = None
    if health_report is not None:
        from repro.observability.health import health_metrics

        extra = health_metrics(health_report)
    return to_openmetrics(metrics, extra=extra)


# -- snapshots ---------------------------------------------------------------


def write_snapshot(obs: Instrumentation, directory: str | Path) -> Path:
    """Persist spans + metrics from one run under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    atomic_write_text(directory / SPANS_FILE, spans_to_jsonl(obs.tracer))
    atomic_write_text(
        directory / METRICS_FILE,
        json.dumps(obs.metrics.to_dict(), sort_keys=True, indent=2) + "\n",
    )
    atomic_write_text(
        directory / PROMETHEUS_FILE, obs.metrics.to_prometheus()
    )
    return directory


def read_snapshot(
    directory: str | Path,
) -> tuple[list[dict[str, Any]], dict[str, dict], str]:
    """Load ``(spans, metrics_dict, prometheus_text)`` from a snapshot."""
    directory = Path(directory)
    spans_path = directory / SPANS_FILE
    metrics_path = directory / METRICS_FILE
    prom_path = directory / PROMETHEUS_FILE
    spans = (
        spans_from_jsonl(spans_path.read_text()) if spans_path.exists() else []
    )
    metrics = (
        json.loads(metrics_path.read_text()) if metrics_path.exists() else {}
    )
    prom = prom_path.read_text() if prom_path.exists() else ""
    return spans, metrics, prom
