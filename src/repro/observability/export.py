"""Exporters: JSON-lines spans, Prometheus text, and tree rendering.

Two machine formats and one human format:

* :func:`spans_to_jsonl` — one JSON object per span, in creation
  order (the natural format for shipping traces off-process);
* :meth:`MetricsRegistry.to_prometheus` — text exposition format
  (re-exported here via :func:`metrics_to_prometheus`);
* :func:`render_span_tree` / :func:`render_metrics` — the terminal
  views behind ``repro trace`` and ``repro stats``.

:func:`write_snapshot` / :func:`read_snapshot` persist one run's
observability state to a directory, which is how the CLI hands data
from a ``materialize`` invocation to a later ``stats``/``trace``
invocation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

from repro.observability.instrument import Instrumentation
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Tracer

SPANS_FILE = "spans.jsonl"
METRICS_FILE = "metrics.json"
PROMETHEUS_FILE = "metrics.prom"


# -- spans -------------------------------------------------------------------


def spans_to_jsonl(tracer: Tracer) -> str:
    """One JSON document per line, one line per span."""
    return "".join(
        json.dumps(span.to_dict(), sort_keys=True) + "\n"
        for span in tracer.spans()
    )


def spans_from_jsonl(text: str) -> list[dict[str, Any]]:
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    return registry.to_prometheus()


def render_span_tree(source: Tracer | list[dict[str, Any]]) -> str:
    """An indented text tree of spans with both clocks and attributes.

    Accepts a live tracer or the dicts loaded from a JSONL export, so
    the CLI can render traces recorded by an earlier process.
    """
    if isinstance(source, Tracer):
        spans = [s.to_dict() for s in source.spans()]
    else:
        spans = list(source)
    children: dict[Optional[int], list[dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span["parent_id"], []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s["span_id"])

    lines: list[str] = []

    def walk(span: dict[str, Any], depth: int) -> None:
        lines.append("  " * depth + _span_line(span))
        for event in span.get("events", ()):
            lines.append("  " * (depth + 1) + _event_line(event))
        for child in children.get(span["span_id"], ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)


def _span_line(span: dict[str, Any]) -> str:
    parts = [span["name"]]
    start_wall, end_wall = span.get("start_wall"), span.get("end_wall")
    if start_wall is not None and end_wall is not None:
        parts.append(f"wall={_seconds(end_wall - start_wall)}")
    elif start_wall is not None:
        # Exported mid-flight (e.g. a crash dump): there is no duration
        # to print, and pretending 0s would misread as "instant".
        parts.append("unfinished")
    start_sim, end_sim = span.get("start_sim"), span.get("end_sim")
    if start_sim is not None and end_sim is not None:
        parts.append(f"sim={_seconds(end_sim - start_sim)}")
    if span.get("status") != "ok":
        parts.append(f"status={span['status']}")
    for key, value in sorted(span.get("attributes", {}).items()):
        parts.append(f"{key}={value}")
    return " ".join(str(p) for p in parts)


def _event_line(event: dict[str, Any]) -> str:
    parts = [f"· {event['name']}"]
    if event.get("sim") is not None:
        parts.append(f"sim_t={_seconds(event['sim'])}")
    for key, value in sorted(event.get("attributes", {}).items()):
        parts.append(f"{key}={value}")
    return " ".join(str(p) for p in parts)


def _seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1e3:.2f}ms"


# -- metrics (human view) ----------------------------------------------------


def render_metrics(metrics: dict[str, dict]) -> str:
    """Terminal view of :meth:`MetricsRegistry.to_dict` output."""
    lines: list[str] = []
    for name in sorted(metrics):
        entry = metrics[name]
        kind = entry.get("kind", "untyped")
        lines.append(f"{name} [{kind}]")
        for series in entry.get("series", ()):
            labels = series.get("labels", {})
            label_text = (
                "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if kind == "histogram":
                count = series.get("count", 0)
                total = series.get("sum", 0.0)
                mean = total / count if count else 0.0
                lines.append(
                    f"  {label_text or '(all)'} count={count} "
                    f"sum={total:.6g} mean={mean:.6g}"
                )
            else:
                lines.append(
                    f"  {label_text or '(all)'} {series.get('value', 0):.6g}"
                )
    return "\n".join(lines)


# -- snapshots ---------------------------------------------------------------


def write_snapshot(obs: Instrumentation, directory: str | Path) -> Path:
    """Persist spans + metrics from one run under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / SPANS_FILE).write_text(spans_to_jsonl(obs.tracer))
    (directory / METRICS_FILE).write_text(
        json.dumps(obs.metrics.to_dict(), sort_keys=True, indent=2) + "\n"
    )
    (directory / PROMETHEUS_FILE).write_text(obs.metrics.to_prometheus())
    return directory


def read_snapshot(
    directory: str | Path,
) -> tuple[list[dict[str, Any]], dict[str, dict], str]:
    """Load ``(spans, metrics_dict, prometheus_text)`` from a snapshot."""
    directory = Path(directory)
    spans_path = directory / SPANS_FILE
    metrics_path = directory / METRICS_FILE
    prom_path = directory / PROMETHEUS_FILE
    spans = (
        spans_from_jsonl(spans_path.read_text()) if spans_path.exists() else []
    )
    metrics = (
        json.loads(metrics_path.read_text()) if metrics_path.exists() else {}
    )
    prom = prom_path.read_text() if prom_path.exists() else ""
    return spans, metrics, prom
