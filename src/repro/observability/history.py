"""The run-history metastore: cross-run observability (§5.3).

The flight recorder makes each run durable; this module makes the
*population* of runs queryable.  The paper's estimation loop assumes
the system learns from history, and the CMS production experience
(PAPERS.md) shows that long production chains live or die by operators
noticing per-site degradation and run-over-run regressions early —
both need an aggregate view no single ``record.jsonl`` can give.

:class:`HistoryStore` is a small SQLite database (WAL when
file-backed, the same fast-path idiom as
:class:`~repro.catalog.sqlite.SQLiteCatalog`) that ingests flight
records under ``<workspace>/runs/`` into per-run, per-attempt,
per-invocation and per-site tables:

``run``
    one row per ingested run: identity, status, clock domain,
    makespan, step/retry/fault totals, and the source file size used
    for change detection (re-ingest is idempotent; a record that grew
    since ingest — e.g. a crash later finalized — is re-read);
``attempt``
    one row per recorded step *attempt* with its site, status and
    duration — the raw material for per-site SLOs and per-step diffs;
``invocation_sample``
    (transformation, bytes_read, cpu_seconds, …) tuples — exactly the
    estimator's training food, so
    :meth:`repro.estimator.cost.Estimator.train_on_history` can fit
    models over every run ever recorded;
``event_count``
    per-run event totals (retries, injected faults, timeouts);
``site_breaker``
    per-run, per-site circuit-breaker open time, reconstructed from
    the recorded ``breaker.transition`` events.

Consumers: the run-diff/regression engine
(:mod:`repro.observability.diff`), the grid-health SLO layer
(:mod:`repro.observability.health`), and the estimator.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Any, Iterable, Optional

from repro.observability.recorder import RunRecord, list_runs
from repro.resilience.policies import STATE_CODES

#: Default store location inside a workspace.
HISTORY_FILENAME = "history.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS run (
    run_id TEXT PRIMARY KEY,
    started_at REAL,
    finished_at REAL,
    status TEXT NOT NULL,
    command TEXT NOT NULL,
    clock TEXT NOT NULL,
    makespan REAL,
    steps_total INTEGER NOT NULL,
    steps_failed INTEGER NOT NULL,
    attempts INTEGER NOT NULL,
    retries INTEGER NOT NULL,
    faults INTEGER NOT NULL,
    truncated INTEGER NOT NULL,
    schema_version INTEGER NOT NULL,
    source_path TEXT NOT NULL,
    source_size INTEGER NOT NULL,
    ingested_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS run_started ON run (started_at);
CREATE TABLE IF NOT EXISTS attempt (
    run_id TEXT NOT NULL,
    step TEXT NOT NULL,
    attempt INTEGER NOT NULL,
    transformation TEXT,
    site TEXT,
    status TEXT NOT NULL,
    start REAL NOT NULL,
    end REAL NOT NULL,
    duration REAL NOT NULL,
    PRIMARY KEY (run_id, step, attempt)
);
CREATE INDEX IF NOT EXISTS attempt_tr ON attempt (transformation);
CREATE INDEX IF NOT EXISTS attempt_site ON attempt (site);
CREATE TABLE IF NOT EXISTS invocation_sample (
    run_id TEXT NOT NULL,
    ordinal INTEGER NOT NULL,
    transformation TEXT NOT NULL,
    site TEXT,
    status TEXT NOT NULL,
    wall_seconds REAL NOT NULL,
    cpu_seconds REAL NOT NULL,
    bytes_read INTEGER NOT NULL,
    bytes_written INTEGER NOT NULL,
    PRIMARY KEY (run_id, ordinal)
);
CREATE INDEX IF NOT EXISTS sample_tr ON invocation_sample (transformation);
CREATE TABLE IF NOT EXISTS event_count (
    run_id TEXT NOT NULL,
    kind TEXT NOT NULL,
    count INTEGER NOT NULL,
    PRIMARY KEY (run_id, kind)
);
CREATE TABLE IF NOT EXISTS site_breaker (
    run_id TEXT NOT NULL,
    site TEXT NOT NULL,
    open_seconds REAL NOT NULL,
    transitions INTEGER NOT NULL,
    PRIMARY KEY (run_id, site)
);
CREATE TABLE IF NOT EXISTS phase_profile (
    run_id TEXT NOT NULL,
    phase TEXT NOT NULL,
    seconds REAL NOT NULL,
    samples INTEGER NOT NULL,
    peak_bytes INTEGER NOT NULL,
    PRIMARY KEY (run_id, phase)
);
"""

_RUN_TABLES = (
    "run",
    "attempt",
    "invocation_sample",
    "event_count",
    "site_breaker",
    "phase_profile",
)

_OPEN_CODE = STATE_CODES["open"]


def breaker_open_windows(
    record: RunRecord,
) -> dict[str, tuple[float, int]]:
    """Per-site ``(open_seconds, transitions)`` from recorded events.

    Walks the ``breaker.transition`` events in time order and
    accumulates the time each site's breaker spent in the ``open``
    state.  A breaker still open at the end of the record is charged
    through the last recorded simulation instant.
    """
    transitions: dict[str, list[tuple[float, int]]] = {}
    last_instant = 0.0
    for event in record.events:
        sim = event.get("sim")
        if sim is not None:
            last_instant = max(last_instant, float(sim))
        if event.get("kind") != "breaker.transition":
            continue
        site = event.get("site")
        if site is None or sim is None:
            continue
        transitions.setdefault(site, []).append(
            (float(sim), int(event.get("state", 0)))
        )
    for timing in record.step_timings().values():
        if timing.get("clock", "sim") == "sim":
            last_instant = max(last_instant, float(timing["end"]))
    out: dict[str, tuple[float, int]] = {}
    for site, seq in transitions.items():
        seq.sort(key=lambda pair: pair[0])
        open_seconds = 0.0
        opened_at: Optional[float] = None
        for at, state in seq:
            if state == _OPEN_CODE and opened_at is None:
                opened_at = at
            elif state != _OPEN_CODE and opened_at is not None:
                open_seconds += at - opened_at
                opened_at = None
        if opened_at is not None:
            open_seconds += max(0.0, last_instant - opened_at)
        out[site] = (open_seconds, len(seq))
    return out


class HistoryStore:
    """SQLite-backed, queryable aggregate of many recorded runs."""

    def __init__(self, path: str | Path = ":memory:"):
        self.path = str(path)
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        if self.path != ":memory:":
            # Same fast-path posture as SQLiteCatalog: WAL keeps
            # readers unblocked, NORMAL turns fsyncs into log appends.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    @classmethod
    def open(cls, workspace_root: str | Path) -> "HistoryStore":
        """The store at ``<workspace>/history.sqlite`` (created lazily)."""
        root = Path(workspace_root)
        root.mkdir(parents=True, exist_ok=True)
        return cls(root / HISTORY_FILENAME)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- ingestion ---------------------------------------------------------

    def is_ingested(self, record: RunRecord) -> bool:
        """Whether this exact record (same size) is already stored."""
        row = self._conn.execute(
            "SELECT source_size FROM run WHERE run_id = ?",
            (record.run_id,),
        ).fetchone()
        if row is None:
            return False
        try:
            current = record.path.stat().st_size
        except OSError:
            return True  # source gone; keep what we have
        return int(row["source_size"]) == current

    def ingest(self, record: RunRecord, force: bool = False) -> bool:
        """Ingest one parsed record; returns False when already stored.

        Idempotent: a run already ingested from an unchanged file is
        skipped; a record whose file grew since ingest (e.g. a crashed
        run later finalized) is re-ingested in place.  The whole run
        lands in one transaction.
        """
        if not force and self.is_ingested(record):
            return False
        run_id = record.run_id
        timings = record.step_timings()
        plan_steps = record.plan_steps()
        steps_total = len(plan_steps) if plan_steps else len(timings)
        failed = sum(
            1 for t in timings.values() if t["status"] != "success"
        )
        attempts_total = sum(t["attempts"] for t in timings.values())
        clock = (
            next(iter(timings.values()))["clock"] if timings else "wall"
        )
        event_counts: dict[str, int] = {}
        for event in record.events:
            kind = event.get("kind", "?")
            event_counts[kind] = event_counts.get(kind, 0) + 1
        faults = event_counts.get("fault.injected", 0)
        try:
            source_size = record.path.stat().st_size
        except OSError:
            source_size = 0
        cur = self._conn.cursor()
        try:
            cur.execute("BEGIN")
            for table in _RUN_TABLES:
                cur.execute(
                    f"DELETE FROM {table} WHERE run_id = ?", (run_id,)
                )
            cur.execute(
                "INSERT INTO run VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    record.meta.get("started_at"),
                    record.result.get("finished_at"),
                    record.status,
                    record.command,
                    clock,
                    record.makespan(),
                    steps_total,
                    failed,
                    attempts_total,
                    max(0, attempts_total - len(timings)),
                    faults,
                    int(record.truncated),
                    record.schema_version,
                    str(record.path),
                    source_size,
                    time.time(),
                ),
            )
            # Step lines carry no attempt ordinal: number retries of
            # the same step by encounter order (the record is
            # append-only, so file order IS attempt order).
            seen_attempts: dict[str, int] = {}
            attempt_rows = []
            for a in record.step_attempts:
                step = a["step"]
                ordinal = seen_attempts.get(step, 0) + 1
                seen_attempts[step] = ordinal
                attempt_rows.append(
                    (
                        run_id,
                        step,
                        int(a.get("attempt", ordinal)),
                        (plan_steps.get(step) or {}).get(
                            "transformation"
                        ),
                        a.get("site"),
                        a["status"],
                        float(a["start"]),
                        float(a["end"]),
                        max(0.0, float(a["end"]) - float(a["start"])),
                    )
                )
            cur.executemany(
                "INSERT INTO attempt VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                attempt_rows,
            )
            cur.executemany(
                "INSERT INTO invocation_sample VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        run_id,
                        ordinal,
                        (
                            plan_steps.get(
                                inv.get("derivation_name", "")
                            )
                            or {}
                        ).get("transformation")
                        or f"?{inv.get('derivation_name', '')}",
                        inv.get("context", {}).get("site"),
                        inv.get("status", "?"),
                        float(inv["usage"]["wall_seconds"]),
                        float(inv["usage"]["cpu_seconds"]),
                        int(inv["usage"]["bytes_read"]),
                        int(inv["usage"]["bytes_written"]),
                    )
                    for ordinal, inv in enumerate(record.invocations)
                ],
            )
            cur.executemany(
                "INSERT INTO event_count VALUES (?, ?, ?)",
                [
                    (run_id, kind, count)
                    for kind, count in sorted(event_counts.items())
                ],
            )
            cur.executemany(
                "INSERT INTO site_breaker VALUES (?, ?, ?, ?)",
                [
                    (run_id, site, open_seconds, transitions)
                    for site, (open_seconds, transitions) in sorted(
                        breaker_open_windows(record).items()
                    )
                ],
            )
            if record.profile:
                cur.executemany(
                    "INSERT INTO phase_profile VALUES (?, ?, ?, ?, ?)",
                    [
                        (
                            run_id,
                            phase,
                            float(stat.get("seconds", 0.0)),
                            int(stat.get("samples", 0)),
                            int(stat.get("peak_bytes", 0)),
                        )
                        for phase, stat in sorted(
                            record.profile.get("phases", {}).items()
                        )
                    ],
                )
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            raise
        return True

    def ingest_dir(
        self, runs_root: str | Path, force: bool = False
    ) -> int:
        """Ingest every readable record under ``runs_root``.

        Returns the number of runs (re-)ingested; unchanged runs are
        skipped, so calling this before every query is cheap.
        """
        ingested = 0
        for record in list_runs(runs_root):
            if self.ingest(record, force=force):
                ingested += 1
        return ingested

    def delete_run(self, run_id: str) -> None:
        cur = self._conn.cursor()
        for table in _RUN_TABLES:
            cur.execute(f"DELETE FROM {table} WHERE run_id = ?", (run_id,))
        self._conn.commit()

    # -- run-level queries -------------------------------------------------

    def run_ids(self) -> list[str]:
        """All ingested run ids, oldest first."""
        return [
            row["run_id"]
            for row in self._conn.execute(
                "SELECT run_id FROM run ORDER BY started_at, run_id"
            )
        ]

    def runs(self) -> list[dict[str, Any]]:
        """Run summary rows, oldest first."""
        return [
            dict(row)
            for row in self._conn.execute(
                "SELECT * FROM run ORDER BY started_at, run_id"
            )
        ]

    def run_row(self, run_id: str) -> Optional[dict[str, Any]]:
        row = self._conn.execute(
            "SELECT * FROM run WHERE run_id = ?", (run_id,)
        ).fetchone()
        return dict(row) if row else None

    def latest_run_id(self) -> Optional[str]:
        ids = self.run_ids()
        return ids[-1] if ids else None

    def __len__(self) -> int:
        return int(
            self._conn.execute("SELECT COUNT(*) FROM run").fetchone()[0]
        )

    # -- time-series / aggregate queries -----------------------------------

    def _run_filter(
        self, run_ids: Optional[Iterable[str]]
    ) -> tuple[str, list[str]]:
        if run_ids is None:
            return "", []
        ids = list(run_ids)
        marks = ",".join("?" * len(ids)) or "NULL"
        return f" AND run_id IN ({marks})", ids

    def duration_samples(
        self, run_ids: Optional[Iterable[str]] = None
    ) -> dict[str, list[float]]:
        """Successful attempt durations per transformation."""
        where, params = self._run_filter(run_ids)
        out: dict[str, list[float]] = {}
        for row in self._conn.execute(
            "SELECT transformation, duration FROM attempt "
            f"WHERE status = 'success'{where} "
            "ORDER BY run_id, step, attempt",
            params,
        ):
            out.setdefault(row["transformation"] or "?", []).append(
                float(row["duration"])
            )
        return out

    def phase_seconds(
        self, run_ids: Optional[Iterable[str]] = None
    ) -> dict[str, list[float]]:
        """Profiled per-phase wall seconds across runs.

        One sample per (run, phase); only profiled runs contribute, so
        the lists may be shorter than the run filter.  Feeds
        phase-level regression gating in ``repro regress``.
        """
        where, params = self._run_filter(run_ids)
        out: dict[str, list[float]] = {}
        for row in self._conn.execute(
            "SELECT phase, seconds FROM phase_profile "
            f"WHERE 1=1{where} ORDER BY run_id, phase",
            params,
        ):
            out.setdefault(row["phase"], []).append(
                float(row["seconds"])
            )
        return out

    def phase_rows(self, run_id: str) -> dict[str, dict[str, Any]]:
        """One run's ingested phase profile (empty if unprofiled)."""
        return {
            row["phase"]: dict(row)
            for row in self._conn.execute(
                "SELECT * FROM phase_profile WHERE run_id = ? "
                "ORDER BY phase",
                (run_id,),
            )
        }

    def transformation_series(
        self, transformation: str
    ) -> list[dict[str, Any]]:
        """Per-run mean duration of one transformation, oldest first."""
        return [
            dict(row)
            for row in self._conn.execute(
                "SELECT a.run_id AS run_id, r.started_at AS started_at, "
                "COUNT(*) AS n, AVG(a.duration) AS mean_duration, "
                "MAX(a.duration) AS max_duration "
                "FROM attempt a JOIN run r ON r.run_id = a.run_id "
                "WHERE a.transformation = ? AND a.status = 'success' "
                "GROUP BY a.run_id ORDER BY r.started_at, a.run_id",
                (transformation,),
            )
        ]

    def site_stats(
        self, run_ids: Optional[Iterable[str]] = None
    ) -> dict[str, dict[str, Any]]:
        """Per-site attempt totals and raw durations over ``run_ids``.

        The durations list carries *successful* attempt durations, in
        ingest order, so callers can compute percentiles; failures and
        breaker open time feed the SLO error budget.
        """
        where, params = self._run_filter(run_ids)
        stats: dict[str, dict[str, Any]] = {}
        for row in self._conn.execute(
            "SELECT site, status, duration FROM attempt "
            f"WHERE site IS NOT NULL{where} "
            "ORDER BY run_id, step, attempt",
            params,
        ):
            entry = stats.setdefault(
                row["site"],
                {
                    "attempts": 0,
                    "failures": 0,
                    "durations": [],
                    "breaker_open_seconds": 0.0,
                },
            )
            entry["attempts"] += 1
            if row["status"] != "success":
                entry["failures"] += 1
            else:
                entry["durations"].append(float(row["duration"]))
        for row in self._conn.execute(
            "SELECT site, SUM(open_seconds) AS open_seconds "
            f"FROM site_breaker WHERE 1=1{where} GROUP BY site",
            params,
        ):
            entry = stats.setdefault(
                row["site"],
                {
                    "attempts": 0,
                    "failures": 0,
                    "durations": [],
                    "breaker_open_seconds": 0.0,
                },
            )
            entry["breaker_open_seconds"] += float(
                row["open_seconds"] or 0.0
            )
        return stats

    def event_totals(
        self, run_ids: Optional[Iterable[str]] = None
    ) -> dict[str, int]:
        where, params = self._run_filter(run_ids)
        return {
            row["kind"]: int(row["total"])
            for row in self._conn.execute(
                "SELECT kind, SUM(count) AS total FROM event_count "
                f"WHERE 1=1{where} GROUP BY kind ORDER BY kind",
                params,
            )
        }

    def training_samples(
        self,
        transformation: Optional[str] = None,
        run_ids: Optional[Iterable[str]] = None,
    ) -> dict[str, list[dict[str, Any]]]:
        """Per-transformation invocation samples for estimator training.

        Only successful invocations are returned — the same filter
        :func:`repro.estimator.cost.fit_model` applies.
        """
        where, params = self._run_filter(run_ids)
        tr_clause = ""
        if transformation is not None:
            tr_clause = " AND transformation = ?"
            params = [*params, transformation]
        out: dict[str, list[dict[str, Any]]] = {}
        for row in self._conn.execute(
            "SELECT transformation, wall_seconds, cpu_seconds, "
            "bytes_read, bytes_written FROM invocation_sample "
            f"WHERE status = 'success'{where}{tr_clause} "
            "ORDER BY run_id, ordinal",
            params,
        ):
            out.setdefault(row["transformation"], []).append(
                {
                    "wall_seconds": float(row["wall_seconds"]),
                    "cpu_seconds": float(row["cpu_seconds"]),
                    "bytes_read": int(row["bytes_read"]),
                    "bytes_written": int(row["bytes_written"]),
                }
            )
        return out

    # -- maintenance -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable dump (debugging / tests)."""
        return {
            "runs": self.runs(),
            "events": self.event_totals(),
        }

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)
