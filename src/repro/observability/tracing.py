"""Nested, timestamped tracing spans for the virtual data stack.

A :class:`Tracer` produces :class:`Span` records with parent/child
links, so one ``materialize`` call yields a tree::

    vds.materialize
      executor.plan
        planner.plan
      executor.run
        scheduler.run
          grid.transfer ...
          scheduler.step ...

Every span carries two clocks: **wall time** from
:func:`time.perf_counter` (what the process actually spent) and,
when the tracer is bound to a grid simulator, **sim time** (what the
simulated grid spent).  Both matter: the paper's runs were judged in
grid time, but the ROADMAP's perf work is judged in wall time.

The tracer is **thread-aware**: the stack of open spans lives in a
:mod:`contextvars` context variable, so spans opened concurrently from
different threads never see each other as parents.  Worker threads do
*not* inherit the submitting thread's context — a pool dispatch
boundary must hand the parent over explicitly, either with
``span(..., parent=...)`` or by entering :meth:`Tracer.adopt` around
the worker body.  Every span records the name of the thread that
opened it (``Span.thread``), which the Chrome-trace exporter uses as
its lane.

Spans are plain in-memory objects; exporters live in
:mod:`repro.observability.export`.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator, Optional

#: Sentinel distinguishing "no parent passed" from "parent=None"
#: (which forces a root span).
_UNSET = object()


class Span:
    """One timed operation, possibly nested under a parent span."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attributes",
        "events",
        "start_wall",
        "end_wall",
        "start_sim",
        "end_sim",
        "status",
        "error",
        "thread",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start_wall: float,
        start_sim: Optional[float],
        attributes: dict[str, Any],
        thread: str = "",
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.events: list[dict[str, Any]] = []
        self.start_wall = start_wall
        self.end_wall: Optional[float] = None
        self.start_sim = start_sim
        self.end_sim: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None
        self.thread = thread

    # -- enrichment ---------------------------------------------------------

    def set(self, key: str, value: Any) -> None:
        """Attach or update one attribute."""
        self.attributes[key] = value

    def add_event(
        self,
        name: str,
        wall: Optional[float] = None,
        sim: Optional[float] = None,
        **attrs: Any,
    ) -> None:
        """Attach a point-in-time event to this span."""
        self.events.append(
            {"name": name, "wall": wall, "sim": sim, "attributes": attrs}
        )

    # -- durations ----------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end_wall is not None

    @property
    def wall_seconds(self) -> float:
        """Wall-clock duration (0 until the span finishes)."""
        if self.end_wall is None:
            return 0.0
        return self.end_wall - self.start_wall

    @property
    def sim_seconds(self) -> Optional[float]:
        """Simulated duration, when both sim timestamps are known."""
        if self.start_sim is None or self.end_sim is None:
            return None
        return self.end_sim - self.start_sim

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "start_sim": self.start_sim,
            "end_sim": self.end_sim,
            "status": self.status,
            "error": self.error,
            "thread": self.thread,
            "attributes": dict(self.attributes),
            "events": list(self.events),
        }

    def __repr__(self) -> str:
        return (
            f"<Span {self.span_id} {self.name!r} "
            f"{self.wall_seconds * 1e3:.2f}ms {self.status}>"
        )


class Tracer:
    """Produces spans with parent/child links and two clocks.

    The stack of open spans is context-local (:mod:`contextvars`), so
    concurrent threads each nest their own spans correctly.  A pool
    worker starts with an *empty* stack: the dispatching code must pass
    the parent explicitly (``span(..., parent=...)``) or wrap the
    worker body in :meth:`adopt` — otherwise its spans become roots.
    """

    enabled = True

    def __init__(self, sim_clock: Optional[Callable[[], float]] = None):
        self._sim_clock = sim_clock
        self._spans: list[Span] = []
        # Guards span registration and id allocation across threads.
        self._lock = threading.Lock()
        #: Context-local stack of open spans (a tuple; rebinding keeps
        #: each context's view immutable and race-free).
        self._stack_var: ContextVar[tuple[Span, ...]] = ContextVar(
            "repro-tracer-stack", default=()
        )
        self._ids = itertools.count(1)

    def bind_clock(self, sim_clock: Callable[[], float]) -> None:
        """Attach a simulation clock (e.g. ``lambda: simulator.now``)."""
        self._sim_clock = sim_clock

    def _sim_now(self) -> Optional[float]:
        return self._sim_clock() if self._sim_clock is not None else None

    def _parent_id(self, parent: Any) -> Optional[int]:
        if parent is _UNSET:
            stack = self._stack_var.get()
            return stack[-1].span_id if stack else None
        if parent is None:
            return None
        span_id = getattr(parent, "span_id", 0)
        return span_id if span_id else None

    # -- span lifecycle -----------------------------------------------------

    def span(
        self, name: str, *, parent: Any = _UNSET, **attributes: Any
    ) -> "_SpanHandle":
        """Open a child span of the current span for the ``with`` body.

        ``parent`` overrides the context-local parent: pass a
        :class:`Span` captured on the dispatching thread to attach a
        worker-thread span to it, or ``None`` to force a root.
        """
        return _SpanHandle(self, name, parent, attributes)

    @contextmanager
    def adopt(self, parent: Any) -> Iterator[Any]:
        """Make ``parent`` the current span for this context.

        The explicit handoff at a pool-dispatch boundary: the
        submitting thread captures ``tracer.current()`` and the worker
        enters ``adopt(parent)`` so spans it opens nest under the
        dispatcher's span instead of becoming roots.  ``None`` (or a
        null span) is accepted and does nothing, so call sites need no
        instrumentation guard.
        """
        if parent is None or not getattr(parent, "span_id", 0):
            yield parent
            return
        token = self._stack_var.set(self._stack_var.get() + (parent,))
        try:
            yield parent
        finally:
            self._stack_var.reset(token)

    def record(
        self,
        name: str,
        sim_start: Optional[float] = None,
        sim_end: Optional[float] = None,
        status: str = "ok",
        parent: Any = _UNSET,
        **attributes: Any,
    ) -> Span:
        """Record an already-completed span under the current parent.

        Used for operations whose lifetime is known only in simulation
        time (e.g. a grid job observed at its completion callback):
        the span appears in the tree with zero wall duration but full
        sim-time extent.
        """
        now = time.perf_counter()
        span = Span(
            name=name,
            span_id=self._next_id(),
            parent_id=self._parent_id(parent),
            start_wall=now,
            start_sim=sim_start if sim_start is not None else self._sim_now(),
            attributes=attributes,
            thread=threading.current_thread().name,
        )
        span.end_wall = now
        span.end_sim = sim_end if sim_end is not None else self._sim_now()
        span.status = status
        with self._lock:
            self._spans.append(span)
        return span

    def graft(
        self,
        name: str,
        start_wall: float,
        end_wall: float,
        *,
        parent: Any = None,
        status: str = "ok",
        error: Optional[str] = None,
        thread: str = "",
        **attributes: Any,
    ) -> Span:
        """Insert a completed span with explicit wall timestamps.

        The merge point for spans measured in *another clock domain* —
        a worker process ships span offsets home and the collector
        rebases them into this process's ``perf_counter`` timeline
        before grafting (see ``LocalExecutor._merge_worker_telemetry``).
        Unlike :meth:`record`, both wall timestamps are caller-supplied
        so the span keeps its true duration, and ``thread`` names the
        foreign execution lane (e.g. ``worker-12345``).
        """
        span = Span(
            name=name,
            span_id=self._next_id(),
            parent_id=self._parent_id(parent),
            start_wall=start_wall,
            start_sim=None,
            attributes=attributes,
            thread=thread or threading.current_thread().name,
        )
        span.end_wall = end_wall
        span.status = status
        span.error = error
        with self._lock:
            self._spans.append(span)
        return span

    def _next_id(self) -> int:
        # itertools.count.__next__ is atomic in CPython, but don't
        # depend on that detail: ids must stay unique under threads.
        with self._lock:
            return next(self._ids)

    def add_event(self, name: str, **attrs: Any) -> None:
        """Attach an event to the current span (dropped when no span
        is open — events are annotations, never errors)."""
        stack = self._stack_var.get()
        if stack:
            stack[-1].add_event(
                name,
                wall=time.perf_counter(),
                sim=self._sim_now(),
                **attrs,
            )

    # -- queries ------------------------------------------------------------

    def current(self) -> Optional[Span]:
        stack = self._stack_var.get()
        return stack[-1] if stack else None

    def spans(self, name: Optional[str] = None) -> list[Span]:
        """All spans in creation order, optionally filtered by name."""
        with self._lock:
            snapshot = list(self._spans)
        if name is None:
            return snapshot
        return [s for s in snapshot if s.name == name]

    def span_names(self) -> set[str]:
        return {s.name for s in self.spans()}

    def roots(self) -> list[Span]:
        return [s for s in self.spans() if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans() if s.parent_id == span.span_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
            self._ids = itertools.count(1)
        self._stack_var.set(())


class _SpanHandle:
    """The context manager behind :meth:`Tracer.span`.

    A plain class rather than ``@contextmanager``: spans are the
    hottest tracer entry point (one per executed step and catalog
    plan) and the generator machinery costs more than the span
    bookkeeping itself.  The span is created on ``__enter__`` — a
    handle that is never entered records nothing, matching the old
    generator behaviour.
    """

    __slots__ = ("_tracer", "_name", "_parent", "_attributes",
                 "_span", "_token")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: Any,
        attributes: dict[str, Any],
    ):
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attributes = attributes
        self._span: Optional[Span] = None
        self._token: Any = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        clock = tracer._sim_clock
        span = Span(
            name=self._name,
            span_id=0,
            parent_id=tracer._parent_id(self._parent),
            start_wall=time.perf_counter(),
            start_sim=clock() if clock is not None else None,
            attributes=self._attributes,
            thread=threading.current_thread().name,
        )
        # One critical section allocates the id and registers the span.
        with tracer._lock:
            span.span_id = next(tracer._ids)
            tracer._spans.append(span)
        self._span = span
        stack_var = tracer._stack_var
        self._token = stack_var.set(stack_var.get() + (span,))
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        span = self._span
        tracer._stack_var.reset(self._token)
        if exc_type is not None:
            span.status = "error"
            span.error = f"{exc_type.__name__}: {exc}"
        span.end_wall = time.perf_counter()
        clock = tracer._sim_clock
        span.end_sim = clock() if clock is not None else None
        return False


class _NullSpan:
    """Inert span handed out by the null tracer; accepts everything."""

    __slots__ = ()

    name = "null"
    span_id = 0
    parent_id = None
    status = "ok"
    thread = ""
    attributes: dict[str, Any] = {}
    events: list[dict[str, Any]] = []

    def set(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, **attrs: Any) -> None:
        pass


class _NullSpanContext:
    """Reusable no-op context manager — no allocation per call."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class NullTracer(Tracer):
    """A tracer that records nothing, as cheaply as possible."""

    enabled = False

    def __init__(self):
        super().__init__()

    def span(self, name: str, **kwargs: Any):  # type: ignore[override]
        return _NULL_CONTEXT

    def adopt(self, parent: Any):  # type: ignore[override]
        return _NULL_CONTEXT

    def record(self, name: str, **kwargs: Any) -> _NullSpan:  # type: ignore[override]
        return NULL_SPAN

    def graft(self, name: str, *args: Any, **kwargs: Any) -> _NullSpan:  # type: ignore[override]
        return NULL_SPAN

    def add_event(self, name: str, **attrs: Any) -> None:
        pass

    def bind_clock(self, sim_clock: Callable[[], float]) -> None:
        pass
