"""Live progress for long runs: a thread-safe sink plus a ticker.

The executors and the workflow scheduler push step transitions into a
:class:`ProgressSink` (attached via ``obs.attach_progress``); a
:class:`ProgressTicker` renders the sink to a stream on an interval —
steps done/running/failed, the currently running step names, and an
ETA extrapolated from the plan's per-step cpu estimates (which the
planner fills from :mod:`repro.estimator` when history exists).

The sink is deliberately dumb and lock-cheap: executors call
``start_plan``/``step_started``/``step_finished`` from whatever thread
they run on; only the ticker formats strings.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Optional, TextIO


class ProgressSink:
    """Thread-safe accumulator of step states for one run."""

    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0
        self._estimates: dict[str, float] = {}
        self._running: dict[str, float] = {}  # name -> start perf_counter
        self._done: set[str] = set()
        self._failed: set[str] = set()
        self._skipped: set[str] = set()
        #: Steps that finished at least once — the ETA's spent-work
        #: estimate is charged once per step, however many attempts.
        self._finished_once: set[str] = set()
        self._retries = 0
        self._started_at: Optional[float] = None
        self._spent_estimate = 0.0

    # -- producer side (executor / scheduler threads) ------------------------

    def start_plan(self, plan: Any) -> None:
        """Register the plan: step count and per-step cpu estimates."""
        with self._lock:
            self._total = len(plan.steps)
            self._estimates = {
                name: float(step.cpu_seconds or 0.0)
                for name, step in plan.steps.items()
            }
            self._started_at = time.perf_counter()

    def step_started(self, name: str) -> None:
        """Note a step attempt; restarting a finished step is a retry.

        The scheduler calls this once per *attempt*, so a step that
        failed and is being retried moves back out of the failed set
        (it is running again, not failed) and bumps the retry count.
        """
        with self._lock:
            if name in self._finished_once:
                self._retries += 1
            self._failed.discard(name)
            self._done.discard(name)
            self._running[name] = time.perf_counter()

    def step_finished(self, name: str, status: str = "ok") -> None:
        with self._lock:
            self._running.pop(name, None)
            if status == "ok":
                self._done.add(name)
            elif status == "skipped":
                self._skipped.add(name)
            else:
                self._failed.add(name)
            # Spent work is charged once per step, not per attempt —
            # a flapping retried step must not inflate the pace.
            if name not in self._finished_once:
                self._finished_once.add(name)
                self._spent_estimate += self._estimates.get(name, 0.0)

    # -- consumer side (the ticker / tests) ----------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A consistent point-in-time view of the run."""
        with self._lock:
            elapsed = (
                time.perf_counter() - self._started_at
                if self._started_at is not None
                else 0.0
            )
            done = len(self._done)
            failed = len(self._failed)
            skipped = len(self._skipped)
            running = sorted(self._running)
            total = self._total
            retries = self._retries
            eta = self._eta_locked(elapsed)
        return {
            "total": total,
            "done": done,
            "failed": failed,
            "skipped": skipped,
            "running": running,
            "retries": retries,
            "elapsed": elapsed,
            "eta": eta,
        }

    def _eta_locked(self, elapsed: float) -> Optional[float]:
        """Remaining-seconds estimate; ``None`` until it means anything.

        Extrapolates from the estimator-derived cpu weights when the
        plan has them (remaining estimated work scaled by the observed
        pace over completed work); falls back to a per-step average.
        """
        finished = len(self._done) + len(self._failed) + len(self._skipped)
        if not self._total or not finished or elapsed <= 0:
            return None
        remaining_steps = self._total - finished
        if remaining_steps <= 0:
            return 0.0
        total_estimate = sum(self._estimates.values())
        if total_estimate > 0 and self._spent_estimate > 0:
            pace = elapsed / self._spent_estimate  # wall seconds per est-second
            remaining_estimate = max(
                total_estimate - self._spent_estimate, 0.0
            )
            return remaining_estimate * pace
        return (elapsed / finished) * remaining_steps

    def render(self) -> str:
        """One-line progress summary."""
        snap = self.snapshot()
        parts = [
            f"{snap['done']}/{snap['total']} done",
            f"{len(snap['running'])} running",
        ]
        if snap["failed"]:
            parts.append(f"{snap['failed']} failed")
        if snap["skipped"]:
            parts.append(f"{snap['skipped']} skipped")
        if snap["retries"]:
            parts.append(f"{snap['retries']} retried")
        if snap["running"]:
            head = ", ".join(snap["running"][:3])
            if len(snap["running"]) > 3:
                head += ", ..."
            parts.append(f"[{head}]")
        if snap["eta"] is not None:
            parts.append(f"eta {_fmt_seconds(snap['eta'])}")
        parts.append(f"elapsed {_fmt_seconds(snap['elapsed'])}")
        return " | ".join(parts)


class ProgressTicker:
    """Renders a :class:`ProgressSink` to a stream on an interval.

    A daemon thread wakes every ``interval`` seconds and rewrites one
    status line (carriage-return style on a TTY, plain lines
    otherwise).  Use as a context manager around the run::

        with ProgressTicker(sink):
            executor.materialize(...)
    """

    def __init__(
        self,
        sink: ProgressSink,
        stream: Optional[TextIO] = None,
        interval: float = 0.5,
    ):
        self.sink = sink
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_len = 0

    def __enter__(self) -> "ProgressTicker":
        self._thread = threading.Thread(
            target=self._loop, name="repro-progress", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._emit(final=True)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._emit()

    def _emit(self, final: bool = False) -> None:
        line = self.sink.render()
        try:
            if self.stream.isatty():
                pad = " " * max(self._last_len - len(line), 0)
                end = "\n" if final else "\r"
                self.stream.write("\r" + line + pad + end)
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
        except (ValueError, OSError):
            return  # stream closed mid-run; progress is best-effort
        self._last_len = len(line)


def _fmt_seconds(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"
