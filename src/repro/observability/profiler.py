"""An always-on sampling profiler with lifecycle-phase attribution.

The ROADMAP's "raw speed" items keep asking the same question: *where
do the seconds go* in a 10⁶-node plan or a wide materialization?
Deterministic tracing (``sys.setprofile``) costs 2-4× on the planner's
hot loops — unusable as an always-on tool.  This module samples
instead: a daemon thread wakes every ``interval`` seconds, grabs every
thread's current stack via :func:`sys._current_frames`, and attributes
each sample to the current **lifecycle phase** (generate / plan /
schedule / execute / analyze — marked by the code under test with
``obs.phase("plan")``).  Overhead is the cost of walking live stacks a
couple hundred times a second: a few percent, guarded by the
observability overhead benchmark.

What comes out:

- per-phase wall seconds and sample counts (where did the run spend
  its time, by stage of the virtual-data lifecycle);
- aggregated stacks per phase, exportable as collapsed-stack lines
  (``a;b;c 42`` — the flamegraph.pl / speedscope interchange format);
- per-phase peak-memory watermarks via :mod:`tracemalloc` when
  ``memory=True`` (off by default: tracemalloc itself costs ~2×, so
  the always-on path never pays it);
- a dict for the flight recorder's ``profile`` line, so profiles ride
  in run records, diff across runs, and ingest into the history
  metastore.

The profiler is process-local by design: worker processes ship spans
home through the telemetry relay (:mod:`repro.executor.process`), and
worker-side *time* is already visible there; sampling inside workers
would multiply overhead for stacks the relay already explains.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

#: Default sampling period, seconds.  200 Hz is fine-grained enough to
#: attribute a 50 ms planner pass and coarse enough to stay under the
#: 5% overhead budget.
DEFAULT_INTERVAL = 0.005

#: Frames kept per sampled stack, innermost last.  Deep planner
#: recursions get truncated at the *outer* end — leaves are what hot
#: frame reports rank.
MAX_FRAMES = 30

#: Stacks kept per phase in ``to_dict`` exports, heaviest first.
TOP_STACKS = 200

#: Samples attributed to no marked phase land here.
IDLE_PHASE = "(unattributed)"


class PhaseStat:
    """Aggregated samples and wall time for one lifecycle phase."""

    __slots__ = ("name", "samples", "seconds", "peak_bytes", "intervals")

    def __init__(self, name: str):
        self.name = name
        self.samples = 0
        self.seconds = 0.0
        self.peak_bytes = 0
        #: (wall_start, wall_end) pairs in ``time.time()`` terms, for
        #: the Perfetto phase track.
        self.intervals: list[tuple[float, float]] = []


class SamplingProfiler:
    """Periodic whole-process stack sampler with phase attribution.

    Start/stop brackets a run::

        profiler = SamplingProfiler()
        obs.attach_profiler(profiler)
        profiler.start()
        try:
            ...  # code marked with obs.phase("plan") etc.
        finally:
            profiler.stop()
        report = profiler.to_dict()

    Phases nest (``plan`` inside ``materialize``): samples go to the
    *innermost* open phase, matching how span trees attribute time.
    The phase stack is process-global (one profiler per run), guarded
    by a lock so executor pool threads can mark phases too.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        max_frames: int = MAX_FRAMES,
        memory: bool = False,
    ):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.interval = interval
        self.max_frames = max_frames
        self.memory = memory
        self._lock = threading.Lock()
        self._phase_stack: list[str] = []
        self._phases: dict[str, PhaseStat] = {}
        #: (phase, stack-tuple) -> sample count.  Stacks are tuples of
        #: ``module:function:line`` strings, outermost first.
        self._stacks: dict[tuple[str, tuple[str, ...]], int] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started_wall: Optional[float] = None
        self._stopped_wall: Optional[float] = None
        self._samples = 0
        self._tracemalloc_started_here = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if self.memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._tracemalloc_started_here = True
        self._started_wall = time.time()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        self._stopped_wall = time.time()
        if self._tracemalloc_started_here:
            import tracemalloc

            tracemalloc.stop()
            self._tracemalloc_started_here = False

    @property
    def running(self) -> bool:
        return self._thread is not None

    # -- phase marking ------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute enclosed samples (and wall time) to ``name``."""
        wall0 = time.time()
        clock0 = time.perf_counter()
        if self.memory:
            self._reset_memory_peak()
        with self._lock:
            self._phase_stack.append(name)
            stat = self._phases.setdefault(name, PhaseStat(name))
        try:
            yield
        finally:
            elapsed = time.perf_counter() - clock0
            peak = self._memory_peak() if self.memory else 0
            with self._lock:
                # Close the innermost matching frame; phases opened on
                # other threads may have interleaved above it.
                for i in range(len(self._phase_stack) - 1, -1, -1):
                    if self._phase_stack[i] == name:
                        del self._phase_stack[i]
                        break
                stat.seconds += elapsed
                stat.intervals.append((wall0, time.time()))
                if peak > stat.peak_bytes:
                    stat.peak_bytes = peak

    def current_phase(self) -> str:
        with self._lock:
            if self._phase_stack:
                return self._phase_stack[-1]
            return IDLE_PHASE

    # -- sampling -----------------------------------------------------------

    def _sample_loop(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval):
            self._take_sample(own_id)

    def _take_sample(self, own_id: int) -> None:
        frames = sys._current_frames()
        with self._lock:
            phase = (
                self._phase_stack[-1]
                if self._phase_stack
                else IDLE_PHASE
            )
            stat = self._phases.setdefault(phase, PhaseStat(phase))
            self._samples += 1
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                stack = self._walk(frame)
                if not stack:
                    continue
                stat.samples += 1
                key = (phase, stack)
                self._stacks[key] = self._stacks.get(key, 0) + 1

    def _walk(self, frame: Any) -> tuple[str, ...]:
        """Render one frame chain as ``module:function:line`` strings,
        outermost first, capped at :attr:`max_frames` innermost."""
        out: list[str] = []
        while frame is not None and len(out) < self.max_frames:
            code = frame.f_code
            module = code.co_filename.rsplit("/", 1)[-1]
            out.append(f"{module}:{code.co_name}:{frame.f_lineno}")
            frame = frame.f_back
        out.reverse()
        return tuple(out)

    # -- memory -------------------------------------------------------------

    def _reset_memory_peak(self) -> None:
        import tracemalloc

        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()

    def _memory_peak(self) -> int:
        import tracemalloc

        if tracemalloc.is_tracing():
            return tracemalloc.get_traced_memory()[1]
        return 0

    # -- exports ------------------------------------------------------------

    def to_dict(self, top: int = TOP_STACKS) -> dict[str, Any]:
        """The recorder-schema ``profile`` payload.

        Stacks are capped at the ``top`` heaviest across all phases so
        a long run's record stays bounded; ``dropped_stacks`` counts
        what the cap removed (no silent truncation).
        """
        with self._lock:
            phases = {
                name: {
                    "samples": stat.samples,
                    "seconds": round(stat.seconds, 6),
                    "peak_bytes": stat.peak_bytes,
                    "intervals": [
                        [round(a, 6), round(b, 6)]
                        for a, b in stat.intervals
                    ],
                }
                for name, stat in sorted(self._phases.items())
            }
            ranked = sorted(
                self._stacks.items(), key=lambda kv: -kv[1]
            )
        stacks = [
            {"phase": phase, "frames": list(frames), "count": count}
            for (phase, frames), count in ranked[:top]
        ]
        return {
            "interval": self.interval,
            "memory": self.memory,
            "started": self._started_wall,
            "stopped": self._stopped_wall,
            "samples": self._samples,
            "phases": phases,
            "stacks": stacks,
            "dropped_stacks": max(0, len(ranked) - top),
        }

    def collapsed(self) -> list[str]:
        """Collapsed-stack lines (``phase;frame;frame count``) — feed
        them to flamegraph.pl or paste into speedscope."""
        with self._lock:
            items = sorted(self._stacks.items())
        return [
            ";".join((phase, *frames)) + f" {count}"
            for (phase, frames), count in items
        ]


def collapsed_stacks(profile: dict[str, Any]) -> list[str]:
    """Collapsed-stack lines from a profile dict (live or loaded back
    from a run record) — feed to flamegraph.pl or speedscope."""
    lines = []
    for entry in profile.get("stacks", ()):
        frames = [entry.get("phase", IDLE_PHASE), *(entry.get("frames") or ())]
        lines.append(";".join(frames) + f" {int(entry.get('count', 0))}")
    return sorted(lines)


def hot_frames(
    profile: dict[str, Any], phase: Optional[str] = None, top: int = 10
) -> list[tuple[str, int]]:
    """Rank leaf frames by inclusive sample count from a profile dict.

    Works on live :meth:`SamplingProfiler.to_dict` output and on
    profiles loaded back from run records (where stacks are plain
    lists).  ``phase=None`` ranks across all phases.
    """
    weights: dict[str, int] = {}
    for entry in profile.get("stacks", ()):
        if phase is not None and entry.get("phase") != phase:
            continue
        frames = entry.get("frames") or ()
        if not frames:
            continue
        leaf = frames[-1]
        weights[leaf] = weights.get(leaf, 0) + int(entry.get("count", 0))
    ranked = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top]


def render_profile(profile: dict[str, Any], top: int = 10) -> str:
    """Human-readable per-phase report for ``repro profile``."""
    lines: list[str] = []
    interval = profile.get("interval", DEFAULT_INTERVAL)
    lines.append(
        f"profile: {profile.get('samples', 0)} samples at "
        f"{interval * 1e3:.1f}ms"
        + (" (memory on)" if profile.get("memory") else "")
    )
    phases = profile.get("phases", {})
    total = sum(p.get("seconds", 0.0) for p in phases.values())
    for name, stat in sorted(
        phases.items(), key=lambda kv: -kv[1].get("seconds", 0.0)
    ):
        seconds = stat.get("seconds", 0.0)
        share = (100.0 * seconds / total) if total else 0.0
        peak = stat.get("peak_bytes", 0)
        peak_note = (
            f"  peak {peak / 1e6:.1f} MB" if peak else ""
        )
        lines.append(
            f"  {name:<16} {seconds:8.3f}s {share:5.1f}%  "
            f"{stat.get('samples', 0):6d} samples{peak_note}"
        )
        for frame, count in hot_frames(profile, phase=name, top=top):
            lines.append(f"    {count:6d}  {frame}")
    dropped = profile.get("dropped_stacks", 0)
    if dropped:
        lines.append(f"  ({dropped} cold stacks not recorded)")
    return "\n".join(lines)
