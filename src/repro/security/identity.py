"""Principals and keys.

The paper's security design (§4.2) uses "cryptographic signatures on
VDC entries and attributes as a means of establishing the identity of
the authority(s) that vouch for their validity".  We substitute HMAC
keys held in a :class:`KeyStore` for an X.509 PKI: the sign/verify and
trust-chain logic exercised is identical, without the certificate
plumbing (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import hmac
import secrets
from dataclasses import dataclass
from typing import Optional

from repro.errors import SecurityError

#: Principal kinds.
PRINCIPAL_KINDS = ("user", "service", "authority")


@dataclass(frozen=True)
class Principal:
    """A named actor: a user, a service, or a signing authority."""

    name: str
    kind: str = "user"

    def __post_init__(self):
        if not self.name:
            raise SecurityError("principal name must be non-empty")
        if self.kind not in PRINCIPAL_KINDS:
            raise SecurityError(
                f"invalid principal kind {self.kind!r}; "
                f"expected one of {PRINCIPAL_KINDS}"
            )

    def __str__(self) -> str:
        return f"{self.kind}:{self.name}"


class KeyStore:
    """Holds signing keys for principals.

    In a deployment each party would hold only its own key plus the
    public halves of others; for the simulation one store plays both
    roles.  Keys are bytes; ``generate`` uses the system CSPRNG unless
    a deterministic seed key is supplied (tests).
    """

    def __init__(self):
        self._keys: dict[str, bytes] = {}

    def generate(self, principal: str | Principal, key: Optional[bytes] = None) -> bytes:
        """Create (or install) a key for ``principal``; returns it."""
        name = principal.name if isinstance(principal, Principal) else principal
        if name in self._keys:
            raise SecurityError(f"principal {name!r} already has a key")
        new_key = key if key is not None else secrets.token_bytes(32)
        if len(new_key) < 16:
            raise SecurityError("keys must be at least 16 bytes")
        self._keys[name] = new_key
        return new_key

    def key_of(self, principal: str | Principal) -> bytes:
        name = principal.name if isinstance(principal, Principal) else principal
        try:
            return self._keys[name]
        except KeyError:
            raise SecurityError(f"no key for principal {name!r}") from None

    def has_key(self, principal: str | Principal) -> bool:
        name = principal.name if isinstance(principal, Principal) else principal
        return name in self._keys

    def principals(self) -> list[str]:
        return sorted(self._keys)

    def constant_time_equal(self, a: bytes, b: bytes) -> bool:
        """Timing-safe comparison, exposed for signature checks."""
        return hmac.compare_digest(a, b)
