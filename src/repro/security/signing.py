"""Cryptographic signatures on VDC entries and attributes (§4.2).

"We choose to use cryptographic signatures on VDC entries and
attributes as a means of establishing the identity of the authority(s)
that vouch for their validity."

Entries are signed over a *canonical encoding*: the object's dict form
with all ``sig.*`` attributes removed, serialized as sorted-key JSON.
Signatures are stored back into the object's attribute set under
``sig.<authority>``, so they travel with the entry through every
catalog backend and federation hop.  Individual attributes can also be
signed (``sig.<authority>.<attribute>``) for finer-grained vouching —
e.g. a calibration team signs only the ``calibration`` annotation.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from typing import Any

from repro.errors import InvalidSignatureError, SecurityError
from repro.security.identity import KeyStore, Principal

#: Attribute prefix under which signatures are stored.
SIG_PREFIX = "sig."


def canonical_encoding(payload: dict[str, Any]) -> bytes:
    """Deterministic byte encoding of an entry for signing.

    All ``sig.*`` attributes are excluded so signatures never cover
    each other, and keys are sorted so every backend round-trip
    produces identical bytes.
    """
    cleaned = dict(payload)
    attrs = cleaned.get("attributes")
    if isinstance(attrs, dict):
        cleaned["attributes"] = {
            k: v for k, v in attrs.items() if not k.startswith(SIG_PREFIX)
        }
    return json.dumps(cleaned, sort_keys=True, separators=(",", ":")).encode()


def _mac(key: bytes, message: bytes) -> str:
    return hmac.new(key, message, hashlib.sha256).hexdigest()


class Signer:
    """Signs and verifies entries with keys from a :class:`KeyStore`."""

    def __init__(self, keys: KeyStore):
        self.keys = keys

    # -- whole-entry signatures -------------------------------------------------

    def sign_entry(self, obj: Any, authority: str | Principal) -> str:
        """Sign an entry (any object with ``to_dict`` and ``attributes``).

        The signature is stored in the object's attributes and
        returned.  Callers must re-register the object with its catalog
        for the signature to persist.
        """
        name = authority.name if isinstance(authority, Principal) else authority
        payload = obj.to_dict()
        signature = _mac(self.keys.key_of(name), canonical_encoding(payload))
        obj.attributes.set(f"{SIG_PREFIX}{name}", signature, author=name)
        return signature

    def verify_entry(self, obj: Any, authority: str | Principal) -> None:
        """Verify an entry's signature; raises on any mismatch."""
        name = authority.name if isinstance(authority, Principal) else authority
        stored = obj.attributes.get(f"{SIG_PREFIX}{name}")
        if stored is None:
            raise InvalidSignatureError(
                f"entry carries no signature by {name!r}"
            )
        expected = _mac(
            self.keys.key_of(name), canonical_encoding(obj.to_dict())
        )
        if not hmac.compare_digest(stored, expected):
            raise InvalidSignatureError(
                f"signature by {name!r} does not match entry contents"
            )

    def is_signed_by(self, obj: Any, authority: str | Principal) -> bool:
        """Boolean verification that never raises."""
        try:
            self.verify_entry(obj, authority)
            return True
        except (InvalidSignatureError, SecurityError):
            return False

    def signers_of(self, obj: Any) -> list[str]:
        """Authorities with *valid* signatures on an entry."""
        out = []
        for key in obj.attributes.keys():
            if not key.startswith(SIG_PREFIX) or key.count(".") != 1:
                continue
            name = key[len(SIG_PREFIX):]
            if self.keys.has_key(name) and self.is_signed_by(obj, name):
                out.append(name)
        return out

    # -- per-attribute signatures -------------------------------------------------

    def sign_attribute(
        self, obj: Any, attribute: str, authority: str | Principal
    ) -> str:
        """Sign a single attribute's current value."""
        name = authority.name if isinstance(authority, Principal) else authority
        if attribute.startswith(SIG_PREFIX):
            raise SecurityError("cannot sign a signature attribute")
        value = obj.attributes.get(attribute)
        if value is None and attribute not in obj.attributes:
            raise SecurityError(f"entry has no attribute {attribute!r}")
        message = json.dumps(
            [attribute, value], sort_keys=True, separators=(",", ":")
        ).encode()
        signature = _mac(self.keys.key_of(name), message)
        obj.attributes.set(
            f"{SIG_PREFIX}{name}.{attribute}", signature, author=name
        )
        return signature

    def verify_attribute(
        self, obj: Any, attribute: str, authority: str | Principal
    ) -> None:
        """Verify a per-attribute signature; raises on mismatch."""
        name = authority.name if isinstance(authority, Principal) else authority
        stored = obj.attributes.get(f"{SIG_PREFIX}{name}.{attribute}")
        if stored is None:
            raise InvalidSignatureError(
                f"attribute {attribute!r} carries no signature by {name!r}"
            )
        value = obj.attributes.get(attribute)
        message = json.dumps(
            [attribute, value], sort_keys=True, separators=(",", ":")
        ).encode()
        expected = _mac(self.keys.key_of(name), message)
        if not hmac.compare_digest(stored, expected):
            raise InvalidSignatureError(
                f"signature on attribute {attribute!r} by {name!r} is invalid"
            )
