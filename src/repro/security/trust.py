"""Root authorities, delegation, and trust-chain validation (§4.2).

"When embedded in a framework that provides for establishing root
authority(s) and for validating trust chains, these mechanisms can be
used to implement a wide variety of security models and policies."

A :class:`TrustStore` holds root authorities and signed *delegations*:
statements by an issuer that a subject is trusted for a scope.  A
principal is trusted (for a scope) when a chain of valid delegations
connects it to a root.  Delegations themselves are HMAC-signed by
their issuer, so a tampered delegation breaks the chain.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass
from typing import Optional

from repro.errors import SecurityError, UntrustedAuthorityError
from repro.security.identity import KeyStore

#: Wildcard scope matching any scope.
ANY_SCOPE = "*"


@dataclass(frozen=True)
class Delegation:
    """A signed statement: ``issuer`` trusts ``subject`` for ``scope``."""

    issuer: str
    subject: str
    scope: str = ANY_SCOPE
    signature: str = ""

    def message(self) -> bytes:
        return json.dumps(
            [self.issuer, self.subject, self.scope],
            sort_keys=True,
            separators=(",", ":"),
        ).encode()


class TrustStore:
    """Roots plus delegations, with chain validation."""

    def __init__(self, keys: KeyStore, max_chain_depth: int = 16):
        self.keys = keys
        self.max_chain_depth = max_chain_depth
        self._roots: set[str] = set()
        self._delegations: list[Delegation] = []

    # -- roots -----------------------------------------------------------------

    def add_root(self, authority: str) -> None:
        """Declare a root authority (must hold a key)."""
        if not self.keys.has_key(authority):
            raise SecurityError(
                f"root authority {authority!r} has no key in the store"
            )
        self._roots.add(authority)

    def roots(self) -> list[str]:
        return sorted(self._roots)

    def is_root(self, authority: str) -> bool:
        return authority in self._roots

    # -- delegations ----------------------------------------------------------------

    def delegate(
        self, issuer: str, subject: str, scope: str = ANY_SCOPE
    ) -> Delegation:
        """Record a delegation signed with the issuer's key."""
        unsigned = Delegation(issuer=issuer, subject=subject, scope=scope)
        signature = hmac.new(
            self.keys.key_of(issuer), unsigned.message(), hashlib.sha256
        ).hexdigest()
        delegation = Delegation(
            issuer=issuer, subject=subject, scope=scope, signature=signature
        )
        self._delegations.append(delegation)
        return delegation

    def add_delegation(self, delegation: Delegation) -> None:
        """Import an externally produced delegation (verified on use)."""
        self._delegations.append(delegation)

    def _valid(self, delegation: Delegation) -> bool:
        if not self.keys.has_key(delegation.issuer):
            return False
        expected = hmac.new(
            self.keys.key_of(delegation.issuer),
            delegation.message(),
            hashlib.sha256,
        ).hexdigest()
        return hmac.compare_digest(delegation.signature, expected)

    # -- chain validation ----------------------------------------------------------

    def chain_for(
        self, principal: str, scope: str = ANY_SCOPE
    ) -> Optional[list[Delegation]]:
        """A valid delegation chain from a root to ``principal``.

        Returns the chain (root-first) or None.  A root authority has
        the empty chain.  Scope narrows along the chain: every link
        must cover the requested scope (exactly or via the wildcard).
        """
        if principal in self._roots:
            return []
        # Breadth-first search backwards from the principal.
        frontier: list[tuple[str, list[Delegation]]] = [(principal, [])]
        visited = {principal}
        while frontier:
            subject, chain = frontier.pop(0)
            if len(chain) >= self.max_chain_depth:
                continue
            for delegation in self._delegations:
                if delegation.subject != subject:
                    continue
                if delegation.scope not in (ANY_SCOPE, scope):
                    continue
                if not self._valid(delegation):
                    continue
                new_chain = [delegation] + chain
                if delegation.issuer in self._roots:
                    return new_chain
                if delegation.issuer not in visited:
                    visited.add(delegation.issuer)
                    frontier.append((delegation.issuer, new_chain))
        return None

    def is_trusted(self, principal: str, scope: str = ANY_SCOPE) -> bool:
        return self.chain_for(principal, scope) is not None

    def require_trusted(self, principal: str, scope: str = ANY_SCOPE) -> list[Delegation]:
        """Like :meth:`chain_for` but raising when untrusted."""
        chain = self.chain_for(principal, scope)
        if chain is None:
            raise UntrustedAuthorityError(
                f"no trust chain connects {principal!r} to a root "
                f"(scope {scope!r})"
            )
        return chain
