"""Quality assessment of VDC entries (§4.2).

"An important aspect of VDC community process is the maintenance of
information concerning the 'quality' of VDC entries ... in a highly
curated collection, each transformation, dataset, and derivation chain
might be assessed, audited, and approved according to defined
procedures."

:class:`QualityRegistry` records graded assessments signed by their
assessor, validates assessor trust through a
:class:`~repro.security.trust.TrustStore`, and exposes the
``approved_filter`` used to build the "community approved data"
federated index of Fig 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SecurityError
from repro.security.signing import Signer
from repro.security.trust import TrustStore

#: Quality levels, ascending.  Communities may define their own; this
#: default ladder matches the paper's curation narrative.
LEVELS = ("unknown", "raw", "validated", "approved")


@dataclass(frozen=True)
class Assessment:
    """One signed quality claim about one object."""

    kind: str
    name: str
    level: str
    assessor: str
    note: str = ""

    def __post_init__(self):
        if self.level not in LEVELS:
            raise SecurityError(
                f"unknown quality level {self.level!r}; "
                f"expected one of {LEVELS}"
            )


class QualityRegistry:
    """Graded, trust-checked quality assessments."""

    def __init__(
        self,
        trust: Optional[TrustStore] = None,
        signer: Optional[Signer] = None,
        scope: str = "quality",
    ):
        self._trust = trust
        self._signer = signer
        self._scope = scope
        self._assessments: dict[tuple[str, str], list[Assessment]] = {}

    def assess(
        self,
        kind: str,
        name: str,
        level: str,
        assessor: str,
        note: str = "",
        obj=None,
    ) -> Assessment:
        """Record an assessment.

        When a trust store is configured, the assessor must hold a
        valid chain for the quality scope.  When the assessed object is
        supplied and a signer is configured, the object is also
        entry-signed by the assessor, making the claim tamper-evident.
        """
        if self._trust is not None:
            self._trust.require_trusted(assessor, self._scope)
        assessment = Assessment(
            kind=kind, name=name, level=level, assessor=assessor, note=note
        )
        self._assessments.setdefault((kind, name), []).append(assessment)
        if obj is not None and self._signer is not None:
            obj.attributes.set("quality", level, author=assessor)
            self._signer.sign_entry(obj, assessor)
        return assessment

    def assessments_of(self, kind: str, name: str) -> list[Assessment]:
        return list(self._assessments.get((kind, name), ()))

    def level_of(self, kind: str, name: str) -> str:
        """The highest level any (trusted) assessor granted."""
        best = "unknown"
        for assessment in self._assessments.get((kind, name), ()):
            if LEVELS.index(assessment.level) > LEVELS.index(best):
                best = assessment.level
        return best

    def meets(self, kind: str, name: str, minimum: str) -> bool:
        return LEVELS.index(self.level_of(kind, name)) >= LEVELS.index(minimum)

    def approved_filter(self, minimum: str = "approved"):
        """An entry filter for 'community approved' federated indexes.

        Suitable for
        :class:`repro.catalog.federation.FederatedIndex(entry_filter=...)`.
        """

        def entry_filter(entry) -> bool:
            return self.meets(entry.kind, entry.name, minimum)

        return entry_filter
