"""Quality and security: signatures, trust chains, policies (§4.2)."""

from repro.security.identity import KeyStore, PRINCIPAL_KINDS, Principal
from repro.security.policy import (
    ACTIONS,
    GuardedCatalog,
    PolicyEngine,
    Rule,
)
from repro.security.quality import Assessment, LEVELS, QualityRegistry
from repro.security.signing import SIG_PREFIX, Signer, canonical_encoding
from repro.security.trust import ANY_SCOPE, Delegation, TrustStore

__all__ = [
    "ACTIONS",
    "ANY_SCOPE",
    "Assessment",
    "Delegation",
    "GuardedCatalog",
    "KeyStore",
    "LEVELS",
    "PRINCIPAL_KINDS",
    "PolicyEngine",
    "Principal",
    "QualityRegistry",
    "Rule",
    "SIG_PREFIX",
    "Signer",
    "TrustStore",
    "canonical_encoding",
]
