"""Access-control policies over catalog operations (§4.2).

"Similar mechanisms can be used for access control, as the policies
enforced by a resource 'owner' are likely to require similar recourse
to authority."

A :class:`PolicyEngine` evaluates ordered allow/deny rules over
``(principal, action, kind)`` triples, with group membership expansion.
:class:`GuardedCatalog` wraps any catalog so every read/write is
checked for a bound principal — the enforcement point a real VDC
service would place at its API boundary.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Optional

from repro.catalog.base import VirtualDataCatalog
from repro.errors import AccessDeniedError, SecurityError

#: Actions a policy can govern.
ACTIONS = ("read", "write", "delete")


@dataclass(frozen=True)
class Rule:
    """One policy rule.  Fields are glob patterns; first match wins."""

    effect: str  # "allow" | "deny"
    principal: str = "*"  # principal name or group:<name>
    action: str = "*"
    kind: str = "*"
    name: str = "*"

    def __post_init__(self):
        if self.effect not in ("allow", "deny"):
            raise SecurityError(f"invalid rule effect {self.effect!r}")


class PolicyEngine:
    """Ordered-rule policy evaluation with groups.

    The default is deny: an empty policy admits nobody, matching the
    paper's assumption that trust must be established, not presumed.
    """

    def __init__(self, rules: Optional[list[Rule]] = None):
        self._rules: list[Rule] = list(rules or [])
        self._groups: dict[str, set[str]] = {}

    # -- configuration ---------------------------------------------------------

    def add_rule(self, rule: Rule) -> None:
        self._rules.append(rule)

    def allow(self, principal: str = "*", action: str = "*",
              kind: str = "*", name: str = "*") -> None:
        self.add_rule(Rule("allow", principal, action, kind, name))

    def deny(self, principal: str = "*", action: str = "*",
             kind: str = "*", name: str = "*") -> None:
        self.add_rule(Rule("deny", principal, action, kind, name))

    def add_to_group(self, group: str, principal: str) -> None:
        self._groups.setdefault(group, set()).add(principal)

    def groups_of(self, principal: str) -> set[str]:
        return {
            group
            for group, members in self._groups.items()
            if principal in members
        }

    # -- evaluation -----------------------------------------------------------------

    def is_allowed(
        self, principal: str, action: str, kind: str, name: str = "*"
    ) -> bool:
        """First-match evaluation; unmatched requests are denied."""
        if action not in ACTIONS:
            raise SecurityError(f"unknown action {action!r}")
        identities = {principal} | {
            f"group:{g}" for g in self.groups_of(principal)
        }
        for rule in self._rules:
            if rule.action not in ("*", action):
                continue
            if rule.kind not in ("*", kind):
                continue
            if not fnmatch.fnmatch(name, rule.name):
                continue
            if rule.principal != "*" and not any(
                fnmatch.fnmatch(identity, rule.principal)
                for identity in identities
            ):
                continue
            return rule.effect == "allow"
        return False

    def authorize(
        self, principal: str, action: str, kind: str, name: str = "*"
    ) -> None:
        if not self.is_allowed(principal, action, kind, name):
            raise AccessDeniedError(
                f"{principal!r} may not {action} {kind} {name!r}"
            )


class GuardedCatalog:
    """A catalog proxy enforcing a policy for one bound principal.

    Only the operations examples and tests exercise are guarded
    explicitly; everything else is forwarded (reads of metadata like
    ``counts`` are treated as ``read`` on kind ``catalog``).
    """

    def __init__(
        self,
        catalog: VirtualDataCatalog,
        policy: PolicyEngine,
        principal: str,
    ):
        self._catalog = catalog
        self._policy = policy
        self._principal = principal

    # -- guarded operations -----------------------------------------------------

    def get_dataset(self, name: str):
        self._policy.authorize(self._principal, "read", "dataset", name)
        return self._catalog.get_dataset(name)

    def add_dataset(self, dataset, replace: bool = False):
        self._policy.authorize(
            self._principal, "write", "dataset", dataset.name
        )
        return self._catalog.add_dataset(dataset, replace=replace)

    def remove_dataset(self, name: str):
        self._policy.authorize(self._principal, "delete", "dataset", name)
        return self._catalog.remove_dataset(name)

    def get_transformation(self, name: str, version: Optional[str] = None):
        self._policy.authorize(
            self._principal, "read", "transformation", name
        )
        return self._catalog.get_transformation(name, version)

    def add_transformation(self, tr, replace: bool = False):
        self._policy.authorize(
            self._principal, "write", "transformation", tr.name
        )
        return self._catalog.add_transformation(tr, replace=replace)

    def get_derivation(self, name: str):
        self._policy.authorize(self._principal, "read", "derivation", name)
        return self._catalog.get_derivation(name)

    def add_derivation(self, dv, **kwargs):
        self._policy.authorize(self._principal, "write", "derivation", dv.name)
        return self._catalog.add_derivation(dv, **kwargs)

    def define(self, vdl_source: str, replace: bool = False):
        """Guarded VDL ingestion: checked object by object."""
        from repro.vdl.semantics import compile_vdl

        program = compile_vdl(vdl_source, self._catalog.types)
        for tr in program.transformations:
            self.add_transformation(tr, replace=replace)
        for dv in program.derivations:
            self.add_derivation(dv, replace=replace)
        return self

    def __getattr__(self, attribute: str):
        # Unguarded members are forwarded; mutating helpers above are
        # found first because they are real methods.
        return getattr(self._catalog, attribute)
