"""A generic worklist/fixpoint dataflow engine over derivation graphs.

The derivation graph is bipartite: dataset nodes (``ds:<lfn>``) and
derivation nodes (``dv:<name>``), with edges ``input -> derivation ->
output``.  A :class:`DataflowPass` assigns each node a *fact* from a
small lattice and a monotone transfer function; the engine iterates a
worklist to the least fixpoint.  Everything is iterative — no
recursion — so million-node graphs neither overflow the stack nor pay
quadratic rescans.

Two solve modes:

* **full** — clear all facts, seed every node, iterate to fixpoint;
* **incremental** — seed only the nodes whose inputs changed and let
  changes propagate outward.  Facts that merely *grow* (lattice
  increases) propagate exactly.  When a fact *shrinks* the engine
  re-solves the affected cone from bottom (facts on a cycle could
  otherwise sustain each other after their support vanished), which is
  still confined to the nodes reachable from the shrink.

The cone walk reuses :func:`repro.planner.dag.reachable`, the planner's
shared topology helper.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Set

from repro.analysis.diagnostics import Diagnostic
from repro.planner.dag import reachable

#: Node-id prefixes for the two sides of the bipartite graph.
DS_PREFIX = "ds:"
DV_PREFIX = "dv:"


def ds_node(lfn: str) -> str:
    """Graph node id for a dataset (by logical file name)."""
    return DS_PREFIX + lfn


def dv_node(name: str) -> str:
    """Graph node id for a derivation."""
    return DV_PREFIX + name


def node_kind(node: str) -> str:
    """``"dataset"`` or ``"derivation"`` for a graph node id."""
    return "dataset" if node.startswith(DS_PREFIX) else "derivation"


def node_name(node: str) -> str:
    """The LFN or derivation name behind a graph node id."""
    return node[3:]


class Digraph:
    """A mutable directed graph with both adjacency directions.

    Nodes are strings; both ``succ`` and ``pred`` are maintained so
    forward and backward passes walk with equal cost.  Removing a node
    detaches it from its neighbours' adjacency sets.
    """

    __slots__ = ("succ", "pred")

    def __init__(self) -> None:
        self.succ: Dict[str, Set[str]] = {}
        self.pred: Dict[str, Set[str]] = {}

    def __contains__(self, node: str) -> bool:
        return node in self.succ

    def __len__(self) -> int:
        return len(self.succ)

    @property
    def nodes(self) -> Iterable[str]:
        return self.succ.keys()

    def add_node(self, node: str) -> None:
        if node not in self.succ:
            self.succ[node] = set()
            self.pred[node] = set()

    def remove_node(self, node: str) -> None:
        if node not in self.succ:
            return
        for nxt in self.succ.pop(node):
            self.pred[nxt].discard(node)
        for prv in self.pred.pop(node):
            self.succ[prv].discard(node)

    def add_edge(self, src: str, dst: str) -> None:
        self.add_node(src)
        self.add_node(dst)
        self.succ[src].add(dst)
        self.pred[dst].add(src)

    def remove_edge(self, src: str, dst: str) -> None:
        if src in self.succ:
            self.succ[src].discard(dst)
        if dst in self.pred:
            self.pred[dst].discard(src)

    def neighbors(self, node: str) -> Set[str]:
        """All nodes adjacent to ``node`` in either direction."""
        return self.succ.get(node, set()) | self.pred.get(node, set())


class DataflowPass:
    """One analysis expressed as facts + a monotone transfer function.

    Subclasses set :attr:`name`, :attr:`direction` (``"forward"``:
    facts flow producer -> consumer, transfer reads predecessor facts;
    ``"backward"``: the reverse; ``"local"``: per-node only, nothing
    propagates) and :attr:`codes` (the VDG codes the pass may emit).
    """

    name: str = "pass"
    direction: str = "forward"
    codes: tuple = ()
    #: How many influence hops away a node's fact can affect another
    #: node's *report*.  1 covers reports that read dependency-neighbour
    #: facts; passes whose reports look further set it higher.
    report_hops: int = 1

    def transfer(
        self,
        node: str,
        graph: Digraph,
        facts: Dict[str, Any],
        model: Any,
    ) -> Any:
        """The node's new fact, computed from neighbours and ``model``.

        Must be monotone in the neighbour facts and must treat a
        missing neighbour fact (``facts.get(n) is None``) as bottom.
        """
        raise NotImplementedError

    def report(
        self,
        node: str,
        graph: Digraph,
        facts: Dict[str, Any],
        model: Any,
    ) -> Iterable[Diagnostic]:
        """Diagnostics anchored at ``node`` given the solved facts."""
        return ()

    def subsumes(self, new: Any, old: Any) -> bool:
        """True when ``new`` >= ``old`` in the pass's fact lattice.

        Used to distinguish lattice growth (propagates exactly) from
        shrinkage (forces a cone re-solve).  The default treats any
        change as a potential shrink, which is always safe.
        """
        return new == old

    def on_fact_change(
        self, node: str, old: Any, new: Any, model: Any
    ) -> Iterable[str]:
        """Extra node ids whose *reports* depend on this fact change.

        Hook for passes whose diagnostics relate nodes that are not
        graph-adjacent (e.g. two writers of the same LFN).  The engine
        re-reports every id returned.  Also called with ``new=None``
        when a node leaves the graph.
        """
        return ()

    def on_full_solve(self, model: Any) -> None:
        """Called before a full solve; reset any model-side indexes."""
        return None


@dataclass
class SolveStats:
    """Work accounting for one :func:`solve` call."""

    mode: str = "full"
    seeds: int = 0
    visited: int = 0
    changed: int = 0
    reset_cone: int = 0


@dataclass
class SolveResult:
    """Outcome of one :func:`solve` call."""

    #: Nodes whose fact differs from before the solve.
    changed: Set[str] = field(default_factory=set)
    #: Nodes whose diagnostics must be regenerated (superset of
    #: ``changed``: includes seeds and any re-solved cone).
    report: Set[str] = field(default_factory=set)
    stats: SolveStats = field(default_factory=SolveStats)


def _influence(pass_: DataflowPass, graph: Digraph, node: str) -> Set[str]:
    """Nodes whose transfer reads ``node``'s fact."""
    if pass_.direction == "forward":
        return graph.succ.get(node, set())
    if pass_.direction == "backward":
        return graph.pred.get(node, set())
    return set()


def _iterate(
    pass_: DataflowPass,
    graph: Digraph,
    facts: Dict[str, Any],
    model: Any,
    seeds: Iterable[str],
    stats: SolveStats,
    changed: Set[str],
    decreased: Optional[Set[str]],
    report_extra: Set[str],
) -> None:
    """Chaotic iteration from ``seeds`` until the worklist drains."""
    worklist = deque(sorted(seeds))
    queued = set(worklist)
    while worklist:
        node = worklist.popleft()
        queued.discard(node)
        if node not in graph:
            continue
        stats.visited += 1
        old = facts.get(node)
        new = pass_.transfer(node, graph, facts, model)
        if new == old:
            continue
        facts[node] = new
        changed.add(node)
        extra = pass_.on_fact_change(node, old, new, model)
        if extra:
            report_extra.update(extra)
        if (
            decreased is not None
            and old is not None
            and not pass_.subsumes(new, old)
        ):
            decreased.add(node)
        for nxt in _influence(pass_, graph, node):
            if nxt not in queued:
                queued.add(nxt)
                worklist.append(nxt)


def solve(
    pass_: DataflowPass,
    graph: Digraph,
    facts: Dict[str, Any],
    model: Any,
    seeds: Optional[Iterable[str]] = None,
) -> SolveResult:
    """Solve ``pass_`` to fixpoint, fully or from dirty ``seeds``.

    ``facts`` is mutated in place.  ``seeds=None`` requests a full
    solve (facts cleared, every node seeded); otherwise only the seeds
    are recomputed and changes propagate along the pass's direction.
    """
    result = SolveResult()
    stats = result.stats
    if seeds is None:
        stats.mode = "full"
        facts.clear()
        pass_.on_full_solve(model)
        live = set(graph.nodes)
        stats.seeds = len(live)
        _iterate(
            pass_,
            graph,
            facts,
            model,
            live,
            stats,
            result.changed,
            None,
            result.report,
        )
    else:
        stats.mode = "incremental"
        live = {node for node in seeds if node in graph}
        stats.seeds = len(live)
        result.report |= live
        decreased: Set[str] = set()
        _iterate(
            pass_,
            graph,
            facts,
            model,
            live,
            stats,
            result.changed,
            decreased,
            result.report,
        )
        if decreased and pass_.direction != "local":
            # A fact shrank: re-derive its cone from bottom so no
            # cyclic fact keeps feeding on removed support.  Facts at
            # the cone boundary are untouched and remain valid inputs.
            # Local passes have no dependents, so propagation (and this
            # reset) is moot for them.
            def influenced(node: str) -> Set[str]:
                return _influence(pass_, graph, node)

            cone = reachable(influenced, decreased)
            stats.reset_cone = len(cone)
            before = {node: facts.get(node) for node in cone}
            for node in cone:
                facts.pop(node, None)
            _iterate(
                pass_,
                graph,
                facts,
                model,
                cone,
                stats,
                set(),
                None,
                result.report,
            )
            for node, prior in before.items():
                if facts.get(node) != prior:
                    result.changed.add(node)
            result.report |= cone
        # Reports may read facts up to ``report_hops`` influence hops
        # back; everything within that radius of a change re-reports.
        frontier = set(result.changed)
        for _ in range(pass_.report_hops):
            if not frontier:
                break
            nxt: Set[str] = set()
            for node in frontier:
                nxt |= _influence(pass_, graph, node)
            result.report |= nxt
            frontier = nxt
    result.changed &= set(graph.nodes)
    result.report |= result.changed
    stats.changed = len(result.changed)
    return result
