"""Inline lint suppressions in VDL source.

A VDL comment of the form ``# vdg: noqa`` silences every diagnostic on
its line; ``# vdg: noqa[VDG203]`` (or a comma-separated list,
``# vdg: noqa[VDG105, VDG203]``) silences only the named codes.  The
marker is case-insensitive and may follow arbitrary comment text:

.. code-block:: text

    DV crowded->gather( out=@{output:"shared.dat"} );  # vdg: noqa[VDG203]

Suppressions are *positional*: they apply to diagnostics whose span
lands on the same line, so they only work when linting actual source
text (``repro lint file.vdl``).  Catalog-level analyses
(``repro analyze``) report at line 0 and are never suppressed this way.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.diagnostics import Diagnostic

#: ``# vdg: noqa`` or ``# vdg: noqa[CODE, CODE...]``, case-insensitive.
_NOQA = re.compile(
    r"#.*?\bvdg\s*:\s*noqa(?:\s*\[\s*(?P<codes>[A-Za-z0-9_,\s]*?)\s*\])?",
    re.IGNORECASE,
)

#: A blanket suppression (``noqa`` with no code list).
ALL = frozenset({"*"})


def parse_suppressions(source: str) -> Dict[int, frozenset]:
    """Map 1-based line numbers to suppressed code sets.

    A value of :data:`ALL` means every code on that line is silenced;
    otherwise the set holds the specific (upper-cased) codes named.
    """
    table: Dict[int, frozenset] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line:
            continue
        match = _NOQA.search(line)
        if match is None:
            continue
        raw = match.group("codes")
        if raw is None:
            table[lineno] = ALL
            continue
        codes: Set[str] = {
            token.strip().upper()
            for token in raw.split(",")
            if token.strip()
        }
        # ``noqa[]`` names no codes: treat as a blanket suppression,
        # matching the common intent of an empty bracket list.
        table[lineno] = frozenset(codes) if codes else ALL
    return table


def is_suppressed(
    diagnostic: Diagnostic, table: Dict[int, frozenset]
) -> bool:
    codes = table.get(diagnostic.span.line)
    if codes is None:
        return False
    return codes is ALL or "*" in codes or diagnostic.code in codes


def apply_suppressions(
    diagnostics: Iterable[Diagnostic],
    source: Optional[str],
) -> List[Diagnostic]:
    """Filter out diagnostics silenced by inline ``noqa`` markers."""
    diags = list(diagnostics)
    if source is None or "noqa" not in source:
        return diags
    table = parse_suppressions(source)
    if not table:
        return diags
    return [d for d in diags if not is_suppressed(d, table)]
