"""The linter: parse, lower, run every rule, collect diagnostics.

The :class:`Linter` is the façade the CLI and ``Planner`` pre-flight
use.  It degrades gracefully through the front-end stages:

1. a parse failure yields a single ``VDG000`` diagnostic (there is no
   AST to analyze);
2. each declaration is then lowered individually through the standard
   :class:`~repro.vdl.semantics.Analyzer` — a semantic error in one
   declaration becomes a ``VDG010`` diagnostic *without* hiding
   problems in the others;
3. finally every enabled rule runs over the :class:`AnalysisContext`.

Instrumented through the PR-1 observability layer: one
``analysis.lint`` span per run with nested ``analysis.rule`` spans, and
``analysis.diagnostics`` counters labelled by code, so lint activity
shows up in ``repro stats`` and ``repro trace`` like any other
subsystem.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    Span,
    count_by_severity,
    max_severity,
)
from repro.analysis.registry import RuleRegistry, default_rules
from repro.analysis.suppressions import apply_suppressions
from repro.core.types import TypeRegistry
from repro.core.versioning import VersionRegistry
from repro.errors import SchemaError, VDLSemanticError, VDLSyntaxError
from repro.observability.instrument import NULL, Instrumentation
from repro.vdl.ast import ProgramNode
from repro.vdl.parser import parse
from repro.vdl.semantics import Analyzer

if TYPE_CHECKING:
    from repro.catalog.base import VirtualDataCatalog


@dataclass
class LintResult:
    """Diagnostics from one lint run, plus the file they refer to."""

    file: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def clean(self) -> bool:
        """No errors and no warnings (info-only results are clean)."""
        severity = max_severity(self.diagnostics)
        return severity is None or severity < Severity.WARNING

    def counts(self) -> dict[str, int]:
        return count_by_severity(self.diagnostics)

    def merged(self, other: "LintResult") -> "LintResult":
        combined = LintResult(file=self.file)
        combined.diagnostics = sorted(
            self.diagnostics + other.diagnostics, key=Diagnostic.sort_key
        )
        return combined


class Linter:
    """Run the registered rules over VDL source, files, or a catalog."""

    def __init__(
        self,
        registry: Optional[RuleRegistry] = None,
        types: Optional[TypeRegistry] = None,
        versions: Optional[VersionRegistry] = None,
        obs: Instrumentation = NULL,
    ) -> None:
        self.registry = registry or default_rules()
        self.types = types
        self.versions = versions
        self.obs = obs

    # -- entry points ------------------------------------------------------

    def lint_source(
        self,
        source: str,
        file: str = "<string>",
        catalog: Optional[VirtualDataCatalog] = None,
    ) -> LintResult:
        """Lint VDL text; never raises on malformed input."""
        with self.obs.span("analysis.lint", file=file) as span:
            result = self._lint(source, file, catalog)
            if self.obs.enabled:
                counts = result.counts()
                span.set("diagnostics", len(result.diagnostics))
                span.set("errors", counts["error"])
                self.obs.count("analysis.runs", help="lint invocations")
                self._count_diagnostics(result)
            return result

    def lint_file(self, path: Union[str, os.PathLike[str]]) -> LintResult:
        """Lint one ``.vdl`` file from disk."""
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        return self.lint_source(source, file=os.fspath(path))

    def lint_catalog(
        self,
        catalog: VirtualDataCatalog,
        file: str = "<workspace>",
        incremental: bool = False,
    ) -> LintResult:
        """Lint everything a catalog holds.

        By default the catalog's own VDL export round-trips its
        definitions, so the spans point into that canonical listing;
        dataset records, the type registry and the version registry
        come from the catalog itself (replica knowledge suppresses
        ``VDG403`` for datasets that exist physically).

        With ``incremental=True`` the rules instead run over the live
        :class:`~repro.analysis.context.AnalysisContext` maintained by
        the catalog's incremental analyzer — no export, no reparse, no
        semantic re-lowering.  Spans are line 0 (there is no source
        text); parse/semantic diagnostics cannot occur because the
        entities were validated on their way into the catalog.
        """
        if not incremental:
            return self.lint_source(
                catalog.export_vdl(), file=file, catalog=catalog
            )
        with self.obs.span(
            "analysis.lint", file=file, incremental=True
        ) as span:
            context = catalog.live_analyzer(file=file).lint_context()
            result = LintResult(file=file)
            self._run_rules(context, result)
            self._finish(result, source=None)
            if self.obs.enabled:
                span.set("diagnostics", len(result.diagnostics))
                span.set("errors", result.counts()["error"])
                self.obs.count("analysis.runs", help="lint invocations")
                self._count_diagnostics(result)
            return result

    # -- pipeline ----------------------------------------------------------

    def _lint(
        self,
        source: str,
        file: str,
        catalog: Optional[VirtualDataCatalog],
    ) -> LintResult:
        result = LintResult(file=file)
        try:
            program = parse(source)
        except VDLSyntaxError as exc:
            result.diagnostics.append(
                Diagnostic(
                    code="VDG000",
                    severity=Severity.ERROR,
                    message=exc.bare_message,
                    span=Span(file=file, line=exc.line, column=exc.column),
                    rule="parse",
                )
            )
            return result
        context = AnalysisContext(
            program,
            file=file,
            types=self.types,
            versions=self.versions,
            catalog=catalog,
        )
        result.diagnostics.extend(self._semantic_pass(program, context))
        self._run_rules(context, result)
        self._finish(result, source=source)
        return result

    def _run_rules(self, context: AnalysisContext, result: LintResult) -> None:
        for rule in self.registry.enabled():
            with self.obs.span("analysis.rule", rule=rule.name):
                result.diagnostics.extend(rule.check(context))

    def _finish(self, result: LintResult, source: Optional[str]) -> None:
        """Registry- and ``noqa``-filter, then impose canonical order."""
        suppressed = self.registry.suppressed_codes()
        if suppressed:
            result.diagnostics = [
                d for d in result.diagnostics if d.code not in suppressed
            ]
        result.diagnostics = apply_suppressions(result.diagnostics, source)
        result.diagnostics.sort(key=Diagnostic.sort_key)

    def _count_diagnostics(self, result: LintResult) -> None:
        for diag in result.diagnostics:
            self.obs.count(
                "analysis.diagnostics",
                help="lint findings by code",
                code=diag.code,
                severity=str(diag.severity),
            )

    def _semantic_pass(
        self, program: ProgramNode, context: AnalysisContext
    ) -> list[Diagnostic]:
        """Lower each declaration alone; collect (not raise) VDG010s."""
        analyzer = Analyzer(context.types)
        out: list[Diagnostic] = []
        for decl in program.declarations:
            try:
                analyzer.analyze(ProgramNode(declarations=(decl,)))
            except VDLSemanticError as exc:
                if "is not registered" in exc.bare_message:
                    # Unknown type names get the finer-grained VDG106
                    # (with the formal's own line) from the signature
                    # rule; a second VDG010 would be noise.
                    continue
                out.append(
                    Diagnostic(
                        code="VDG010",
                        severity=Severity.ERROR,
                        message=exc.bare_message,
                        span=Span(file=context.file, line=exc.line),
                        obj=getattr(decl, "name", None),
                        rule="semantic",
                    )
                )
            except SchemaError:
                # Lowering a versioned DV target (``tr@2.0``) trips
                # VDPRef's name check; the version rules cover that
                # statically, so lowering failures here are not news.
                continue
        return out
