"""Built-in lint rules.

Each rule is a whole-program check the one-pass
:class:`~repro.vdl.semantics.Analyzer` cannot (or deliberately does
not) perform: signature conformance across TR/DV pairs, static output
races, cycles in the derivation graph, dead code, and version-algebra
checks.  Rules register themselves via the ``@rule`` decorator; the code
table is documented in ``docs/LINTING.md``.

Severity policy: findings that would make planning or execution fail
(or silently corrupt data, as output races do) are errors; likely
mistakes that still plan are warnings; stylistic/informational notes
(a dataset consumed but never produced may simply live on the grid
already) are info.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.context import (
    ActualInfo,
    AnalysisContext,
    DVInfo,
    FormalInfo,
    TRInfo,
    split_target,
)
from repro.analysis.diagnostics import Diagnostic, Severity, Span
from repro.analysis.registry import rule
from repro.core.versioning import Version
from repro.errors import SchemaError
from repro.vdl.ast import FormalRefNode


def _span(ctx: AnalysisContext, line: int) -> Span:
    return Span(file=ctx.file, line=line)


# -- signature conformance (VDG00x / VDG10x) ---------------------------------


@rule(
    "duplicate-transformation",
    ("VDG001",),
    "the same transformation name@version is declared more than once",
)
def check_duplicate_transformations(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for name, decls in ctx.trs.items():
        seen: dict[str, int] = {}
        for tr in decls:
            if tr.version in seen:
                yield Diagnostic(
                    code="VDG001",
                    severity=Severity.ERROR,
                    message=(
                        f"transformation {name!r} version {tr.version} is "
                        f"already declared at line {seen[tr.version]}"
                    ),
                    span=_span(ctx, tr.line),
                    obj=name,
                    rule="duplicate-transformation",
                )
            else:
                seen[tr.version] = tr.line


@rule(
    "unknown-transformation",
    ("VDG002",),
    "a derivation or call targets a transformation that is not declared "
    "in the program or catalog",
)
def check_unknown_transformations(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for dv in ctx.dvs:
        if dv.is_remote:
            continue  # cross-catalog callee; resolution happens at plan time
        if ctx.resolve_tr(dv.target) is None:
            yield Diagnostic(
                code="VDG002",
                severity=Severity.ERROR,
                message=(
                    f"DV {dv.name!r} targets unknown transformation "
                    f"{dv.target!r}"
                ),
                span=_span(ctx, dv.line),
                obj=dv.name,
                rule="unknown-transformation",
            )
    for trs in ctx.trs.values():
        for tr in trs:
            for call in tr.calls:
                target = call.target
                if target.startswith("vdp://"):
                    continue
                if ctx.resolve_tr(target) is None:
                    yield Diagnostic(
                        code="VDG002",
                        severity=Severity.ERROR,
                        message=(
                            f"TR {tr.name!r} calls unknown transformation "
                            f"{target!r}"
                        ),
                        span=_span(ctx, call.line or tr.line),
                        obj=tr.name,
                        rule="unknown-transformation",
                    )


@rule(
    "signature-conformance",
    ("VDG101", "VDG102", "VDG103", "VDG104", "VDG105", "VDG106"),
    "derivation actuals must match the target signature in name, "
    "arity, kind, direction, and dataset type",
)
def check_signatures(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for tr_name, line, message in ctx.type_issues:
        yield Diagnostic(
            code="VDG106",
            severity=Severity.ERROR,
            message=f"TR {tr_name!r}: {message}",
            span=_span(ctx, line),
            obj=tr_name,
            rule="signature-conformance",
        )
    for dv in ctx.dvs:
        tr = ctx.resolve_tr(dv.target)
        if tr is None:
            continue  # VDG002's problem
        bound = set()
        for actual in dv.actuals:
            formal = tr.formal(actual.name)
            if formal is None:
                yield Diagnostic(
                    code="VDG101",
                    severity=Severity.ERROR,
                    message=(
                        f"DV {dv.name!r} binds unknown formal {actual.name!r} "
                        f"of TR {tr.name!r}"
                    ),
                    span=_span(ctx, actual.line),
                    obj=dv.name,
                    rule="signature-conformance",
                )
                continue
            bound.add(actual.name)
            if formal.is_string != (not actual.is_dataset):
                expected = (
                    "a string literal"
                    if formal.is_string
                    else "an @{...} dataset"
                )
                got = "a dataset reference" if actual.is_dataset else "a string"
                yield Diagnostic(
                    code="VDG104",
                    severity=Severity.ERROR,
                    message=(
                        f"DV {dv.name!r}: formal {actual.name!r} of TR "
                        f"{tr.name!r} takes {expected}, got {got}"
                    ),
                    span=_span(ctx, actual.line),
                    obj=dv.name,
                    rule="signature-conformance",
                )
                continue
            if actual.is_dataset:
                if (
                    formal.direction != "inout"
                    and actual.direction != formal.direction
                ):
                    yield Diagnostic(
                        code="VDG103",
                        severity=Severity.ERROR,
                        message=(
                            f"DV {dv.name!r}: formal {actual.name!r} of TR "
                            f"{tr.name!r} is {formal.direction!r}, bound as "
                            f"{actual.direction!r}"
                        ),
                        span=_span(ctx, actual.line),
                        obj=dv.name,
                        rule="signature-conformance",
                    )
                yield from _check_types(ctx, dv, tr, actual, formal)
        for formal in tr.formals:
            if formal.name not in bound and not formal.has_default:
                yield Diagnostic(
                    code="VDG102",
                    severity=Severity.ERROR,
                    message=(
                        f"DV {dv.name!r} does not bind required formal "
                        f"{formal.name!r} of TR {tr.name!r}"
                    ),
                    span=_span(ctx, dv.line),
                    obj=dv.name,
                    rule="signature-conformance",
                )


def _check_types(
    ctx: AnalysisContext,
    dv: DVInfo,
    tr: TRInfo,
    actual: ActualInfo,
    formal: FormalInfo,
) -> Iterator[Diagnostic]:
    """VDG105: the LFN's inferred types must conform to the formal union."""
    if formal.types is None:
        return
    inferred = ctx.lfn_types(actual.lfn)
    if not inferred:
        return
    # One conforming candidate suffices: inference is a may-analysis,
    # and an output binding's own declaration is always a candidate.
    registry = ctx.types
    conforming = [
        t
        for t in inferred
        if registry.conforms_to_any(t, formal.types.members)
    ]
    if conforming:
        return
    yield Diagnostic(
        code="VDG105",
        severity=Severity.ERROR,
        message=(
            f"DV {dv.name!r}: dataset {actual.lfn!r} has type "
            f"{'|'.join(str(t) for t in inferred)}, but formal "
            f"{actual.name!r} of TR {tr.name!r} requires {formal.types}"
        ),
        span=_span(ctx, actual.line),
        obj=dv.name,
        rule="signature-conformance",
    )


# -- output races (VDG20x) ---------------------------------------------------


@rule(
    "output-race",
    ("VDG201", "VDG202", "VDG203"),
    "two producers write the same logical file, or an in-place update "
    "aliases a dataset consumed elsewhere",
)
def check_output_races(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for lfn, bindings in sorted(ctx.writers.items()):
        pure_outputs = [
            (dv, actual)
            for dv, actual in bindings
            if actual.direction == "output"
        ]
        if len(pure_outputs) > 1:
            first_dv, first = pure_outputs[0]
            for dv, actual in pure_outputs[1:]:
                yield Diagnostic(
                    code="VDG201",
                    severity=Severity.ERROR,
                    message=(
                        f"dataset {lfn!r} is produced by DV {dv.name!r} "
                        f"and by DV {first_dv.name!r} (line {first.line}); "
                        f"materialization order would be nondeterministic"
                    ),
                    span=_span(ctx, actual.line),
                    obj=lfn,
                    rule="output-race",
                )
        inouts = [
            (dv, actual)
            for dv, actual in bindings
            if actual.direction == "inout"
        ]
        for dv, actual in inouts:
            others = [
                (other_dv, other)
                for other_dv, other in (
                    ctx.readers.get(lfn, []) + ctx.writers.get(lfn, [])
                )
                if other_dv is not dv
            ]
            if others:
                other_dv, _ = others[0]
                yield Diagnostic(
                    code="VDG203",
                    severity=Severity.WARNING,
                    message=(
                        f"DV {dv.name!r} updates {lfn!r} in place (inout) "
                        f"while DV {other_dv.name!r} also uses it; results "
                        f"depend on execution order"
                    ),
                    span=_span(ctx, actual.line),
                    obj=lfn,
                    rule="output-race",
                )
    yield from _check_compound_races(ctx)


def _check_compound_races(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """VDG202: two calls in one compound body write the same sink.

    A *sink* is either a parent formal (bound by reference) or a literal
    LFN.  Callee formal directions come from the resolved signature;
    unresolvable callees are skipped (VDG002 reports those).
    """
    for trs in ctx.trs.values():
        for tr in trs:
            if not tr.is_compound:
                continue
            sinks: dict[str, tuple[str, int]] = {}
            for call in tr.calls:
                callee = ctx.resolve_tr(call.target)
                if callee is None:
                    continue
                for name, value, line in call.bindings:
                    callee_formal = callee.formal(name)
                    if callee_formal is None:
                        continue
                    if callee_formal.direction not in ("output", "inout"):
                        continue
                    if isinstance(value, FormalRefNode):
                        sink = f"${value.name}"
                    else:
                        sink = str(value)
                    if sink in sinks:
                        prev_target, prev_line = sinks[sink]
                        yield Diagnostic(
                            code="VDG202",
                            severity=Severity.ERROR,
                            message=(
                                f"TR {tr.name!r}: calls to "
                                f"{call.target!r} and {prev_target!r} "
                                f"(line {prev_line}) both write "
                                f"{sink.lstrip('$')!r}"
                            ),
                            span=_span(ctx, line or call.line or tr.line),
                            obj=tr.name,
                            rule="output-race",
                        )
                    else:
                        sinks[sink] = (call.target, line or call.line)


# -- derivation-graph cycles (VDG301) ----------------------------------------


@rule(
    "derivation-cycle",
    ("VDG301",),
    "the derivation graph contains a dependency cycle, so no "
    "materialization order exists",
)
def check_cycles(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    # Self-cycles: one DV both consumes and produces an LFN via
    # separate input/output actuals (inout is a legitimate in-place
    # update, handled by VDG203).
    for dv in ctx.dvs:
        reads = {a.lfn for a in dv.dataset_actuals() if a.direction == "input"}
        writes = [a for a in dv.dataset_actuals() if a.direction == "output"]
        for actual in writes:
            if actual.lfn in reads:
                yield Diagnostic(
                    code="VDG301",
                    severity=Severity.ERROR,
                    message=(
                        f"DV {dv.name!r} both consumes and produces "
                        f"{actual.lfn!r}; the derivation depends on itself"
                    ),
                    span=_span(ctx, actual.line),
                    obj=dv.name,
                    rule="derivation-cycle",
                )
    # Cross-DV cycles: edge A -> B when an output of A is an input of B.
    producers: dict[str, list[DVInfo]] = {}
    for dv in ctx.dvs:
        for actual in dv.writes():
            producers.setdefault(actual.lfn, []).append(dv)
    edges: dict[str, set[str]] = {dv.name: set() for dv in ctx.dvs}
    by_name = {dv.name: dv for dv in ctx.dvs}
    for dv in ctx.dvs:
        for actual in dv.reads():
            for producer in producers.get(actual.lfn, ()):
                if producer.name != dv.name:
                    edges[producer.name].add(dv.name)
    for scc in _tarjan_sccs(edges):
        if len(scc) < 2:
            continue
        members = sorted(scc)
        anchor = min(members, key=lambda n: by_name[n].line)
        yield Diagnostic(
            code="VDG301",
            severity=Severity.ERROR,
            message=(
                f"derivation cycle: {' -> '.join(members)} -> {members[0]}; "
                f"no materialization order exists"
            ),
            span=_span(ctx, by_name[anchor].line),
            obj=anchor,
            rule="derivation-cycle",
        )


def _tarjan_sccs(edges: dict[str, set[str]]) -> list[list[str]]:
    """Iterative Tarjan strongly-connected components."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    for root in sorted(edges):
        if root in index:
            continue
        work = [(root, iter(sorted(edges[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


# -- dead code (VDG40x) ------------------------------------------------------


@rule(
    "dead-code",
    ("VDG401", "VDG402", "VDG403", "VDG404"),
    "unused formals, never-invoked transformations, datasets consumed "
    "but never produced, and shadowed derivation names",
)
def check_dead_code(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    # VDG401 — unused formals.  For simple TRs only string (pass-by-
    # value) formals are suspect: an unreferenced dataset formal still
    # drives staging and dependency wiring.  In a compound TR a formal
    # of any kind that is never bound into a call is dead.
    for trs in ctx.trs.values():
        for tr in trs:
            for formal in tr.formals:
                if formal.name in tr.referenced:
                    continue
                if not tr.is_compound and not formal.is_string:
                    continue
                where = "any call" if tr.is_compound else "any template"
                yield Diagnostic(
                    code="VDG401",
                    severity=Severity.WARNING,
                    message=(
                        f"TR {tr.name!r}: formal {formal.name!r} is never "
                        f"referenced in {where}"
                    ),
                    span=_span(ctx, formal.line or tr.line),
                    obj=tr.name,
                    rule="dead-code",
                )
    # VDG402 — never-called transformations.
    called: set[str] = set()
    for dv in ctx.dvs:
        called.add(split_target(dv.target)[0])
    for trs in ctx.trs.values():
        for tr in trs:
            for call in tr.calls:
                called.add(split_target(call.target)[0])
    for name, trs in sorted(ctx.trs.items()):
        if name in called:
            continue
        tr = trs[0]
        yield Diagnostic(
            code="VDG402",
            severity=Severity.WARNING,
            message=(
                f"transformation {name!r} is never the target of a "
                f"derivation or a compound call"
            ),
            span=_span(ctx, tr.line),
            obj=name,
            rule="dead-code",
        )
    # VDG403 — datasets consumed but never produced anywhere, and with
    # no physical copy known to the catalog.  Info, not warning: raw
    # inputs (instrument data) legitimately have no producing DV.
    for lfn, bindings in sorted(ctx.readers.items()):
        if lfn in ctx.writers:
            continue
        if ctx.is_materialized(lfn):
            continue
        dv, actual = bindings[0]
        yield Diagnostic(
            code="VDG403",
            severity=Severity.INFO,
            message=(
                f"dataset {lfn!r} is consumed (by DV {dv.name!r}) but no "
                f"derivation produces it and no replica is known"
            ),
            span=_span(ctx, actual.line),
            obj=lfn,
            rule="dead-code",
        )
    # VDG404 — shadowed derivation names.
    seen: dict[str, DVInfo] = {}
    for dv in ctx.dvs:
        if dv.name in seen:
            yield Diagnostic(
                code="VDG404",
                severity=Severity.WARNING,
                message=(
                    f"DV {dv.name!r} shadows an earlier derivation of the "
                    f"same name (line {seen[dv.name].line})"
                ),
                span=_span(ctx, dv.line),
                obj=dv.name,
                rule="dead-code",
            )
        else:
            seen[dv.name] = dv


# -- versioning (VDG50x) -----------------------------------------------------


@rule(
    "versioning",
    ("VDG501", "VDG502"),
    "version strings must parse, and versioned targets must match a "
    "declared or compatibility-asserted version",
)
def check_versions(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for trs in ctx.trs.values():
        for tr in trs:
            try:
                Version.parse(tr.version)
            except SchemaError:
                yield Diagnostic(
                    code="VDG501",
                    severity=Severity.ERROR,
                    message=(
                        f"TR {tr.name!r} declares invalid version "
                        f"{tr.version!r}"
                    ),
                    span=_span(ctx, tr.line),
                    obj=tr.name,
                    rule="versioning",
                )
    for dv in ctx.dvs:
        if dv.is_remote:
            continue
        name, wanted = split_target(dv.target)
        if wanted is None:
            continue
        try:
            Version.parse(wanted)
        except SchemaError:
            yield Diagnostic(
                code="VDG501",
                severity=Severity.ERROR,
                message=(
                    f"DV {dv.name!r} requests invalid version {wanted!r} "
                    f"of TR {name!r}"
                ),
                span=_span(ctx, dv.line),
                obj=dv.name,
                rule="versioning",
            )
            continue
        declared = ctx.trs.get(name)
        if not declared:
            continue  # unknown TR handled by VDG002
        available = []
        for tr in declared:
            try:
                available.append(Version.parse(tr.version))
            except SchemaError:
                continue
        if not available:
            continue
        wanted_v = Version.parse(wanted)
        if wanted_v in available:
            continue
        if any(
            ctx.versions.equivalent(name, wanted_v, v) for v in available
        ):
            continue
        yield Diagnostic(
            code="VDG502",
            severity=Severity.WARNING,
            message=(
                f"DV {dv.name!r} requests version {wanted} of TR {name!r}, "
                f"but only {', '.join(str(v) for v in sorted(available))} "
                f"{'is' if len(available) == 1 else 'are'} declared and no "
                f"compatibility assertion covers {wanted}"
            ),
            span=_span(ctx, dv.line),
            obj=dv.name,
            rule="versioning",
        )
