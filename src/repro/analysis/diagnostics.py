"""Diagnostics: the currency of the static-analysis engine.

A :class:`Diagnostic` is one finding of one rule: a stable ``VDGxxx``
code, a severity, a human message, and a :class:`Span` locating the
finding in VDL source (reconstructed from the ``line`` fields every AST
node already carries).  Codes are append-only — once published in
``docs/LINTING.md`` a code never changes meaning, so CI suppressions
(``--no-rule VDG402``) stay stable across releases.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering lets callers compare (``>=``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Span:
    """A source location: file plus 1-based line (and optional column).

    ``line=0`` means "position unknown" (objects reconstructed without
    source text); renderers then print just the file name.
    """

    file: str = "<string>"
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        if not self.line:
            return self.file
        if self.column:
            return f"{self.file}:{self.line}:{self.column}"
        return f"{self.file}:{self.line}"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: ``file.vdl:12: error[VDG201]: message``."""

    code: str
    severity: Severity
    message: str
    span: Span = field(default_factory=Span)
    #: Name of the TR/DV/dataset the finding is about, when there is one.
    obj: Optional[str] = None
    #: Short rule name (``output-race``), for grouping in reports.
    rule: str = ""

    def sort_key(self) -> tuple:
        return (self.span.file, self.span.line, self.code, self.message)

    def render(self) -> str:
        return f"{self.span}: {self.severity}[{self.code}]: {self.message}"

    def as_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "file": self.span.file,
            "line": self.span.line,
            "column": self.span.column,
            "object": self.obj,
            "rule": self.rule,
        }


def max_severity(diagnostics: list[Diagnostic]) -> Optional[Severity]:
    """The highest severity present, or None for a clean result."""
    return max((d.severity for d in diagnostics), default=None)


def count_by_severity(diagnostics: list[Diagnostic]) -> dict[str, int]:
    """``{"error": n, "warning": n, "info": n}`` (always all three keys)."""
    out = {str(s): 0 for s in Severity}
    for d in diagnostics:
        out[str(d.severity)] += 1
    return out
