"""The whole-program index the lint rules run against.

:class:`AnalysisContext` normalizes one parsed VDL program (plus an
optional catalog supplying dataset records, the type registry and the
version registry) into flat, cross-referenced views:

* transformations by name (with resolved formal signatures — type
  expressions resolved against the registry, unknown names collected
  for the ``VDG106`` rule rather than raised);
* derivations with per-actual source lines;
* writer/reader maps from logical file name (LFN) to the bindings that
  produce/consume it — the substrate of the output-race detector;
* inferred dataset types per LFN (catalog record first, else the
  producing formal's declared type union) for cross-derivation type
  conformance.

The one-pass :class:`~repro.vdl.semantics.Analyzer` deliberately defers
all of these cross-object views to "catalog registration time"; the
linter builds them up front so mistakes surface before any
materialization request is planned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from repro.core.transformation import (
    CompoundTransformation,
    FormalRef,
    SimpleTransformation,
    Transformation,
)
from repro.core.types import TypeRegistry, TypeUnion, default_registry
from repro.core.versioning import VersionRegistry
from repro.errors import UnknownTypeError
from repro.vdl.ast import (
    ArgumentStmtNode,
    CallStmtNode,
    DatasetRefNode,
    DerivationDeclNode,
    EnvStmtNode,
    FormalRefNode,
    ProgramNode,
    TransformationDeclNode,
)
from repro.vdl.semantics import resolve_type_triple

if TYPE_CHECKING:
    from repro.catalog.base import VirtualDataCatalog
    from repro.core.dataset import Dataset


@dataclass
class FormalInfo:
    """One formal argument, normalized from AST or core objects."""

    name: str
    direction: str
    #: Resolved type union; None when untyped or explicitly "Dataset".
    types: Optional[TypeUnion] = None
    has_default: bool = False
    line: int = 0

    @property
    def is_string(self) -> bool:
        return self.direction == "none"


@dataclass
class CallInfo:
    """One call site inside a compound transformation body."""

    target: str
    #: ``(callee_formal, value, line)``; value is a string literal or a
    #: :class:`~repro.vdl.ast.FormalRefNode`.
    bindings: list[tuple[str, Union[str, FormalRefNode], int]]
    line: int = 0


@dataclass
class TRInfo:
    """One transformation declaration, normalized for the rules."""

    name: str
    version: str = "1.0"
    line: int = 0
    formals: list[FormalInfo] = field(default_factory=list)
    is_compound: bool = False
    calls: list[CallInfo] = field(default_factory=list)
    #: Formal names referenced by argument/env templates (simple TRs)
    #: or bound into calls (compound TRs).
    referenced: set[str] = field(default_factory=set)
    #: "program" for declarations in the linted source, "catalog" for
    #: signatures pulled from a backing catalog.
    origin: str = "program"

    def formal(self, name: str) -> Optional[FormalInfo]:
        for f in self.formals:
            if f.name == name:
                return f
        return None


@dataclass
class ActualInfo:
    """One DV actual argument with its source line."""

    name: str
    #: String literal, or the dataset reference.
    value: Union[str, DatasetRefNode]
    line: int = 0

    @property
    def is_dataset(self) -> bool:
        return isinstance(self.value, DatasetRefNode)

    @property
    def lfn(self) -> Optional[str]:
        return self.value.lfn if isinstance(self.value, DatasetRefNode) else None

    @property
    def direction(self) -> Optional[str]:
        if isinstance(self.value, DatasetRefNode):
            return self.value.direction
        return None


@dataclass
class DVInfo:
    """One derivation declaration, normalized for the rules."""

    name: str
    target: str
    actuals: list[ActualInfo] = field(default_factory=list)
    line: int = 0

    @property
    def is_remote(self) -> bool:
        return self.target.startswith("vdp://")

    def dataset_actuals(self) -> list[ActualInfo]:
        return [a for a in self.actuals if a.is_dataset]

    def writes(self) -> list[ActualInfo]:
        return [
            a
            for a in self.dataset_actuals()
            if a.direction in ("output", "inout")
        ]

    def reads(self) -> list[ActualInfo]:
        return [
            a
            for a in self.dataset_actuals()
            if a.direction in ("input", "inout")
        ]


#: One (derivation, actual) pair touching an LFN.
Binding = tuple[DVInfo, ActualInfo]


def split_target(target: str) -> tuple[str, Optional[str]]:
    """Split a DV/call target ``name@version`` into its parts."""
    name, _, version = target.partition("@")
    return name, (version or None)


class AnalysisContext:
    """Cross-referenced views over one program (plus optional catalog)."""

    def __init__(
        self,
        program: ProgramNode,
        file: str = "<string>",
        types: Optional[TypeRegistry] = None,
        versions: Optional[VersionRegistry] = None,
        catalog: Optional["VirtualDataCatalog"] = None,
    ) -> None:
        self.program = program
        self.file = file
        self.catalog = catalog
        self.types = types or (
            catalog.types if catalog is not None else default_registry()
        )
        self.versions = versions or (
            catalog.versions if catalog is not None else VersionRegistry()
        )
        #: TR name -> declarations (several when versions/duplicates exist).
        self.trs: dict[str, list[TRInfo]] = {}
        self.dvs: list[DVInfo] = []
        #: ``(tr_name, line, message)`` for unresolvable type names (VDG106).
        self.type_issues: list[tuple[str, int, str]] = []
        #: LFN -> bindings that produce it (direction output/inout).
        self.writers: dict[str, list[Binding]] = {}
        #: LFN -> bindings that consume it (direction input/inout).
        self.readers: dict[str, list[Binding]] = {}
        self._tr_cache: dict[str, Optional[TRInfo]] = {}
        self._lfn_types: Optional[dict[str, list]] = None
        for decl in program.transformations():
            info = self._tr_info(decl)
            self.trs.setdefault(info.name, []).append(info)
        for decl in program.derivations():
            self.dvs.append(self._dv_info(decl))
        self._index_bindings()

    @classmethod
    def from_entities(
        cls,
        *,
        file: str,
        catalog: Optional["VirtualDataCatalog"],
        trs: dict[str, list[TRInfo]],
        dvs: list[DVInfo],
        types: Optional[TypeRegistry] = None,
        versions: Optional[VersionRegistry] = None,
    ) -> "AnalysisContext":
        """Build a context from pre-normalized catalog entities.

        The incremental analyzer (:mod:`repro.analysis.incremental`)
        keeps :class:`TRInfo`/:class:`DVInfo` views live against the
        catalog's mutation stream and assembles contexts through here,
        skipping the export-VDL/reparse round trip entirely.  Such
        contexts carry no source lines (everything is line 0).
        """
        ctx = cls.__new__(cls)
        ctx.program = ProgramNode()
        ctx.file = file
        ctx.catalog = catalog
        ctx.types = types or (
            catalog.types if catalog is not None else default_registry()
        )
        ctx.versions = versions or (
            catalog.versions if catalog is not None else VersionRegistry()
        )
        ctx.trs = trs
        ctx.dvs = list(dvs)
        ctx.type_issues = []
        ctx.writers = {}
        ctx.readers = {}
        ctx._tr_cache = {}
        ctx._lfn_types = None
        ctx._index_bindings()
        return ctx

    def _index_bindings(self) -> None:
        """(Re)build the LFN writer/reader maps from ``self.dvs``."""
        self.writers = {}
        self.readers = {}
        for dv in self.dvs:
            for actual in dv.writes():
                self.writers.setdefault(actual.lfn, []).append((dv, actual))
            for actual in dv.reads():
                self.readers.setdefault(actual.lfn, []).append((dv, actual))

    # -- normalization ----------------------------------------------------

    def _tr_info(self, decl: TransformationDeclNode) -> TRInfo:
        formals = []
        for node in decl.formals:
            types: Optional[TypeUnion] = None
            if node.type_expr is not None:
                members = []
                for content, fmt, enc in node.type_expr.members:
                    try:
                        members.append(
                            resolve_type_triple(self.types, content, fmt, enc)
                        )
                    except UnknownTypeError as exc:
                        self.type_issues.append(
                            (decl.name, node.line, f"formal {node.name!r}: {exc}")
                        )
                if members:
                    types = TypeUnion(members=tuple(members))
            formals.append(
                FormalInfo(
                    name=node.name,
                    direction=node.direction,
                    types=self._drop_any(types),
                    has_default=node.default is not None,
                    line=node.line,
                )
            )
        referenced: set[str] = set()
        calls: list[CallInfo] = []
        for stmt in decl.body:
            if isinstance(stmt, (ArgumentStmtNode, EnvStmtNode)):
                referenced.update(
                    p.name for p in stmt.parts if isinstance(p, FormalRefNode)
                )
            elif isinstance(stmt, CallStmtNode):
                bindings = []
                for name, value in stmt.bindings:
                    if isinstance(value, FormalRefNode):
                        referenced.add(value.name)
                        bindings.append((name, value, value.line or stmt.line))
                    else:
                        bindings.append((name, value, stmt.line))
                calls.append(
                    CallInfo(target=stmt.target, bindings=bindings, line=stmt.line)
                )
        return TRInfo(
            name=decl.name,
            version=decl.version or "1.0",
            line=decl.line,
            formals=formals,
            is_compound=bool(calls),
            calls=calls,
            referenced=referenced,
        )

    @staticmethod
    def _drop_any(types: Optional[TypeUnion]) -> Optional[TypeUnion]:
        """Treat an explicit ``Dataset`` (all-roots) union as untyped."""
        if types is None or all(m.is_any() for m in types.members):
            return None
        return types

    def _dv_info(self, decl: DerivationDeclNode) -> DVInfo:
        actuals = []
        for name, value in decl.actuals:
            line = value.line if isinstance(value, DatasetRefNode) else decl.line
            actuals.append(ActualInfo(name=name, value=value, line=line))
        return DVInfo(
            name=decl.name, target=decl.target, actuals=actuals, line=decl.line
        )

    @staticmethod
    def _from_transformation(tr: Transformation) -> TRInfo:
        """Normalize a core catalog object into a :class:`TRInfo`."""
        formals = [
            FormalInfo(
                name=f.name,
                direction=f.direction,
                types=AnalysisContext._drop_any(f.dataset_types),
                has_default=f.default is not None,
            )
            for f in tr.signature.formals
        ]
        referenced: set[str] = set()
        calls: list[CallInfo] = []
        if isinstance(tr, SimpleTransformation):
            for template in list(tr.arguments) + list(tr.environment.values()):
                referenced.update(template.references())
        elif isinstance(tr, CompoundTransformation):
            for call in tr.calls:
                bindings = []
                for name, value in call.bindings.items():
                    if isinstance(value, FormalRef):
                        referenced.add(value.name)
                        bindings.append(
                            (name, FormalRefNode(value.name, value.direction), 0)
                        )
                    else:
                        bindings.append((name, value, 0))
                calls.append(
                    CallInfo(target=call.target.vdl_text(), bindings=bindings)
                )
        return TRInfo(
            name=tr.name,
            version=tr.version,
            formals=formals,
            is_compound=tr.is_compound,
            calls=calls,
            referenced=referenced,
            origin="catalog",
        )

    # -- resolution -------------------------------------------------------

    def resolve_tr(self, target: str) -> Optional[TRInfo]:
        """Resolve a DV/call target to a signature, or None.

        Program declarations win (latest declaration of the name); a
        backing catalog is consulted next.  Remote ``vdp://`` targets
        resolve to None — cross-catalog callees are out of lint scope.
        """
        if target.startswith("vdp://"):
            return None
        if target in self._tr_cache:
            return self._tr_cache[target]
        name, version = split_target(target)
        info: Optional[TRInfo] = None
        declared = self.trs.get(name)
        if declared:
            if version is None:
                info = declared[-1]
            else:
                for candidate in declared:
                    if candidate.version == version:
                        info = candidate
                # A versioned target that misses every declared version
                # still resolves to the latest declaration: arity/type
                # checks remain useful, and the version rules flag the
                # mismatch separately.
                if info is None:
                    info = declared[-1]
        elif self.catalog is not None and self.catalog.has_transformation(name):
            try:
                info = self._from_transformation(
                    self.catalog.get_transformation(name, version)
                )
            except Exception:
                info = self._from_transformation(
                    self.catalog.get_transformation(name)
                )
        self._tr_cache[target] = info
        return info

    # -- dataset views ----------------------------------------------------

    def dataset_record(self, lfn: str) -> Optional["Dataset"]:
        """The catalog's dataset record for an LFN, or None."""
        if self.catalog is not None and self.catalog.has_dataset(lfn):
            return self.catalog.get_dataset(lfn)
        return None

    def is_materialized(self, lfn: str) -> bool:
        """Whether a backing catalog knows a physical copy of the LFN."""
        if self.catalog is None:
            return False
        record = self.dataset_record(lfn)
        if record is not None and not record.is_virtual:
            return True
        return bool(self.catalog.replicas_of(lfn))

    def lfn_types(self, lfn: str) -> list:
        """Plausible :class:`DatasetType`s of an LFN, statically inferred.

        The catalog's dataset record (when typed) is authoritative;
        otherwise every typed output formal the LFN is bound to
        contributes its union members.  An empty list means "nothing
        known" — type rules must then stay silent.
        """
        if self._lfn_types is None:
            self._lfn_types = {}
        if lfn in self._lfn_types:
            return self._lfn_types[lfn]
        record = self.dataset_record(lfn)
        if record is not None and not record.dataset_type.is_any():
            inferred = [record.dataset_type]
        else:
            inferred = []
            for dv, actual in self.writers.get(lfn, ()):
                tr = self.resolve_tr(dv.target)
                if tr is None:
                    continue
                formal = tr.formal(actual.name)
                if formal is None or formal.types is None:
                    continue
                for member in formal.types.members:
                    if member not in inferred:
                        inferred.append(member)
        self._lfn_types[lfn] = inferred
        return inferred
