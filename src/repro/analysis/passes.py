"""The shipped dataflow analyses: staleness, dead data, types, races.

Each pass runs on the generic engine in
:mod:`repro.analysis.dataflow` against a live
:class:`~repro.analysis.incremental.GraphModel`.  Diagnostic codes:

* ``VDG601``/``VDG602`` — staleness: a replica's recipe (derivation +
  transformation, recorded at execution time) no longer matches the
  catalog, directly (601) or through a stale upstream input (602);
* ``VDG611``/``VDG612`` — dead data: replicas no live derivation
  target needs (611) and invocations whose derivation is gone (612);
* ``VDG621`` — interprocedural type-flow: a dataset bound to an
  *untyped* surface formal that flows into a *typed* formal inside a
  compound body with no conforming inferred type;
* ``VDG631`` — interprocedural output conflicts: two derivations (or
  one, twice) writing the same LFN once compound bodies are expanded,
  including literal internal LFNs invisible to the surface race rule
  ``VDG201``.

All spans are line 0 at the analyzer's synthetic file: these analyses
judge the *catalog*, not a source text.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Set, Tuple

from repro.analysis.dataflow import (
    DataflowPass,
    Digraph,
    ds_node,
    node_kind,
    node_name,
)
from repro.analysis.diagnostics import Diagnostic, Severity

#: Staleness lattice: fresh < stale-via-upstream < stale-at-root.
FRESH, INHERITED, ROOT = 0, 1, 2

#: How a derivation writes an LFN: a surface actual or a write that
#: only appears once compound bodies are expanded.
SURFACE, INTERNAL = "surface", "internal"

_OUT = ("output", "inout")
_IN = ("input", "inout")


def _type_names(members: Iterable[Any]) -> str:
    return ", ".join(sorted(str(m) for m in members))


class StalenessPass(DataflowPass):
    """Forward propagation of recipe drift to materialized replicas."""

    name = "staleness"
    direction = "forward"
    codes = ("VDG601", "VDG602")
    #: Dataset reports name the stale *input of the producing
    #: derivation*, i.e. read facts two dependency hops back.
    report_hops = 2

    def transfer(
        self,
        node: str,
        graph: Digraph,
        facts: Dict[str, Any],
        model: Any,
    ) -> int:
        preds = graph.pred.get(node, ())
        inherited = any(facts.get(p) or FRESH for p in preds)
        if node_kind(node) == "derivation":
            if model.root_dirty(node_name(node)) is not None:
                return ROOT
            return INHERITED if inherited else FRESH
        return INHERITED if inherited else FRESH

    def subsumes(self, new: Any, old: Any) -> bool:
        return new >= old

    def report(
        self,
        node: str,
        graph: Digraph,
        facts: Dict[str, Any],
        model: Any,
    ) -> Iterable[Diagnostic]:
        if node_kind(node) != "dataset":
            return
        if not (facts.get(node) or FRESH):
            return
        lfn = node_name(node)
        if not model.has_replica(lfn):
            return
        producers = sorted(graph.pred.get(node, ()))
        root = next(
            (p for p in producers if facts.get(p) == ROOT), None
        )
        if root is not None:
            dvn = node_name(root)
            yield Diagnostic(
                code="VDG601",
                severity=Severity.WARNING,
                message=(
                    f"replicas of {lfn!r} are stale: "
                    f"{model.root_dirty(dvn)} "
                    f"(producing derivation {dvn!r})"
                ),
                span=model.span(),
                obj=lfn,
                rule=self.name,
            )
            return
        stale_dv = next(
            (p for p in producers if facts.get(p)), None
        )
        if stale_dv is None:
            return
        stale_input = next(
            (
                node_name(i)
                for i in sorted(graph.pred.get(stale_dv, ()))
                if facts.get(i)
            ),
            "<unknown>",
        )
        yield Diagnostic(
            code="VDG602",
            severity=Severity.WARNING,
            message=(
                f"replicas of {lfn!r} are stale: input "
                f"{stale_input!r} of producing derivation "
                f"{node_name(stale_dv)!r} is stale upstream"
            ),
            span=model.span(),
            obj=lfn,
            rule=self.name,
        )


class DeadDataPass(DataflowPass):
    """Backward liveness: which replicas does any live target need?

    A dataset is *needed* when it is a sink (no consumers — someone may
    yet ask for it) or when some consuming derivation is *pending*.  A
    derivation is pending when one of its outputs is needed and not yet
    materialized.  Replicas of un-needed datasets are GC candidates:
    every product derivable from them already exists.
    """

    name = "dead-data"
    direction = "backward"
    codes = ("VDG611", "VDG612")

    def transfer(
        self,
        node: str,
        graph: Digraph,
        facts: Dict[str, Any],
        model: Any,
    ) -> bool:
        succs = graph.succ.get(node, ())
        if node_kind(node) == "dataset":
            if not succs:
                return True  # a sink: always a live target
            return any(facts.get(s) or False for s in succs)
        # Derivation: pending iff some needed output lacks a replica.
        return any(
            (facts.get(s) or False)
            and not model.has_replica(node_name(s))
            for s in succs
        )

    def subsumes(self, new: Any, old: Any) -> bool:
        return bool(new) or not bool(old)

    def report(
        self,
        node: str,
        graph: Digraph,
        facts: Dict[str, Any],
        model: Any,
    ) -> Iterable[Diagnostic]:
        if node_kind(node) != "dataset":
            return
        if facts.get(node) or False:
            return
        lfn = node_name(node)
        if not model.has_replica(lfn):
            return
        yield Diagnostic(
            code="VDG611",
            severity=Severity.INFO,
            message=(
                f"replicas of {lfn!r} are garbage-collection "
                f"candidates: every downstream product is already "
                f"materialized"
            ),
            span=model.span(),
            obj=lfn,
            rule=self.name,
        )


class TypeFlowPass(DataflowPass):
    """Interprocedural type inference through compound bodies.

    The per-dataset fact is ``(inferred_members, unknown)``: the set of
    :class:`~repro.core.types.DatasetType` members any (deeply
    expanded) producer can emit, plus an *unknown* flag set when some
    producer is untyped all the way down.  Reports fire on derivations
    whose dataset actuals are bound to surface-untyped formals that
    feed typed formals inside compound bodies (``VDG621``) — the
    mismatches the surface rule ``VDG105`` cannot see.
    """

    name = "type-flow"
    direction = "forward"
    codes = ("VDG621",)

    _EMPTY: Tuple[Any, ...] = ()

    def transfer(
        self,
        node: str,
        graph: Digraph,
        facts: Dict[str, Any],
        model: Any,
    ) -> Any:
        if node_kind(node) != "dataset":
            return self._EMPTY
        lfn = node_name(node)
        members: Set[Any] = set()
        unknown = False
        declared = model.dataset_declared_type(lfn)
        if declared is not None:
            members.add(declared)
        for pred in graph.pred.get(node, ()):
            dvn = node_name(pred)
            target = model.dv_target(dvn)
            for formal, bound_lfn, direction in model.dv_bindings(dvn):
                if bound_lfn != lfn or direction not in _OUT:
                    continue
                deep = model.deep_output_types(target, formal)
                if deep is None:
                    unknown = True
                else:
                    members.update(deep)
        return (frozenset(members), unknown)

    def subsumes(self, new: Any, old: Any) -> bool:
        if new == self._EMPTY or old == self._EMPTY:
            return new == old
        return new[0] >= old[0] and new[1] >= old[1]

    def report(
        self,
        node: str,
        graph: Digraph,
        facts: Dict[str, Any],
        model: Any,
    ) -> Iterable[Diagnostic]:
        if node_kind(node) != "derivation":
            return
        dvn = node_name(node)
        target = model.dv_target(dvn)
        for formal, lfn, direction in model.dv_bindings(dvn):
            if direction not in _IN:
                continue
            requirements = model.deep_requirements(target, formal)
            if not requirements:
                continue
            fact = facts.get(ds_node(lfn))
            if not isinstance(fact, tuple) or len(fact) != 2:
                continue
            members, unknown = fact
            if unknown or not members:
                continue  # may-analysis: stay silent when uncertain
            for path, required in requirements:
                if any(
                    model.types.conforms_to_any(m, required)
                    for m in members
                ):
                    continue
                yield Diagnostic(
                    code="VDG621",
                    severity=Severity.ERROR,
                    message=(
                        f"DV {dvn!r} binds {lfn!r} to untyped formal "
                        f"{formal!r}, but it flows into {path!r} "
                        f"expecting {_type_names(required)}; inferred "
                        f"types: {_type_names(members)}"
                    ),
                    span=model.span(),
                    obj=dvn,
                    rule=self.name,
                )


class OutputConflictPass(DataflowPass):
    """Interprocedural upgrade of the static output-race rule.

    The per-derivation fact is its *expanded write multiset*: surface
    output actuals plus every literal LFN (and duplicated formal sink)
    written inside nested compound bodies.  A shared-LFN index inside
    the model relates writers that are not graph-adjacent; the
    :meth:`on_fact_change` hook keeps co-writers' reports fresh.
    ``VDG201`` already covers pure surface/surface duplicates, so those
    pairs are skipped here.
    """

    name = "output-conflict"
    direction = "local"
    codes = ("VDG631",)

    def on_full_solve(self, model: Any) -> None:
        model.clear_writer_index()

    def transfer(
        self,
        node: str,
        graph: Digraph,
        facts: Dict[str, Any],
        model: Any,
    ) -> Tuple[Tuple[str, str], ...]:
        if node_kind(node) != "derivation":
            return ()
        return tuple(sorted(model.expanded_writes(node_name(node))))

    def on_fact_change(
        self, node: str, old: Any, new: Any, model: Any
    ) -> Iterable[str]:
        if node_kind(node) != "derivation":
            return ()
        return model.update_writer_index(
            node_name(node), old or (), new or ()
        )

    def report(
        self,
        node: str,
        graph: Digraph,
        facts: Dict[str, Any],
        model: Any,
    ) -> Iterable[Diagnostic]:
        if node_kind(node) != "derivation":
            return
        dvn = node_name(node)
        fact: Tuple[Tuple[str, str], ...] = facts.get(node) or ()
        vias_by_lfn: Dict[str, List[str]] = {}
        for lfn, via in fact:
            vias_by_lfn.setdefault(lfn, []).append(via)
        for lfn in sorted(vias_by_lfn):
            own = vias_by_lfn[lfn]
            if len(own) > 1 and any(v == INTERNAL for v in own):
                yield Diagnostic(
                    code="VDG631",
                    severity=Severity.ERROR,
                    message=(
                        f"derivation {dvn!r} writes {lfn!r} more than "
                        f"once through compound internals"
                    ),
                    span=model.span(),
                    obj=dvn,
                    rule=self.name,
                )
            for other, other_vias in sorted(
                model.writers_of(lfn).items()
            ):
                if other >= dvn:
                    continue  # report each pair once, on the later name
                if set(own) == {SURFACE} and set(other_vias) == {SURFACE}:
                    continue  # VDG201's surface/surface territory
                yield Diagnostic(
                    code="VDG631",
                    severity=Severity.ERROR,
                    message=(
                        f"derivations {other!r} and {dvn!r} both write "
                        f"{lfn!r} through compound internals"
                    ),
                    span=model.span(),
                    obj=dvn,
                    rule=self.name,
                )


def default_passes() -> Tuple[DataflowPass, ...]:
    """Fresh instances of the four shipped analyses."""
    return (
        StalenessPass(),
        DeadDataPass(),
        TypeFlowPass(),
        OutputConflictPass(),
    )


def orphan_invocation_diagnostics(
    model: Any,
) -> Tuple[Diagnostic, ...]:
    """``VDG612`` for invocations whose derivation left the catalog.

    Not a graph pass — orphans by definition have no derivation node —
    but reported alongside :class:`DeadDataPass` results.
    """
    diags = []
    for inv_id, dvn in sorted(model.orphan_invocations()):
        diags.append(
            Diagnostic(
                code="VDG612",
                severity=Severity.INFO,
                message=(
                    f"invocation {inv_id!r} records derivation {dvn!r}, "
                    f"which is no longer in the catalog"
                ),
                span=model.span(),
                obj=inv_id,
                rule="dead-data",
            )
        )
    return tuple(diags)
