"""Live, incrementally-maintained analysis over a mutating catalog.

:class:`IncrementalAnalyzer` subscribes to the catalog's mutation
event stream — the same hook that keeps
:class:`repro.catalog.index.CatalogIndexes` current — and maintains:

* a bipartite derivation :class:`~repro.analysis.dataflow.Digraph`
  (dataset and derivation nodes);
* the :class:`GraphModel` the dataflow passes consult (replica
  presence, execution records, interprocedural transformation
  summaries, the shared-writer index);
* per-pass fact tables and per-node diagnostic caches, re-solved
  lazily over only the dirty region when queried;
* a live :class:`~repro.analysis.context.AnalysisContext` so the
  classic VDG lint rules can run against the catalog without the
  export-VDL/reparse round trip (``repro lint --incremental``).

Mutation handling is O(degree) per event; querying pays only for the
cone the mutations actually influence.  A cold query after
:meth:`rebuild` is a full fixpoint solve — by construction the two
paths produce byte-identical diagnostics (property-tested in
``tests/analysis/test_incremental_property.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.analysis.context import (
    ActualInfo,
    AnalysisContext,
    DVInfo,
    TRInfo,
    split_target,
)
from repro.analysis.dataflow import (
    Digraph,
    SolveStats,
    ds_node,
    dv_node,
    solve,
)
from repro.analysis.diagnostics import Diagnostic, Span
from repro.analysis.passes import (
    INTERNAL,
    SURFACE,
    default_passes,
    orphan_invocation_diagnostics,
)
from repro.core.naming import VDPRef
from repro.core.recipe import RECIPE_DIGEST_ATTR, TR_VERSION_ATTR, recipe_digest
from repro.core.types import DatasetType
from repro.core.versioning import Version
from repro.observability.instrument import NULL, Instrumentation
from repro.vdl.ast import DatasetRefNode, FormalRefNode

_OUT = ("output", "inout")
_IN = ("input", "inout")

#: ``(start_time, status, tr_version, recipe_digest)`` per invocation.
_InvMeta = Tuple[float, str, Optional[str], Optional[str]]


def _version_key(version: str) -> Any:
    try:
        return (0, Version.parse(version))
    except Exception:
        return (1, version)


class GraphModel:
    """Everything the dataflow passes may ask about the catalog.

    Structure (graph, bindings, replicas, invocations) is updated
    eagerly per mutation event; derived knowledge (transformation
    summaries, recipe digests, the conflict writer index) is memoized
    and invalidated when its inputs change.
    """

    def __init__(self, catalog: Any, file: str) -> None:
        self.catalog = catalog
        self.file = file
        self.graph = Digraph()
        self._span = Span(file=file, line=0)
        #: Derivation name -> live DVInfo view (also feeds lint_context).
        self.dv_infos: Dict[str, DVInfo] = {}
        #: Derivation name -> base transformation name (local targets).
        self._dv_tr: Dict[str, str] = {}
        #: Base transformation name -> derivations targeting it.
        self._dvs_by_tr: Dict[str, Set[str]] = {}
        #: LFN -> number of derivations referencing it (node liveness).
        self._ds_refs: Dict[str, int] = {}
        #: LFN -> replica ids.
        self._replicas: Dict[str, Set[str]] = {}
        #: Replica id -> LFN (delete shadow).
        self._replica_owner: Dict[str, str] = {}
        #: Derivation name -> invocation id -> metadata.
        self._invs_by_dv: Dict[str, Dict[str, _InvMeta]] = {}
        #: Invocation id -> derivation name (delete shadow).
        self._inv_owner: Dict[str, str] = {}
        # -- memoized derived state --
        self._tr_table_cache: Optional[Dict[str, List[TRInfo]]] = None
        self._tr_objects: Dict[str, Any] = {}
        self._deep_out: Dict[Tuple[str, str], Any] = {}
        self._deep_req: Dict[Tuple[str, str], Any] = {}
        self._sinks: Dict[str, Tuple[Dict[str, int], Tuple[str, ...]]] = {}
        self._recipe_cache: Dict[str, Any] = {}
        self._ds_types: Dict[str, Optional[DatasetType]] = {}
        self._conflict_writers: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        #: Node ids dropped from the graph since the last drain; the
        #: analyzer uses this to purge per-node facts and reports.
        self._removed_nodes: Set[str] = set()

    # -- trivia the passes need ---------------------------------------

    @property
    def types(self) -> Any:
        return self.catalog.types

    def span(self) -> Span:
        return self._span

    def has_replica(self, lfn: str) -> bool:
        return bool(self._replicas.get(lfn))

    def dv_target(self, name: str) -> str:
        info = self.dv_infos.get(name)
        return info.target if info is not None else ""

    def dv_bindings(self, name: str) -> List[Tuple[str, str, str]]:
        info = self.dv_infos.get(name)
        if info is None:
            return []
        return [
            (a.name, a.lfn, a.direction)
            for a in info.dataset_actuals()
            if a.lfn is not None and a.direction is not None
        ]

    def dataset_declared_type(self, lfn: str) -> Optional[DatasetType]:
        """The record's dataset type when concretely declared.

        Reads the shared cached payload rather than
        ``catalog.get_dataset`` — this runs once per dataset node per
        full solve, and the accessor's isolation deep-copy dominates
        at 10^5 nodes.
        """
        if lfn in self._ds_types:
            return self._ds_types[lfn]
        payload = self.catalog._cached_payload("dataset", lfn)
        return self.prime_dataset_type(lfn, payload)

    def prime_dataset_type(
        self, lfn: str, payload: Optional[Mapping[str, Any]]
    ) -> Optional[DatasetType]:
        """Decode and cache a dataset record's declared type."""
        declared: Optional[DatasetType] = None
        if payload is not None:
            spec = payload.get("type") or {}
            dtype = DatasetType(
                content=spec.get("content", DatasetType.content),
                format=spec.get("format", DatasetType.format),
                encoding=spec.get("encoding", DatasetType.encoding),
            )
            if not dtype.is_any():
                declared = dtype
        self._ds_types[lfn] = declared
        return declared

    # -- structural mutation (called by the analyzer) ------------------

    def index_derivation(self, name: str, payload: Mapping[str, Any]) -> Set[str]:
        """(Re)index one derivation payload; returns seed node ids."""
        seeds = self.unindex_derivation(name)
        info = _dv_info_from_payload(name, payload)
        self.dv_infos[name] = info
        if not info.is_remote:
            base = split_target(info.target)[0]
            self._dv_tr[name] = base
            self._dvs_by_tr.setdefault(base, set()).add(name)
        node = dv_node(name)
        self.graph.add_node(node)
        seeds.add(node)
        for _formal, lfn, direction in self.dv_bindings(name):
            ds = ds_node(lfn)
            self._ds_refs[lfn] = self._ds_refs.get(lfn, 0) + 1
            if direction in _IN:
                self.graph.add_edge(ds, node)
            if direction in _OUT:
                self.graph.add_edge(node, ds)
            seeds.add(ds)
        self._removed_nodes -= seeds
        self._recipe_cache.pop(name, None)
        return seeds

    def drain_removed_nodes(self) -> Set[str]:
        removed, self._removed_nodes = self._removed_nodes, set()
        return removed

    def unindex_derivation(self, name: str) -> Set[str]:
        """Drop a derivation; returns seed node ids (neighbours)."""
        info = self.dv_infos.pop(name, None)
        self._recipe_cache.pop(name, None)
        if info is None:
            return set()
        base = self._dv_tr.pop(name, None)
        if base is not None:
            group = self._dvs_by_tr.get(base)
            if group is not None:
                group.discard(name)
                if not group:
                    del self._dvs_by_tr[base]
        node = dv_node(name)
        seeds = set(self.graph.neighbors(node))
        self.graph.remove_node(node)
        self._removed_nodes.add(node)
        for lfn in {a.lfn for a in info.dataset_actuals() if a.lfn}:
            count = self._ds_refs.get(lfn, 0) - 1
            if count <= 0:
                self._ds_refs.pop(lfn, None)
                ds = ds_node(lfn)
                seeds.discard(ds)
                self.graph.remove_node(ds)
                self._removed_nodes.add(ds)
            else:
                self._ds_refs[lfn] = count
        return seeds

    def index_replica(self, replica_id: str, lfn: str) -> Set[str]:
        self._replica_owner[replica_id] = lfn
        self._replicas.setdefault(lfn, set()).add(replica_id)
        return self._dataset_seeds(lfn)

    def unindex_replica(self, replica_id: str) -> Set[str]:
        lfn = self._replica_owner.pop(replica_id, None)
        if lfn is None:
            return set()
        group = self._replicas.get(lfn)
        if group is not None:
            group.discard(replica_id)
            if not group:
                del self._replicas[lfn]
        return self._dataset_seeds(lfn)

    def index_invocation(
        self, invocation_id: str, payload: Mapping[str, Any]
    ) -> Set[str]:
        self.unindex_invocation(invocation_id)
        dvn = payload["derivation_name"]
        attrs = payload.get("attributes") or {}
        meta: _InvMeta = (
            float(payload.get("start_time") or 0.0),
            payload.get("status") or "",
            attrs.get(TR_VERSION_ATTR),
            attrs.get(RECIPE_DIGEST_ATTR),
        )
        self._inv_owner[invocation_id] = dvn
        self._invs_by_dv.setdefault(dvn, {})[invocation_id] = meta
        node = dv_node(dvn)
        if node in self.graph:
            return {node} | self.graph.neighbors(node)
        return set()

    def unindex_invocation(self, invocation_id: str) -> Set[str]:
        dvn = self._inv_owner.pop(invocation_id, None)
        if dvn is None:
            return set()
        group = self._invs_by_dv.get(dvn)
        if group is not None:
            group.pop(invocation_id, None)
            if not group:
                del self._invs_by_dv[dvn]
        node = dv_node(dvn)
        if node in self.graph:
            return {node} | self.graph.neighbors(node)
        return set()

    def invalidate_dataset(self, lfn: str) -> Set[str]:
        self._ds_types.pop(lfn, None)
        return self._dataset_seeds(lfn)

    def invalidate_transformations(self, base_name: str) -> Set[str]:
        """A TR (version) changed: drop summaries, seed dependent DVs."""
        affected = self._dependent_tr_names(base_name)
        self._tr_table_cache = None
        self._tr_objects.clear()
        self._deep_out.clear()
        self._deep_req.clear()
        self._sinks.clear()
        seeds: Set[str] = set()
        for tr_name in affected:
            for dvn in self._dvs_by_tr.get(tr_name, ()):
                self._recipe_cache.pop(dvn, None)
                node = dv_node(dvn)
                if node in self.graph:
                    seeds.add(node)
                    seeds |= self.graph.neighbors(node)
        return seeds

    def _dataset_seeds(self, lfn: str) -> Set[str]:
        node = ds_node(lfn)
        if node in self.graph:
            return {node} | self.graph.neighbors(node)
        return set()

    def _dependent_tr_names(self, base_name: str) -> Set[str]:
        """``base_name`` plus every TR calling it, transitively."""
        callers: Dict[str, Set[str]] = {}
        for infos in self._tr_table().values():
            for info in infos:
                for call in info.calls:
                    callee = split_target(call.target)[0]
                    callers.setdefault(callee, set()).add(info.name)
        affected = {base_name}
        frontier = [base_name]
        while frontier:
            current = frontier.pop()
            for caller in callers.get(current, ()):
                if caller not in affected:
                    affected.add(caller)
                    frontier.append(caller)
        return affected

    # -- transformation views ------------------------------------------

    def _tr_table(self) -> Dict[str, List[TRInfo]]:
        """Name -> TRInfo per version, oldest first (catalog order)."""
        if self._tr_table_cache is None:
            table: Dict[str, List[TRInfo]] = {}
            for tr in self.catalog.transformations():
                info = AnalysisContext._from_transformation(tr)
                table.setdefault(info.name, []).append(info)
            for infos in table.values():
                infos.sort(key=lambda i: _version_key(i.version))
            self._tr_table_cache = table
        return self._tr_table_cache

    def resolve_trinfo(self, target: str) -> Optional[TRInfo]:
        """TRInfo for a DV/call target; None for remote or unknown."""
        if not target or target.startswith("vdp://"):
            return None
        name, version = split_target(target)
        infos = self._tr_table().get(name)
        if not infos:
            return None
        if version is not None:
            for info in infos:
                if info.version == version:
                    return info
        return infos[-1]

    def resolve_transformation(self, target: str) -> Any:
        """The core Transformation object for a local target, or None."""
        if not target or target.startswith("vdp://"):
            return None
        if target in self._tr_objects:
            return self._tr_objects[target]
        name, version = split_target(target)
        obj = None
        if self.catalog.has_transformation(name):
            try:
                obj = self.catalog.get_transformation(name, version)
            except Exception:
                try:
                    obj = self.catalog.get_transformation(name)
                except Exception:
                    obj = None
        self._tr_objects[target] = obj
        return obj

    # -- staleness support ---------------------------------------------

    def latest_success(self, dvn: str) -> Optional[Tuple[str, str]]:
        """(tr_version, recipe_digest) of the newest stamped success."""
        best: Optional[Tuple[float, str, str, str]] = None
        for inv_id, meta in self._invs_by_dv.get(dvn, {}).items():
            start, status, version, digest = meta
            if status != "success" or (not version and not digest):
                continue
            candidate = (start, inv_id, version or "", digest or "")
            if best is None or candidate > best:
                best = candidate
        if best is None:
            return None
        return (best[2], best[3])

    def current_recipe(self, dvn: str) -> Optional[Tuple[str, str]]:
        """(tr_version, recipe_digest) the catalog resolves today."""
        if dvn in self._recipe_cache:
            return self._recipe_cache[dvn]
        result: Optional[Tuple[str, str]] = None
        info = self.dv_infos.get(dvn)
        if info is not None and not info.is_remote:
            tr = self.resolve_transformation(info.target)
            if tr is not None:
                payload = self.catalog._cached_payload("derivation", dvn)
                if payload is not None:
                    result = (
                        tr.version,
                        recipe_digest(payload, tr.to_dict()),
                    )
        self._recipe_cache[dvn] = result
        return result

    def root_dirty(self, dvn: str) -> Optional[str]:
        """Why this derivation's recipe drifted since execution."""
        recorded = self.latest_success(dvn)
        if recorded is None:
            return None
        current = self.current_recipe(dvn)
        if current is None:
            return None
        rec_version, rec_digest = recorded
        cur_version, cur_digest = current
        versions_differ = bool(
            rec_version and cur_version and rec_version != cur_version
        )
        if versions_differ and self._versions_equivalent(
            dvn, rec_version, cur_version
        ):
            return None
        if versions_differ:
            base = self._dv_tr.get(dvn, "?")
            return (
                f"transformation {base!r} changed: executed version "
                f"{rec_version}, catalog now resolves {cur_version}"
            )
        if rec_digest and cur_digest and rec_digest != cur_digest:
            return "recipe redefined since the last successful execution"
        return None

    def _versions_equivalent(self, dvn: str, a: str, b: str) -> bool:
        base = self._dv_tr.get(dvn)
        if base is None:
            return False
        try:
            return bool(self.catalog.versions.equivalent(base, a, b))
        except Exception:
            return False

    # -- interprocedural summaries -------------------------------------

    def deep_output_types(
        self, target: str, formal: str
    ) -> Optional[Tuple[DatasetType, ...]]:
        """Types a (deeply expanded) output formal can emit; None=any."""
        key = (target, formal)
        if key not in self._deep_out:
            self._deep_out[key] = self._compute_deep_out(
                target, formal, set()
            )
        return self._deep_out[key]

    def _compute_deep_out(
        self, target: str, formal: str, visiting: Set[Tuple[str, str]]
    ) -> Optional[Tuple[DatasetType, ...]]:
        info = self.resolve_trinfo(target)
        if info is None:
            return None
        declared = info.formal(formal)
        if declared is None or declared.is_string:
            return None
        if declared.types is not None:
            return tuple(sorted(declared.types.members, key=str))
        if not info.is_compound or (target, formal) in visiting:
            return None
        visiting = visiting | {(target, formal)}
        members: Set[DatasetType] = set()
        contributed = False
        for call in info.calls:
            for callee_formal, value, _line in call.bindings:
                if (
                    not isinstance(value, FormalRefNode)
                    or value.name != formal
                ):
                    continue
                callee = self.resolve_trinfo(call.target)
                if callee is None:
                    return None
                cf = callee.formal(callee_formal)
                if cf is None or cf.is_string or cf.direction not in _OUT:
                    continue
                deep = self._compute_deep_out(
                    call.target, callee_formal, visiting
                )
                if deep is None:
                    return None
                members.update(deep)
                contributed = True
        if not contributed or not members:
            return None
        return tuple(sorted(members, key=str))

    def deep_requirements(
        self, target: str, formal: str
    ) -> Tuple[Tuple[str, Tuple[DatasetType, ...]], ...]:
        """Typed input constraints a surface-untyped formal feeds.

        Each entry is ``(path, members)`` naming the typed callee
        formal inside a compound body.  Empty when the surface formal
        is itself typed (``VDG105`` territory) or no constraint exists.
        """
        key = (target, formal)
        if key not in self._deep_req:
            self._deep_req[key] = self._compute_deep_req(
                target, formal, set()
            )
        return self._deep_req[key]

    def _compute_deep_req(
        self, target: str, formal: str, visiting: Set[Tuple[str, str]]
    ) -> Tuple[Tuple[str, Tuple[DatasetType, ...]], ...]:
        info = self.resolve_trinfo(target)
        if info is None or not info.is_compound:
            return ()
        declared = info.formal(formal)
        if declared is None or declared.is_string:
            return ()
        if declared.types is not None:
            return ()
        if (target, formal) in visiting:
            return ()
        visiting = visiting | {(target, formal)}
        requirements: List[Tuple[str, Tuple[DatasetType, ...]]] = []
        for call in info.calls:
            for callee_formal, value, _line in call.bindings:
                if (
                    not isinstance(value, FormalRefNode)
                    or value.name != formal
                ):
                    continue
                callee = self.resolve_trinfo(call.target)
                if callee is None:
                    continue
                cf = callee.formal(callee_formal)
                if cf is None or cf.is_string or cf.direction not in _IN:
                    continue
                if cf.types is not None:
                    requirements.append(
                        (
                            f"{callee.name}.{callee_formal}",
                            tuple(sorted(cf.types.members, key=str)),
                        )
                    )
                else:
                    requirements.extend(
                        self._compute_deep_req(
                            call.target, callee_formal, visiting
                        )
                    )
        return tuple(requirements)

    # -- conflict support ----------------------------------------------

    def expanded_writes(self, dvn: str) -> List[Tuple[str, str]]:
        """(lfn, via) write multiset once compound bodies are expanded."""
        info = self.dv_infos.get(dvn)
        if info is None:
            return []
        writes: List[Tuple[str, str]] = []
        counts, literals = self._write_sinks(info.target)
        for actual in info.writes():
            if actual.lfn is None:
                continue
            writes.append((actual.lfn, SURFACE))
            extra = counts.get(actual.name, 0) - 1
            if extra > 0:
                writes.extend([(actual.lfn, INTERNAL)] * extra)
        writes.extend((lfn, INTERNAL) for lfn in literals)
        return writes

    def _write_sinks(
        self, target: str, visiting: Optional[Set[str]] = None
    ) -> Tuple[Dict[str, int], Tuple[str, ...]]:
        """formal -> write count, plus literal LFNs written inside."""
        if visiting is None and target in self._sinks:
            return self._sinks[target]
        visiting = visiting or set()
        info = self.resolve_trinfo(target)
        if info is None or target in visiting:
            return ({}, ())
        if not info.is_compound:
            counts = {
                f.name: 1
                for f in info.formals
                if not f.is_string and f.direction in _OUT
            }
            result = (counts, ())
        else:
            counts = {}
            literals: List[str] = []
            for call in info.calls:
                callee_counts, callee_literals = self._write_sinks(
                    call.target, visiting | {target}
                )
                bound = {
                    callee_formal: value
                    for callee_formal, value, _line in call.bindings
                }
                for callee_formal, count in callee_counts.items():
                    value = bound.get(callee_formal)
                    if isinstance(value, FormalRefNode):
                        counts[value.name] = (
                            counts.get(value.name, 0) + count
                        )
                    elif isinstance(value, str):
                        literals.extend([value] * count)
                    # unbound -> synthesized scratch LFN, never shared
                literals.extend(callee_literals)
            result = (counts, tuple(literals))
        if not visiting:
            self._sinks[target] = result
        return result

    def writers_of(self, lfn: str) -> Dict[str, Tuple[str, ...]]:
        return self._conflict_writers.get(lfn, {})

    def clear_writer_index(self) -> None:
        self._conflict_writers.clear()

    def update_writer_index(
        self,
        dvn: str,
        old: Iterable[Tuple[str, str]],
        new: Iterable[Tuple[str, str]],
    ) -> Set[str]:
        """Sync the shared-LFN index; returns co-writer node ids."""
        old_map: Dict[str, List[str]] = {}
        for lfn, via in old:
            old_map.setdefault(lfn, []).append(via)
        new_map: Dict[str, List[str]] = {}
        for lfn, via in new:
            new_map.setdefault(lfn, []).append(via)
        affected = {
            lfn
            for lfn in set(old_map) | set(new_map)
            if sorted(old_map.get(lfn, [])) != sorted(new_map.get(lfn, []))
        }
        for lfn in set(old_map) - set(new_map):
            entry = self._conflict_writers.get(lfn)
            if entry is not None:
                entry.pop(dvn, None)
                if not entry:
                    del self._conflict_writers[lfn]
        for lfn, vias in new_map.items():
            self._conflict_writers.setdefault(lfn, {})[dvn] = tuple(
                sorted(vias)
            )
        extra: Set[str] = set()
        for lfn in affected:
            for other in self._conflict_writers.get(lfn, {}):
                if other != dvn:
                    extra.add(dv_node(other))
        return extra

    # -- dead-data support ---------------------------------------------

    def orphan_invocations(self) -> List[Tuple[str, str]]:
        """(invocation_id, derivation_name) whose derivation is gone."""
        orphans: List[Tuple[str, str]] = []
        for dvn, group in self._invs_by_dv.items():
            if dvn in self.dv_infos:
                continue
            orphans.extend((inv_id, dvn) for inv_id in group)
        return orphans


def _dv_info_from_payload(name: str, payload: Mapping[str, Any]) -> DVInfo:
    """Normalize a stored derivation payload into a DVInfo (line 0)."""
    ref = VDPRef.parse(
        payload["transformation"], default_kind="transformation"
    )
    actuals: List[ActualInfo] = []
    for formal, value in payload.get("actuals", {}).items():
        if isinstance(value, Mapping):
            actuals.append(
                ActualInfo(
                    name=formal,
                    value=DatasetRefNode(
                        direction=value.get("direction", "input"),
                        lfn=value["dataset"],
                        temporary=bool(value.get("temporary", False)),
                    ),
                )
            )
        else:
            actuals.append(ActualInfo(name=formal, value=value))
    return DVInfo(name=name, target=ref.vdl_text(), actuals=actuals)


class _PassState:
    """Facts, dirtiness and cached reports for one pass."""

    __slots__ = ("pass_", "facts", "dirty", "solved", "reports", "stats")

    def __init__(self, pass_: Any) -> None:
        self.pass_ = pass_
        self.facts: Dict[str, Any] = {}
        self.dirty: Set[str] = set()
        self.solved = False
        self.reports: Dict[str, Tuple[Diagnostic, ...]] = {}
        self.stats = SolveStats()


class IncrementalAnalyzer:
    """Event-subscribed façade over the model, passes, and lint view."""

    def __init__(
        self,
        catalog: Any,
        file: str = "<catalog>",
        passes: Optional[Iterable[Any]] = None,
        obs: Instrumentation = NULL,
    ) -> None:
        self.catalog = catalog
        self.file = file
        self.obs = obs
        self.model = GraphModel(catalog, file)
        self._states: Dict[str, _PassState] = {}
        for pass_ in passes if passes is not None else default_passes():
            self._states[pass_.name] = _PassState(pass_)
        self._events = 0
        self._solves = 0
        self._ctx: Optional[AnalysisContext] = None
        self._ctx_dirty = True
        self._orphan_cache: Optional[Tuple[Diagnostic, ...]] = None
        self.rebuild()
        catalog.subscribe(self.on_event)

    def close(self) -> None:
        """Detach from the catalog's event stream."""
        self.catalog.unsubscribe(self.on_event)

    @property
    def pass_names(self) -> List[str]:
        return list(self._states)

    # -- event intake ---------------------------------------------------

    def on_event(self, event: str, kind: str, key: str) -> None:
        """Catalog mutation hook: update structure, mark dirt, return."""
        self._events += 1
        model = self.model
        seeds: Set[str] = set()
        if kind == "derivation":
            payload = None
            if event == "put":
                payload = self.catalog._cached_payload("derivation", key)
            if payload is not None:
                seeds = model.index_derivation(key, payload)
            else:
                seeds = model.unindex_derivation(key)
            for node in model.drain_removed_nodes():
                self._forget_node(node)
            self._orphan_cache = None
            self._ctx_dirty = True
        elif kind == "replica":
            if event == "put":
                payload = self.catalog._cached_payload("replica", key)
                if payload is not None:
                    seeds = model.index_replica(
                        key, payload["dataset_name"]
                    )
            else:
                seeds = model.unindex_replica(key)
            self._ctx_dirty = True
        elif kind == "transformation":
            base = split_target(key)[0]
            seeds = model.invalidate_transformations(base)
            self._ctx_dirty = True
        elif kind == "invocation":
            if event == "put":
                payload = self.catalog._cached_payload("invocation", key)
                if payload is not None:
                    seeds = model.index_invocation(key, payload)
            else:
                seeds = model.unindex_invocation(key)
            self._orphan_cache = None
        elif kind == "dataset":
            seeds = model.invalidate_dataset(key)
            self._ctx_dirty = True
        if seeds:
            for state in self._states.values():
                state.dirty |= seeds

    def _forget_node(self, node: str) -> None:
        """Drop per-node state for a node that left the graph."""
        for state in self._states.values():
            old = state.facts.pop(node, None)
            state.reports.pop(node, None)
            extra = state.pass_.on_fact_change(node, old, None, self.model)
            state.dirty |= set(extra)

    # -- rebuild (cold start / snapshot import) ------------------------

    def rebuild(self) -> None:
        """Re-derive everything from the backing store."""
        with self.obs.span("analysis.rebuild", file=self.file), (
            self.catalog._lock
        ):
            catalog = self.catalog
            self.model = GraphModel(catalog, self.file)
            model = self.model
            # Bulk scans: payloads are backend-owned shared documents
            # (read here, never retained), skipping the per-object
            # isolation copy that dominates at 10^5 objects.
            for name, payload in catalog._store_scan("derivation"):
                model.index_derivation(name, payload)
            for replica_id, payload in catalog._store_scan("replica"):
                model.index_replica(replica_id, payload["dataset_name"])
            for inv_id, payload in catalog._store_scan("invocation"):
                model.index_invocation(inv_id, payload)
            for lfn, payload in catalog._store_scan("dataset"):
                model.prime_dataset_type(lfn, payload)
            for state in self._states.values():
                state.facts.clear()
                state.reports.clear()
                state.dirty.clear()
                state.solved = False
            self._ctx = None
            self._ctx_dirty = True
            self._orphan_cache = None

    def invalidate(self) -> None:
        """Force the next query to re-solve everything from scratch.

        Needed after out-of-band knowledge changes the catalog cannot
        signal — e.g. new version-compatibility assertions.
        """
        for state in self._states.values():
            state.solved = False
            state.dirty.clear()
        self._ctx_dirty = True
        self._orphan_cache = None

    # -- queries --------------------------------------------------------

    def diagnostics(
        self, passes: Optional[Iterable[str]] = None
    ) -> List[Diagnostic]:
        """Solved, sorted diagnostics for the selected passes."""
        selected = self._select(passes)
        out: List[Diagnostic] = []
        with self.catalog._lock:
            for state in selected:
                self._ensure_solved(state)
                for report in state.reports.values():
                    out.extend(report)
                if "VDG612" in state.pass_.codes:
                    out.extend(self._orphans())
        out.sort(key=Diagnostic.sort_key)
        return out

    def _select(
        self, passes: Optional[Iterable[str]]
    ) -> List[_PassState]:
        if passes is None:
            return list(self._states.values())
        selected = []
        for name in passes:
            if name not in self._states:
                raise KeyError(f"unknown analysis pass {name!r}")
            selected.append(self._states[name])
        return selected

    def _orphans(self) -> Tuple[Diagnostic, ...]:
        if self._orphan_cache is None:
            self._orphan_cache = orphan_invocation_diagnostics(self.model)
        return self._orphan_cache

    def _ensure_solved(self, state: _PassState) -> None:
        graph = self.model.graph
        if state.solved and not state.dirty:
            return
        self._solves += 1
        pass_ = state.pass_
        mode = "incremental" if state.solved else "full"
        with self.obs.span(
            "analysis.solve", analysis=pass_.name, mode=mode
        ) as span:
            if not state.solved:
                result = solve(
                    pass_, graph, state.facts, self.model, None
                )
                report_nodes: Set[str] = set(graph.nodes)
                state.reports.clear()
            else:
                result = solve(
                    pass_, graph, state.facts, self.model, state.dirty
                )
                report_nodes = result.report
            state.dirty.clear()
            state.solved = True
            state.stats = result.stats
            for node in report_nodes:
                if node not in graph:
                    state.reports.pop(node, None)
                    continue
                report = tuple(
                    pass_.report(node, graph, state.facts, self.model)
                )
                if report:
                    state.reports[node] = report
                else:
                    state.reports.pop(node, None)
            if self.obs.enabled:
                span.set("nodes", len(graph))
                span.set("visited", result.stats.visited)
                span.set("reported", len(report_nodes))
                self.obs.count(
                    "analysis.incremental.solves",
                    help="dataflow solves",
                    analysis=pass_.name,
                    mode=mode,
                )

    def lint_context(self) -> AnalysisContext:
        """A live AnalysisContext equivalent to a cold catalog lint.

        Built from catalog objects (no VDL export, no reparse), so all
        spans are line 0.
        """
        with self.catalog._lock:
            if self._ctx is None or self._ctx_dirty:
                model = self.model
                dvs = sorted(
                    model.dv_infos.values(), key=lambda d: d.name
                )
                trs = {
                    name: list(infos)
                    for name, infos in sorted(model._tr_table().items())
                }
                self._ctx = AnalysisContext.from_entities(
                    file=self.file,
                    catalog=self.catalog,
                    trs=trs,
                    dvs=dvs,
                )
                self._ctx_dirty = False
            return self._ctx

    def stats(self) -> Dict[str, Any]:
        """Counters for benchmarks and ``repro analyze --stats``."""
        per_pass = {}
        for name, state in self._states.items():
            per_pass[name] = {
                "solved": state.solved,
                "dirty": len(state.dirty),
                "mode": state.stats.mode,
                "seeds": state.stats.seeds,
                "visited": state.stats.visited,
                "changed": state.stats.changed,
                "reset_cone": state.stats.reset_cone,
            }
        return {
            "file": self.file,
            "events": self._events,
            "solves": self._solves,
            "nodes": len(self.model.graph),
            "derivations": len(self.model.dv_infos),
            "passes": per_pass,
        }
