"""Pluggable rule registry for the VDL linter.

A rule is a plain function ``(AnalysisContext) -> Iterable[Diagnostic]``
wrapped in a :class:`Rule` record carrying its stable metadata (the
``VDGxxx`` codes it may emit, a short kebab-case name, a one-line
description).  :class:`RuleRegistry` holds an ordered set of rules and
supports suppression by rule name *or* diagnostic code, so CI can say
``--no-rule VDG402`` or ``--no-rule dead-code`` and mean the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from repro.analysis.diagnostics import Diagnostic


@dataclass(frozen=True)
class Rule:
    """One registered check."""

    name: str
    codes: tuple[str, ...]
    description: str
    check: Callable[..., Iterable[Diagnostic]]

    def matches(self, token: str) -> bool:
        """Whether a suppression token (rule name or code) targets us."""
        return token == self.name or token.upper() in self.codes


class RuleRegistry:
    """Ordered, suppressible collection of lint rules."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None) -> None:
        self._rules: list[Rule] = []
        self._disabled: set[str] = set()
        for r in rules or ():
            self.register(r)

    def register(self, rule: Rule) -> Rule:
        if any(existing.name == rule.name for existing in self._rules):
            raise ValueError(f"duplicate rule name {rule.name!r}")
        self._rules.append(rule)
        return rule

    def disable(self, *tokens: str) -> None:
        """Suppress rules by name (``output-race``) or code (``VDG201``)."""
        self._disabled.update(tokens)

    def enabled(self) -> list[Rule]:
        return [
            r
            for r in self._rules
            if not any(r.matches(t) for t in self._disabled)
        ]

    def suppressed_codes(self) -> set[str]:
        """Individual codes suppressed without disabling their whole rule."""
        return {t.upper() for t in self._disabled if t.upper().startswith("VDG")}

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def rule(self, name: str) -> Rule:
        for r in self._rules:
            if r.name == name:
                return r
        raise KeyError(name)


#: Module-level accumulator the ``@rule`` decorator feeds; consumed by
#: :func:`default_rules`.
_DEFAULT: list[Rule] = []


def rule(
    name: str, codes: tuple[str, ...], description: str
) -> Callable[[Callable[..., Iterable[Diagnostic]]], Rule]:
    """Decorator registering a check function as a default rule."""

    def wrap(fn: Callable[..., Iterable[Diagnostic]]) -> Rule:
        record = Rule(name=name, codes=codes, description=description, check=fn)
        _DEFAULT.append(record)
        return record

    return wrap


def default_rules() -> RuleRegistry:
    """A fresh registry holding every built-in rule."""
    # Importing the module runs the @rule decorators exactly once.
    import repro.analysis.rules  # noqa: F401

    return RuleRegistry(_DEFAULT)
