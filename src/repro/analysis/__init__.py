"""Static whole-program analysis of VDL and the derivation graph.

The :class:`~repro.vdl.semantics.Analyzer` checks one declaration at a
time; this package checks the *program*: cross-catalog signature
conformance, static output races, derivation-graph cycles, dead code,
and version-compatibility assertions.  Findings are
:class:`Diagnostic` records with stable ``VDGxxx`` codes (catalogued in
``docs/LINTING.md``), surfaced through ``repro lint`` and the
``plan --strict`` pre-flight.

Beyond the per-source rules, :mod:`repro.analysis.dataflow` provides a
generic worklist/fixpoint engine over the derivation graph, and
:mod:`repro.analysis.incremental` keeps its results (staleness, dead
data, interprocedural type flow, output conflicts — see
:mod:`repro.analysis.passes`) live against a mutating catalog via the
mutation-event stream, surfaced through ``repro analyze`` and
``repro lint --incremental``.
"""

from repro.analysis.context import AnalysisContext
from repro.analysis.dataflow import (
    DataflowPass,
    Digraph,
    SolveResult,
    SolveStats,
    ds_node,
    dv_node,
    node_kind,
    node_name,
    solve,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    Span,
    count_by_severity,
    max_severity,
)
from repro.analysis.incremental import GraphModel, IncrementalAnalyzer
from repro.analysis.linter import Linter, LintResult
from repro.analysis.passes import (
    DeadDataPass,
    OutputConflictPass,
    StalenessPass,
    TypeFlowPass,
    default_passes,
)
from repro.analysis.registry import Rule, RuleRegistry, default_rules, rule
from repro.analysis.reporters import exit_code, render_json, render_text
from repro.analysis.suppressions import apply_suppressions, parse_suppressions

__all__ = [
    "AnalysisContext",
    "DataflowPass",
    "DeadDataPass",
    "Diagnostic",
    "Digraph",
    "GraphModel",
    "IncrementalAnalyzer",
    "Linter",
    "LintResult",
    "OutputConflictPass",
    "Rule",
    "RuleRegistry",
    "Severity",
    "SolveResult",
    "SolveStats",
    "Span",
    "StalenessPass",
    "TypeFlowPass",
    "apply_suppressions",
    "count_by_severity",
    "default_passes",
    "default_rules",
    "ds_node",
    "dv_node",
    "exit_code",
    "max_severity",
    "node_kind",
    "node_name",
    "parse_suppressions",
    "render_json",
    "render_text",
    "rule",
    "solve",
]
