"""Static whole-program analysis of VDL and the derivation graph.

The :class:`~repro.vdl.semantics.Analyzer` checks one declaration at a
time; this package checks the *program*: cross-catalog signature
conformance, static output races, derivation-graph cycles, dead code,
and version-compatibility assertions.  Findings are
:class:`Diagnostic` records with stable ``VDGxxx`` codes (catalogued in
``docs/LINTING.md``), surfaced through ``repro lint`` and the
``plan --strict`` pre-flight.
"""

from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    Span,
    count_by_severity,
    max_severity,
)
from repro.analysis.linter import Linter, LintResult
from repro.analysis.registry import Rule, RuleRegistry, default_rules, rule
from repro.analysis.reporters import exit_code, render_json, render_text

__all__ = [
    "AnalysisContext",
    "Diagnostic",
    "Severity",
    "Span",
    "count_by_severity",
    "max_severity",
    "Linter",
    "LintResult",
    "Rule",
    "RuleRegistry",
    "default_rules",
    "rule",
    "exit_code",
    "render_json",
    "render_text",
]
