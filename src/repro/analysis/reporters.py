"""Render lint results for humans (text) and machines (JSON).

Exit-code contract (stable; CI depends on it):

* ``0`` — clean: no errors, no warnings (info findings allowed);
* ``1`` — at least one error;
* ``2`` — warnings but no errors.
"""

from __future__ import annotations

import json

from repro.analysis.diagnostics import Severity, max_severity
from repro.analysis.linter import LintResult


def render_text(result: LintResult) -> str:
    """GCC-style ``file:line: severity[CODE]: message`` listing."""
    lines = [d.render() for d in result.diagnostics]
    counts = result.counts()
    total = len(result.diagnostics)
    if total == 0:
        summary = f"{result.file}: clean (0 diagnostics)"
    else:
        parts = [
            f"{counts[key]} {key}{'s' if counts[key] != 1 else ''}"
            for key in ("error", "warning", "info")
            if counts[key]
        ]
        summary = f"{result.file}: {', '.join(parts)}"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """A single JSON document: diagnostics plus a summary block."""
    payload = {
        "file": result.file,
        "diagnostics": [d.as_dict() for d in result.diagnostics],
        "summary": result.counts(),
        "exit_code": exit_code(result),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def exit_code(result: LintResult) -> int:
    severity = max_severity(result.diagnostics)
    if severity is None or severity < Severity.WARNING:
        return 0
    if severity >= Severity.ERROR:
        return 1
    return 2
