"""``python -m repro`` — the virtual data workspace CLI."""

import sys

from repro.cli import main

sys.exit(main())
