"""repro — a reproduction of the Virtual Data Grid (Chimera, CIDR 2003).

The package implements the paper's virtual data schema, the Chimera
Virtual Data Language, distributed virtual data catalogs with federation
and cross-catalog hyperlinks, a simulated data grid substrate, and the
planning / estimation / derivation / discovery process flow.

Quickstart::

    from repro import VirtualDataSystem

    vds = VirtualDataSystem()
    vds.define('''
        TR quick::double( output b, input a ) {
            argument stdin = ${input:a};
            argument stdout = ${output:b};
            exec = "/usr/bin/double";
        }
        DV d1->quick::double( b=@{output:"out.txt"}, a=@{input:"in.txt"} );
    ''')
    plan = vds.plan("out.txt")
    report = vds.materialize("out.txt")

See ``README.md`` for the architecture overview and ``DESIGN.md`` for
the paper-to-module map.
"""

from repro.core import (
    ANY_DATASET,
    CompoundTransformation,
    Dataset,
    DatasetArg,
    DatasetType,
    Derivation,
    FileDescriptor,
    FormalArg,
    Invocation,
    Replica,
    SimpleTransformation,
    Transformation,
    TypeRegistry,
    VDPRef,
    VirtualDescriptor,
    default_registry,
)

__version__ = "1.0.0"

__all__ = [
    "ANY_DATASET",
    "CompoundTransformation",
    "Dataset",
    "DatasetArg",
    "DatasetType",
    "Derivation",
    "FileDescriptor",
    "FormalArg",
    "Instrumentation",
    "Invocation",
    "Replica",
    "SimpleTransformation",
    "Transformation",
    "TypeRegistry",
    "VDPRef",
    "VirtualDataSystem",
    "VirtualDescriptor",
    "default_registry",
    "__version__",
]


def __getattr__(name):
    # VirtualDataSystem pulls in the whole stack (catalog, planner,
    # executor); import it lazily so `import repro` stays light.
    if name == "VirtualDataSystem":
        from repro.system import VirtualDataSystem

        return VirtualDataSystem
    if name == "Instrumentation":
        from repro.observability import Instrumentation

        return Instrumentation
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
