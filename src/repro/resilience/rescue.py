"""Rescue-DAG recovery: resume a killed or failed workflow run.

Condor DAGMan's rescue-DAG mechanism (the §5.4 workflow manager this
repo models) writes a file naming every node that already completed,
so a crashed campaign restarts by re-executing only the remainder.
This module is that mechanism for :class:`~repro.planner.dag.Plan`
runs:

* :func:`rescue_from_result` distils a (partial or failed)
  :class:`~repro.planner.scheduler.WorkflowResult` into a
  :class:`RescueFile` — completed steps with their chosen site and
  checksummed outputs, failed steps with their errors, and steps
  skipped as ``upstream-failed``;
* :func:`apply_rescue` replays a rescue file against a (possibly
  fresh) grid before re-execution: recorded outputs are re-registered
  with the replica location service, every replica is re-verified
  against its recorded size/digest, and corrupt copies are
  **quarantined** — deleted from site storage, unregistered, their
  catalog replicas removed and their provenance blast radius computed
  via :func:`repro.provenance.invalidation.invalidated_by` — so the
  producing step simply re-executes.

The file is JSON so operators can inspect and hand-edit it, exactly
like a DAGMan rescue file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.durability.atomic import atomic_write_text
from repro.errors import RescueError
from repro.observability.instrument import NULL, Instrumentation

if TYPE_CHECKING:  # import cycle guards: scheduler imports nothing from here
    from repro.catalog.base import VirtualDataCatalog
    from repro.grid.gram import GridExecutionService
    from repro.planner.dag import Plan
    from repro.planner.scheduler import WorkflowResult

#: Version 2 is line-oriented (header line + one line per step entry)
#: so a file torn by a crash still yields its valid prefix, exactly
#: like flight records; version-1 single-document files still load.
RESCUE_VERSION = 2


def expected_digest(lfn: str, size: int) -> str:
    """The simulated content digest of an honestly produced replica.

    The simulator has no real bytes, so the "checksum" of a correct
    copy is a stable function of (LFN, size); corrupted stage-outs
    record a different digest, which is what verification catches —
    the moral equivalent of GridFTP checksum validation.
    """
    return "sha256:" + sha256(f"{lfn}:{size}".encode()).hexdigest()[:16]


def plan_signature(plan: "Plan") -> str:
    """A stable fingerprint of a plan's structure (steps + edges).

    Resuming against a differently shaped plan would silently skip the
    wrong work, so :func:`apply_rescue` refuses on mismatch.
    """
    payload = {
        "targets": sorted(plan.targets),
        "steps": sorted(plan.steps),
        "deps": {
            name: sorted(deps) for name, deps in sorted(plan.dependencies.items())
        },
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return sha256(blob).hexdigest()[:24]


@dataclass
class RescueStep:
    """One completed step as recorded in a rescue file."""

    step: str
    site: str
    attempts: int
    #: output LFN -> {"size": int, "digest": str}
    outputs: dict[str, dict] = field(default_factory=dict)


@dataclass
class RescueFile:
    """The on-disk record of one (partial) workflow run."""

    targets: tuple[str, ...]
    signature: str
    completed: dict[str, RescueStep] = field(default_factory=dict)
    #: failed step -> {"site": ..., "attempts": ..., "error": ...}
    failed: dict[str, dict] = field(default_factory=dict)
    #: skipped step -> reason (e.g. "upstream-failed:stepX")
    skipped: dict[str, str] = field(default_factory=dict)
    finished: bool = False
    version: int = RESCUE_VERSION
    #: Set by :meth:`load` when the file ended in a torn line (crash
    #: mid-append): the valid prefix was salvaged.  ``save`` rewrites
    #: the file whole, clearing the tear.
    truncated: bool = False

    @property
    def unfinished(self) -> bool:
        return not self.finished

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "targets": list(self.targets),
            "signature": self.signature,
            "finished": self.finished,
            "completed": {
                name: {
                    "site": s.site,
                    "attempts": s.attempts,
                    "outputs": s.outputs,
                }
                for name, s in sorted(self.completed.items())
            },
            "failed": dict(sorted(self.failed.items())),
            "skipped": dict(sorted(self.skipped.items())),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RescueFile":
        try:
            version = int(data.get("version", RESCUE_VERSION))
            if version > RESCUE_VERSION:
                raise RescueError(
                    f"rescue file version {version} is newer than "
                    f"supported ({RESCUE_VERSION})"
                )
            return cls(
                targets=tuple(data["targets"]),
                signature=str(data["signature"]),
                completed={
                    name: RescueStep(
                        step=name,
                        site=entry["site"],
                        attempts=int(entry.get("attempts", 1)),
                        outputs=dict(entry.get("outputs", {})),
                    )
                    for name, entry in data.get("completed", {}).items()
                },
                failed=dict(data.get("failed", {})),
                skipped=dict(data.get("skipped", {})),
                finished=bool(data.get("finished", False)),
                version=version,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RescueError(f"malformed rescue file: {exc}") from exc

    def save(self, path: str | Path) -> None:
        """Write the v2 line-oriented form, atomically.

        A header line carries the identity fields; each completed,
        failed and skipped step gets its own line.  The temp-file +
        rename dance means a crash during save leaves either the old
        file or the new one — never a half-written hybrid — and a
        crash tearing a line (e.g. on a dying disk) still costs only
        that line on load.
        """
        lines = [
            json.dumps(
                {
                    "kind": "rescue",
                    "version": RESCUE_VERSION,
                    "targets": list(self.targets),
                    "signature": self.signature,
                    "finished": self.finished,
                },
                sort_keys=True,
            )
        ]
        for name, entry in sorted(self.completed.items()):
            lines.append(
                json.dumps(
                    {
                        "kind": "completed",
                        "step": name,
                        "site": entry.site,
                        "attempts": entry.attempts,
                        "outputs": entry.outputs,
                    },
                    sort_keys=True,
                )
            )
        for name, info in sorted(self.failed.items()):
            lines.append(
                json.dumps(
                    {"kind": "failed", "step": name, **info}, sort_keys=True
                )
            )
        for name, reason in sorted(self.skipped.items()):
            lines.append(
                json.dumps(
                    {"kind": "skipped", "step": name, "reason": reason},
                    sort_keys=True,
                )
            )
        atomic_write_text(Path(path), "\n".join(lines) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "RescueFile":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise RescueError(
                f"cannot read rescue file {str(path)!r}: {exc}"
            ) from exc
        try:
            # Version-1 rescue files are one (pretty-printed) document.
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError:
            pass
        return cls._load_lines(text, path)

    @classmethod
    def _load_lines(cls, text: str, path: str | Path) -> "RescueFile":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise RescueError(f"rescue file {str(path)!r} is empty")
        records: list[dict] = []
        truncated = False
        for i, raw in enumerate(lines):
            try:
                records.append(json.loads(raw))
            except json.JSONDecodeError as exc:
                if i == len(lines) - 1:
                    # Torn final line: salvage the valid prefix.
                    truncated = True
                    break
                raise RescueError(
                    f"cannot read rescue file {str(path)!r}: "
                    f"unparseable line {i + 1}"
                ) from exc
        header = records[0] if records else None
        if not isinstance(header, dict) or header.get("kind") != "rescue":
            raise RescueError(
                f"cannot read rescue file {str(path)!r}: not a rescue "
                "header"
            )
        version = int(header.get("version", RESCUE_VERSION))
        if version > RESCUE_VERSION:
            raise RescueError(
                f"rescue file version {version} is newer than "
                f"supported ({RESCUE_VERSION})"
            )
        try:
            rescue = cls(
                targets=tuple(header["targets"]),
                signature=str(header["signature"]),
                finished=bool(header.get("finished", False)),
                version=version,
                truncated=truncated,
            )
            for record in records[1:]:
                kind = record.get("kind")
                name = record["step"]
                if kind == "completed":
                    rescue.completed[name] = RescueStep(
                        step=name,
                        site=record["site"],
                        attempts=int(record.get("attempts", 1)),
                        outputs=dict(record.get("outputs", {})),
                    )
                elif kind == "failed":
                    rescue.failed[name] = {
                        key: value
                        for key, value in record.items()
                        if key not in ("kind", "step")
                    }
                elif kind == "skipped":
                    rescue.skipped[name] = str(record.get("reason", ""))
                else:
                    raise RescueError(
                        f"unknown rescue entry kind {kind!r}"
                    )
        except (KeyError, TypeError, ValueError) as exc:
            raise RescueError(f"malformed rescue file: {exc}") from exc
        return rescue


def rescue_from_result(
    result: "WorkflowResult", plan: Optional["Plan"] = None
) -> RescueFile:
    """Distil a run summary into a rescue file."""
    plan = plan or result.plan
    rescue = RescueFile(
        targets=tuple(plan.targets),
        signature=plan_signature(plan),
        finished=result.succeeded,
    )
    for name, outcome in result.outcomes.items():
        record = outcome.record
        if record.succeeded and name not in result.failed_steps:
            rescue.completed[name] = RescueStep(
                step=name,
                site=outcome.site,
                attempts=outcome.attempts,
                outputs={
                    lfn: {"size": size, "digest": expected_digest(lfn, size)}
                    for lfn, size in record.spec.outputs.items()
                },
            )
        else:
            rescue.failed[name] = {
                "site": outcome.site,
                "attempts": outcome.attempts,
                "error": record.error or record.status,
            }
    rescue.skipped = dict(result.skipped_steps)
    return rescue


@dataclass
class RescueRestore:
    """What :func:`apply_rescue` did to the grid before re-execution."""

    #: Steps that remain completed (skip re-execution).
    completed: set[str] = field(default_factory=set)
    #: Steps recorded complete whose outputs failed verification.
    invalidated_steps: set[str] = field(default_factory=set)
    #: (lfn, site) replicas re-registered from the rescue record.
    restored: list[tuple[str, str]] = field(default_factory=list)
    #: (lfn, site) replicas deleted as corrupt.
    quarantined: list[tuple[str, str]] = field(default_factory=list)
    #: Datasets whose provenance is tainted by quarantined replicas.
    tainted_datasets: set[str] = field(default_factory=set)


def apply_rescue(
    plan: "Plan",
    rescue: RescueFile,
    grid: "GridExecutionService",
    catalog: Optional["VirtualDataCatalog"] = None,
    instrumentation: Optional[Instrumentation] = None,
) -> RescueRestore:
    """Trust-but-verify replay of a rescue file against ``grid``.

    Every completed step's outputs are checked: a replica already on
    the grid must match its recorded size/digest (corrupt copies are
    quarantined and the step re-executes); a replica missing from the
    grid — e.g. when resuming in a fresh process — is restored from
    the rescue record, modelling data that survived the crash on the
    site's disks.
    """
    obs = instrumentation or NULL
    signature = plan_signature(plan)
    if rescue.signature != signature:
        raise RescueError(
            f"rescue file does not match this plan (rescue signature "
            f"{rescue.signature}, plan signature {signature}); the "
            f"workflow definition changed since the rescue was written"
        )
    restore = RescueRestore()
    now = grid.simulator.now
    for name, entry in sorted(rescue.completed.items()):
        if name not in plan.steps:
            continue
        step_ok = True
        for lfn, meta in sorted(entry.outputs.items()):
            size = int(meta["size"])
            digest = str(meta.get("digest") or expected_digest(lfn, size))
            site = grid.sites.get(entry.site)
            if site is None:
                step_ok = False
                continue
            if grid.replicas.has(lfn, entry.site) and site.storage.holds(lfn):
                stored = site.storage.file(lfn)
                if stored.size == size and (
                    stored.digest is None or stored.digest == digest
                ):
                    continue  # verified in place
                _quarantine(lfn, entry.site, grid, catalog, restore, obs)
                step_ok = False
            elif grid.replicas.has(lfn):
                continue  # a copy survives elsewhere on the grid
            else:
                # Fresh world: the bytes survived on the site's disk
                # even though this process has no memory of them.
                site.storage.store(lfn, size, now, digest=digest)
                grid.replicas.register(lfn, entry.site, size)
                restore.restored.append((lfn, entry.site))
                if obs.enabled:
                    obs.count(
                        "rescue.replicas.restored",
                        help="replicas re-registered from rescue files",
                    )
        if step_ok:
            restore.completed.add(name)
        else:
            restore.invalidated_steps.add(name)
    if obs.enabled:
        obs.count(
            "rescue.steps.resumed",
            len(restore.completed),
            help="steps skipped on resume thanks to a rescue file",
        )
    return restore


def _quarantine(
    lfn: str,
    site_name: str,
    grid: "GridExecutionService",
    catalog: Optional["VirtualDataCatalog"],
    restore: RescueRestore,
    obs: Instrumentation,
) -> None:
    """Remove one corrupt replica everywhere it is recorded."""
    site = grid.sites[site_name]
    if site.storage.holds(lfn):
        site.storage.delete(lfn)
    if grid.replicas.has(lfn, site_name):
        grid.replicas.unregister(lfn, site_name)
    restore.quarantined.append((lfn, site_name))
    if obs.enabled:
        obs.count(
            "rescue.replicas.quarantined",
            help="corrupt replicas deleted during rescue validation",
        )
    if catalog is None:
        return
    for replica in catalog.replicas_of(lfn):
        if replica.location == site_name:
            catalog.remove_replica(replica.replica_id)
    from repro.provenance.graph import DerivationGraph
    from repro.provenance.invalidation import invalidated_by

    graph = DerivationGraph.from_catalog(catalog)
    report = invalidated_by(graph, bad_datasets=[lfn])
    restore.tainted_datasets |= report.tainted_datasets | {lfn}
