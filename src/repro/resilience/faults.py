"""Deterministic fault injection for the simulated grid.

The paper's production runs ("a grid consisting of almost 800 hosts
spread across four sites", §6) lived with partial failure as the norm:
sites drop out, transfers abort mid-stream, batch jobs die, disks
corrupt files.  :class:`FaultPlan` describes such an environment as
data — seeded rates plus explicit site outage/degradation windows —
and :class:`FaultInjector` turns the plan into per-event verdicts that
the grid layer (:mod:`repro.grid.gram`, :mod:`repro.grid.network`)
consults at submission, staging, execution and stage-out time.

Two properties matter:

* **Determinism** — every verdict is derived from the plan's seed plus
  a stable key (fault kind, job/LFN/site names, attempt ordinal), so a
  run with the same plan, workload and seed reproduces exactly, which
  is what the recovery tests and the CI fault matrix rely on.
* **Fault taxonomy** — verdicts distinguish *transient* job faults
  (a retry may succeed), *permanent* job faults (this job can never
  succeed at this site — only failover helps), site *outages* (every
  job at the site fails during the window), *degradations* (straggler
  slowdowns), *transfer* faults (stage-in dies on the wire) and
  *corrupted outputs* (stage-out writes bytes whose size/checksum do
  not match the declaration).  The taxonomy follows the WMS fault
  models surveyed in "A Taxonomy of Data Grids" (cs/0506034).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.durability.atomic import atomic_write_json
from repro.errors import FaultPlanError
from repro.observability.instrument import NULL, Instrumentation

#: Fault kinds stamped on :class:`~repro.grid.gram.JobRecord.fault`.
FAULT_KINDS = (
    "transient",
    "permanent",
    "outage",
    "transfer",
    "corrupt",
    "timeout",
)


@dataclass(frozen=True)
class OutageWindow:
    """A full-site outage: every job and transfer touching ``site``
    fails while ``start <= t < end``."""

    site: str
    start: float
    end: float

    def covers(self, t: float) -> bool:
        return self.start <= t < self.end

    def overlaps(self, lo: float, hi: float) -> bool:
        return self.start < hi and lo < self.end


@dataclass(frozen=True)
class Degradation:
    """A straggler window: jobs starting at ``site`` during the window
    run ``slowdown`` times longer than nominal."""

    site: str
    start: float
    end: float
    slowdown: float = 3.0

    def covers(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass
class FaultPlan:
    """Everything the injector needs, as plain data (JSON-round-trips).

    Rates are probabilities in ``[0, 1)`` evaluated per event:
    ``transient_rate`` per job attempt, ``permanent_rate`` per
    (job, site) pair, ``transfer_fault_rate`` per wide-area transfer,
    ``corruption_rate`` per output file staged out.  Site-specific
    transient rates override the global one.
    """

    seed: int = 0
    transient_rate: float = 0.0
    permanent_rate: float = 0.0
    transfer_fault_rate: float = 0.0
    corruption_rate: float = 0.0
    outages: list[OutageWindow] = field(default_factory=list)
    degradations: list[Degradation] = field(default_factory=list)
    site_transient_rates: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in (
            "transient_rate",
            "permanent_rate",
            "transfer_fault_rate",
            "corruption_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise FaultPlanError(f"{name} must be in [0, 1); got {rate}")
        for site, rate in self.site_transient_rates.items():
            if not 0.0 <= rate < 1.0:
                raise FaultPlanError(
                    f"site_transient_rates[{site!r}] must be in [0, 1)"
                )
        for window in self.outages:
            if window.end <= window.start:
                raise FaultPlanError(
                    f"outage window for {window.site!r} is empty "
                    f"({window.start} .. {window.end})"
                )
        for window in self.degradations:
            if window.slowdown < 1.0:
                raise FaultPlanError("degradation slowdown must be >= 1.0")

    @property
    def is_null(self) -> bool:
        """True when the plan can never inject anything."""
        return (
            not self.transient_rate
            and not self.permanent_rate
            and not self.transfer_fault_rate
            and not self.corruption_rate
            and not self.outages
            and not self.degradations
            and not any(self.site_transient_rates.values())
        )

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "transient_rate": self.transient_rate,
            "permanent_rate": self.permanent_rate,
            "transfer_fault_rate": self.transfer_fault_rate,
            "corruption_rate": self.corruption_rate,
            "outages": [
                {"site": w.site, "start": w.start, "end": w.end}
                for w in self.outages
            ],
            "degradations": [
                {
                    "site": w.site,
                    "start": w.start,
                    "end": w.end,
                    "slowdown": w.slowdown,
                }
                for w in self.degradations
            ],
            "site_transient_rates": dict(self.site_transient_rates),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        try:
            return cls(
                seed=int(data.get("seed", 0)),
                transient_rate=float(data.get("transient_rate", 0.0)),
                permanent_rate=float(data.get("permanent_rate", 0.0)),
                transfer_fault_rate=float(data.get("transfer_fault_rate", 0.0)),
                corruption_rate=float(data.get("corruption_rate", 0.0)),
                outages=[
                    OutageWindow(
                        site=w["site"],
                        start=float(w["start"]),
                        end=float(w["end"]),
                    )
                    for w in data.get("outages", ())
                ],
                degradations=[
                    Degradation(
                        site=w["site"],
                        start=float(w["start"]),
                        end=float(w["end"]),
                        slowdown=float(w.get("slowdown", 3.0)),
                    )
                    for w in data.get("degradations", ())
                ],
                site_transient_rates={
                    site: float(rate)
                    for site, rate in data.get(
                        "site_transient_rates", {}
                    ).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from exc

    def save(self, path: str | Path) -> None:
        atomic_write_json(Path(path), self.to_dict())

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise FaultPlanError(
                f"cannot read fault plan {str(path)!r}: {exc}"
            ) from exc
        return cls.from_dict(data)


class FaultInjector:
    """Turns a :class:`FaultPlan` into per-event verdicts.

    Verdicts are derived from ``hash(seed, kind, key, ordinal)``-seeded
    RNG draws: the ordinal counts how many times the same (kind, key)
    pair was asked, so the first attempt of a job and its retry get
    independent — but individually reproducible — draws.
    """

    def __init__(
        self,
        plan: FaultPlan,
        instrumentation: Optional[Instrumentation] = None,
    ):
        self.plan = plan
        self.obs = instrumentation or NULL
        self._ordinals: dict[tuple[str, str], int] = {}
        #: Count of verdicts that injected a fault, by kind.
        self.injected: dict[str, int] = {}

    # -- deterministic draws -----------------------------------------------

    def _draw(self, kind: str, key: str) -> float:
        """A fresh U[0,1) draw for (kind, key), deterministic per plan."""
        ordinal = self._ordinals.get((kind, key), 0)
        self._ordinals[(kind, key)] = ordinal + 1
        return random.Random(
            f"{self.plan.seed}:{kind}:{key}:{ordinal}"
        ).random()

    def _stable_draw(self, kind: str, key: str) -> float:
        """A draw that is the same every time it is asked (no ordinal)."""
        return random.Random(f"{self.plan.seed}:{kind}:{key}").random()

    def _record(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if self.obs.enabled:
            self.obs.count(
                "grid.faults.injected",
                kind=kind,
                help="injected faults by kind",
            )
        if self.obs.recorder is not None:
            self.obs.recorder.event("fault.injected", fault=kind)

    # -- verdicts ----------------------------------------------------------

    def outage(self, site: str, now: float) -> Optional[OutageWindow]:
        """The outage window covering ``site`` at ``now``, if any."""
        for window in self.plan.outages:
            if window.site == site and window.covers(now):
                return window
        return None

    def outage_overlapping(
        self, site: str, start: float, end: float
    ) -> Optional[OutageWindow]:
        """An outage window intersecting ``[start, end)`` at ``site``."""
        for window in self.plan.outages:
            if window.site == site and window.overlaps(start, end):
                return window
        return None

    def next_outage_end(self, site: str, now: float) -> Optional[float]:
        """When the current outage at ``site`` lifts (None if up)."""
        window = self.outage(site, now)
        return window.end if window else None

    def site_down(self, site: str, now: float) -> Optional[str]:
        """Reason string when ``site`` is in an outage at ``now``."""
        window = self.outage(site, now)
        if window is None:
            return None
        self._record("outage")
        return f"site {site!r} is down until t={window.end:g}"

    def run_fault(
        self, job: str, site: str, start: float, end: float
    ) -> Optional[tuple[str, str]]:
        """(kind, reason) verdict for a job running ``[start, end)``.

        An outage anywhere in the run window kills the job; otherwise
        the per-attempt job fault draws apply.
        """
        window = self.outage_overlapping(site, start, end)
        if window is not None:
            self._record("outage")
            return (
                "outage",
                f"site {site!r} went down at t={window.start:g} "
                f"(until t={window.end:g})",
            )
        kind = self.job_fault(job, site)
        if kind == "permanent":
            return (
                kind,
                f"permanent fault: {job!r} can never succeed at {site!r}",
            )
        if kind == "transient":
            return (kind, f"transient execution fault at {site!r}")
        return None

    def slowdown(self, site: str, when: float) -> float:
        """CPU-time multiplier for a job starting at ``site`` then."""
        factor = 1.0
        for window in self.plan.degradations:
            if window.site == site and window.covers(when):
                factor = max(factor, window.slowdown)
        if factor > 1.0:
            self._record("straggler")
        return factor

    def transfer_fault(
        self, lfn: str, src: str, dst: str, now: float
    ) -> Optional[str]:
        """Reason string when the transfer should fail, else None."""
        if src == dst:
            return None  # local copies do not cross the wide area
        for site in (src, dst):
            window = self.outage(site, now)
            if window is not None:
                self._record("outage")
                return (
                    f"site {site!r} is down until t={window.end:g}; "
                    f"transfer of {lfn!r} aborted"
                )
        rate = self.plan.transfer_fault_rate
        if rate and self._draw("transfer", f"{lfn}>{src}>{dst}") < rate:
            self._record("transfer")
            return f"transfer of {lfn!r} from {src!r} to {dst!r} failed"
        return None

    def job_fault(self, job: str, site: str) -> Optional[str]:
        """Fault kind for one job attempt at ``site`` (None = healthy).

        Permanent verdicts are *stable*: once a (job, site) pair is
        condemned, every attempt there fails, so only failover to a
        different site can save the step.
        """
        if self.plan.permanent_rate and (
            self._stable_draw("permanent", f"{job}@{site}")
            < self.plan.permanent_rate
        ):
            self._record("permanent")
            return "permanent"
        rate = self.plan.site_transient_rates.get(
            site, self.plan.transient_rate
        )
        if rate and self._draw("transient", f"{job}@{site}") < rate:
            self._record("transient")
            return "transient"
        return None

    def corrupt_output(self, job: str, lfn: str) -> bool:
        """Whether this stage-out writes a corrupted copy of ``lfn``."""
        rate = self.plan.corruption_rate
        if rate and self._draw("corrupt", f"{job}:{lfn}") < rate:
            self._record("corrupt")
            return True
        return False
