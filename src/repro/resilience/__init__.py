"""Fault injection and fault-tolerant workflow execution.

The §5.4 workflow manager must "monitor completion" on a grid where
partial failure is the norm (§6 reports campaigns across ~120 hosts).
This package supplies both halves of that story for the simulated
grid:

* :mod:`repro.resilience.faults` — a seeded, deterministic fault model
  (:class:`FaultPlan` / :class:`FaultInjector`): site outages and
  degradation windows, transient vs. permanent job faults, wide-area
  transfer failures, straggler slowdowns and corrupted outputs;
* :mod:`repro.resilience.policies` — recovery policies the scheduler
  plugs in (:class:`RetryPolicy` with exponential backoff and
  deterministic jitter, per-site :class:`CircuitBreaker` automata with
  half-open probing, the ``fail-fast`` vs ``run-what-you-can``
  failure policy, straggler timeouts) bundled as
  :class:`RecoveryConfig`;
* :mod:`repro.resilience.rescue` — DAGMan-style rescue files
  (:class:`RescueFile`) that let ``GridExecutor.materialize(...,
  rescue=...)`` and ``repro run --rescue`` resume a killed or failed
  run, re-executing only unfinished steps after checksum-verifying
  (and quarantining) recorded replicas.

See ``docs/RESILIENCE.md`` for the full fault model and policy guide.
"""

from repro.resilience.faults import (
    FAULT_KINDS,
    Degradation,
    FaultInjector,
    FaultPlan,
    OutageWindow,
)
from repro.resilience.policies import (
    CLOSED,
    FAIL_FAST,
    FAILURE_POLICIES,
    HALF_OPEN,
    OPEN,
    RUN_WHAT_YOU_CAN,
    STATE_CODES,
    BreakerBoard,
    CircuitBreaker,
    ExponentialBackoff,
    ImmediateRetry,
    RecoveryConfig,
    RetryPolicy,
)
from repro.resilience.rescue import (
    RescueFile,
    RescueRestore,
    RescueStep,
    apply_rescue,
    expected_digest,
    plan_signature,
    rescue_from_result,
)

__all__ = [
    "CLOSED",
    "FAULT_KINDS",
    "FAIL_FAST",
    "FAILURE_POLICIES",
    "HALF_OPEN",
    "OPEN",
    "RUN_WHAT_YOU_CAN",
    "STATE_CODES",
    "BreakerBoard",
    "CircuitBreaker",
    "Degradation",
    "ExponentialBackoff",
    "FaultInjector",
    "FaultPlan",
    "ImmediateRetry",
    "OutageWindow",
    "RecoveryConfig",
    "RescueFile",
    "RescueRestore",
    "RescueStep",
    "RetryPolicy",
    "apply_rescue",
    "expected_digest",
    "plan_signature",
    "rescue_from_result",
]
