"""Recovery policies: retry backoff, circuit breakers, failure modes.

The scheduler's original recovery story was "resubmit immediately to
the same site, abort everything on the first exhausted step".  This
module supplies the pluggable pieces of the hardened story:

* :class:`RetryPolicy` — when to resubmit a failed attempt.
  :class:`ImmediateRetry` preserves the historical behaviour;
  :class:`ExponentialBackoff` spaces attempts out on the *simulation*
  clock with deterministic jitter (seeded per step+attempt), the
  standard defence against retry storms on a struggling site.
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per-site breakers
  with the classic closed → open → half-open automaton: enough
  consecutive failures open the breaker, a cooldown later one probe
  job is let through, and its outcome decides between closing and
  re-opening (cf. the site banning/blacklisting machinery of
  production WMS stacks such as DIRAC).
* :class:`RecoveryConfig` — one bundle of the above plus the
  workflow-level failure policy (``fail-fast`` vs
  ``run-what-you-can``) and the per-attempt straggler timeout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import PlanningError

#: Breaker states, with the numeric codes exported as the
#: ``scheduler.breaker.state`` gauge.
CLOSED, HALF_OPEN, OPEN = "closed", "half-open", "open"
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

#: Workflow-level failure policies.
FAIL_FAST = "fail-fast"
RUN_WHAT_YOU_CAN = "run-what-you-can"
FAILURE_POLICIES = (FAIL_FAST, RUN_WHAT_YOU_CAN)


class RetryPolicy:
    """Decides the delay (sim seconds) before resubmitting a step.

    ``attempt`` is the number of attempts already failed (1 after the
    first failure).  ``key`` is the step name, used only to decorrelate
    jitter between steps.
    """

    def delay(self, attempt: int, key: str = "") -> float:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class ImmediateRetry(RetryPolicy):
    """Resubmit at once — the historical (pre-resilience) behaviour."""

    def delay(self, attempt: int, key: str = "") -> float:
        return 0.0

    def describe(self) -> str:
        return "immediate"


class ExponentialBackoff(RetryPolicy):
    """``base * factor**(attempt-1)`` capped at ``max_delay``, plus
    deterministic jitter in ``[0, jitter * delay)``.

    Jitter is seeded from ``(seed, key, attempt)`` so a rerun of the
    same workflow produces byte-identical schedules while different
    steps still decorrelate.
    """

    def __init__(
        self,
        base: float = 1.0,
        factor: float = 2.0,
        max_delay: float = 300.0,
        jitter: float = 0.1,
        seed: int = 0,
    ):
        if base < 0 or factor < 1.0 or max_delay < 0 or jitter < 0:
            raise PlanningError("invalid backoff parameters")
        self.base = base
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed

    def delay(self, attempt: int, key: str = "") -> float:
        raw = min(self.base * self.factor ** max(0, attempt - 1),
                  self.max_delay)
        if not self.jitter:
            return raw
        frac = random.Random(f"{self.seed}:{key}:{attempt}").random()
        return raw * (1.0 + self.jitter * frac)

    def describe(self) -> str:
        return (
            f"backoff(base={self.base:g}, factor={self.factor:g}, "
            f"max={self.max_delay:g})"
        )


class CircuitBreaker:
    """One site's closed/open/half-open failure automaton.

    * **closed** — traffic flows; ``failure_threshold`` *consecutive*
      failures trip the breaker open.
    * **open** — no traffic for ``cooldown`` sim seconds.
    * **half-open** — exactly one probe job is admitted; success closes
      the breaker (and resets the failure count), failure re-opens it
      for another cooldown.
    """

    def __init__(
        self,
        site: str,
        failure_threshold: int = 3,
        cooldown: float = 120.0,
    ):
        if failure_threshold < 1:
            raise PlanningError("breaker failure_threshold must be >= 1")
        if cooldown <= 0:
            raise PlanningError("breaker cooldown must be positive")
        self.site = site
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self._probe_in_flight = False
        #: (time, old_state, new_state) transition log.
        self.transitions: list[tuple[float, str, str]] = []

    def _move(self, state: str, now: float) -> None:
        if state != self.state:
            self.transitions.append((now, self.state, state))
            self.state = state

    def allows(self, now: float) -> bool:
        """Whether a submission to this site may proceed at ``now``."""
        if self.state == OPEN:
            if now - self.opened_at >= self.cooldown:
                self._move(HALF_OPEN, now)
                self._probe_in_flight = False
            else:
                return False
        if self.state == HALF_OPEN:
            return not self._probe_in_flight
        return True

    def admit(self, now: float) -> None:
        """Record that a submission was let through (probe tracking)."""
        if self.state == HALF_OPEN:
            self._probe_in_flight = True

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        self._probe_in_flight = False
        self._move(CLOSED, now)

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._move(OPEN, now)
            self.opened_at = now
            self._probe_in_flight = False

    def retry_at(self, now: float) -> float:
        """Earliest time a submission could be admitted."""
        if self.state == OPEN:
            return self.opened_at + self.cooldown
        return now

    @property
    def state_code(self) -> int:
        return STATE_CODES[self.state]


class BreakerBoard:
    """The per-site breaker registry the scheduler consults."""

    def __init__(self, failure_threshold: int = 3, cooldown: float = 120.0):
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, site: str) -> CircuitBreaker:
        if site not in self._breakers:
            self._breakers[site] = CircuitBreaker(
                site,
                failure_threshold=self.failure_threshold,
                cooldown=self.cooldown,
            )
        return self._breakers[site]

    def available(self, sites: list[str], now: float) -> list[str]:
        return [s for s in sites if self.breaker(s).allows(now)]

    def earliest_retry(self, sites: list[str], now: float) -> float:
        """Soonest any of ``sites`` re-admits traffic."""
        return min(self.breaker(s).retry_at(now) for s in sites)

    def states(self) -> dict[str, str]:
        return {site: b.state for site, b in sorted(self._breakers.items())}

    def __iter__(self):
        return iter(self._breakers.values())


@dataclass
class RecoveryConfig:
    """The full recovery posture for one workflow run.

    ``step_timeout`` bounds a single *attempt* in sim seconds: an
    attempt still unfinished when the timer fires is killed (the
    straggler keeps its host busy but its outputs are discarded) and
    the step re-enters the retry path.  ``failover=True`` re-invokes
    the site selector on every retry with the sites that already
    failed this step excluded (falling back to all sites when the
    exclusion would leave none).
    """

    retry_policy: RetryPolicy = field(default_factory=ImmediateRetry)
    breakers: Optional[BreakerBoard] = None
    failure_policy: str = FAIL_FAST
    step_timeout: Optional[float] = None
    failover: bool = True

    def __post_init__(self) -> None:
        if self.failure_policy not in FAILURE_POLICIES:
            raise PlanningError(
                f"unknown failure policy {self.failure_policy!r}; "
                f"expected one of {FAILURE_POLICIES}"
            )
        if self.step_timeout is not None and self.step_timeout <= 0:
            raise PlanningError("step_timeout must be positive")

    @classmethod
    def hardened(
        cls,
        seed: int = 0,
        failure_policy: str = RUN_WHAT_YOU_CAN,
        step_timeout: Optional[float] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 120.0,
        backoff_base: float = 1.0,
    ) -> "RecoveryConfig":
        """The recommended production posture: exponential backoff with
        deterministic jitter, per-site breakers, failover, and
        independent branches kept running."""
        return cls(
            retry_policy=ExponentialBackoff(base=backoff_base, seed=seed),
            breakers=BreakerBoard(
                failure_threshold=breaker_threshold,
                cooldown=breaker_cooldown,
            ),
            failure_policy=failure_policy,
            step_timeout=step_timeout,
            failover=True,
        )
