"""Per-transformation cost models learned from invocation history (§5.3).

"Estimation: Determine the cost of executing a procedure.  This
information can be vital input to both provisioning and user query
planning decisions." (§2)  The virtual data schema makes this possible
because resource usage is recorded with provenance: every
:class:`~repro.core.invocation.Invocation` carries cpu seconds and byte
counts.

:class:`TransformationCostModel` fits ``cpu = a + b * bytes_read`` by
least squares over the history (falling back to the mean when inputs
don't vary), plus a mean output-size model.  When no history exists,
declared hints on the transformation's attributes are honoured:

* ``cost.cpu_seconds`` — fixed cpu estimate;
* ``cost.cpu_per_byte`` — marginal cpu per input byte;
* ``cost.output_bytes`` — expected size of each output.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional

from repro.catalog.base import VirtualDataCatalog
from repro.core.derivation import Derivation
from repro.core.invocation import Invocation
from repro.observability.instrument import NULL, Instrumentation

#: Used when nothing at all is known (1 second, 1 MB) — deliberately
#: visible defaults rather than silent zeros.
FALLBACK_CPU_SECONDS = 1.0
FALLBACK_OUTPUT_BYTES = 1_000_000


@dataclass
class TransformationCostModel:
    """A fitted (or declared) cost model for one transformation."""

    transformation: str
    intercept: float = FALLBACK_CPU_SECONDS
    per_byte: float = 0.0
    mean_output_bytes: int = FALLBACK_OUTPUT_BYTES
    samples: int = 0

    def predict_cpu_seconds(self, input_bytes: int = 0) -> float:
        """Predicted cpu seconds for a run reading ``input_bytes``."""
        return max(0.0, self.intercept + self.per_byte * input_bytes)

    def predict_output_bytes(self) -> int:
        return max(0, self.mean_output_bytes)

    @property
    def is_fitted(self) -> bool:
        return self.samples > 0


def fit_samples(
    transformation: str,
    samples: list[tuple[float, float, float]],
) -> TransformationCostModel:
    """Least-squares fit of cpu ~ bytes_read over raw samples.

    Each sample is ``(bytes_read, cpu_seconds, bytes_written)``.  The
    sample-based core lets the same fit serve live
    :class:`~repro.core.invocation.Invocation` objects, flight
    records, and the run-history metastore's aggregate tables.
    """
    if not samples:
        return TransformationCostModel(transformation=transformation)
    xs = [float(s[0]) for s in samples]
    ys = [float(s[1]) for s in samples]
    n = len(samples)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x > 0:
        slope = sum(
            (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
        ) / var_x
        intercept = mean_y - slope * mean_x
        if slope < 0:
            # Anti-correlation is noise at these sample sizes; a
            # negative marginal cost would corrupt planning.
            slope, intercept = 0.0, mean_y
    else:
        slope, intercept = 0.0, mean_y
    outputs = [s[2] for s in samples if s[2]]
    mean_out = (
        int(sum(outputs) / len(outputs)) if outputs else FALLBACK_OUTPUT_BYTES
    )
    return TransformationCostModel(
        transformation=transformation,
        intercept=max(0.0, intercept),
        per_byte=slope,
        mean_output_bytes=mean_out,
        samples=n,
    )


def fit_model(
    transformation: str, invocations: list[Invocation]
) -> TransformationCostModel:
    """Least-squares fit of cpu ~ bytes_read over successful runs."""
    return fit_samples(
        transformation,
        [
            (
                float(inv.usage.bytes_read),
                inv.usage.cpu_seconds,
                float(inv.usage.bytes_written),
            )
            for inv in invocations
            if inv.succeeded
        ],
    )


class Estimator:
    """Answers cost queries against one catalog's recorded history."""

    def __init__(
        self,
        catalog: VirtualDataCatalog,
        instrumentation: Optional[Instrumentation] = None,
    ):
        self.catalog = catalog
        self.obs = instrumentation or NULL
        self._models: dict[str, TransformationCostModel] = {}

    # -- model management ------------------------------------------------------

    def refit(self) -> None:
        """Rebuild every model from the catalog's invocation records."""
        self._models.clear()
        by_tr: dict[str, list[Invocation]] = {}
        for dv in self.catalog.derivations():
            tr_name = dv.transformation.name
            by_tr.setdefault(tr_name, []).extend(
                self.catalog.invocations_of(dv.name)
            )
        for tr_name, invocations in by_tr.items():
            self._models[tr_name] = fit_model(tr_name, invocations)

    def train_on_record(self, record) -> dict[str, TransformationCostModel]:
        """Fit models from one recorded run's flight record.

        A :class:`~repro.observability.recorder.RunRecord` carries the
        same (bytes_read, cpu_seconds) pairs the catalog does, but for
        exactly one run — so a record taken on one grid can train an
        estimator bound to a different (even empty) catalog.  Returns
        the transformations whose models were refreshed.
        """
        plan_steps = record.plan_steps()
        by_tr: dict[str, list[Invocation]] = {}
        for data in record.invocations:
            entry = plan_steps.get(data.get("derivation_name", ""))
            if entry is None:
                continue
            by_tr.setdefault(entry["transformation"], []).append(
                Invocation.from_dict(data)
            )
        trained: dict[str, TransformationCostModel] = {}
        for tr_name, invocations in sorted(by_tr.items()):
            model = fit_model(tr_name, invocations)
            if model.is_fitted:
                self._models[tr_name] = trained[tr_name] = model
                if self.obs.enabled:
                    self.obs.count(
                        "estimator.trained",
                        help="models refreshed from run records",
                    )
        return trained

    def train_on_history(
        self, history
    ) -> dict[str, TransformationCostModel]:
        """Fit models from the whole run-history metastore.

        Where :meth:`train_on_record` learns from one run, this pools
        every successful invocation the
        :class:`~repro.observability.history.HistoryStore` has
        ingested — the §5.3 estimation loop closed over *all* recorded
        history rather than the latest flight.  Returns the
        transformations whose models were refreshed.
        """
        trained: dict[str, TransformationCostModel] = {}
        for tr_name, rows in sorted(history.training_samples().items()):
            model = fit_samples(
                tr_name,
                [
                    (
                        float(row["bytes_read"]),
                        float(row["cpu_seconds"]),
                        float(row["bytes_written"]),
                    )
                    for row in rows
                ],
            )
            if model.is_fitted:
                self._models[tr_name] = trained[tr_name] = model
                if self.obs.enabled:
                    self.obs.count(
                        "estimator.trained",
                        help="models refreshed from run records",
                    )
        return trained

    def model_for(self, transformation: str) -> TransformationCostModel:
        """The model for one transformation, fitting lazily.

        Order of preference: fitted history, declared ``cost.*`` hints,
        visible fallback constants.
        """
        model = self._models.get(transformation)
        if model is not None and model.is_fitted:
            return model
        invocations: list[Invocation] = []
        for dv in self.catalog.find_derivations(transformation=transformation):
            invocations.extend(self.catalog.invocations_of(dv.name))
        model = fit_model(transformation, invocations)
        if not model.is_fitted and self.catalog.has_transformation(
            transformation
        ):
            tr = self.catalog.get_transformation(transformation)
            cpu = tr.attributes.get("cost.cpu_seconds")
            per_byte = tr.attributes.get("cost.cpu_per_byte")
            out_bytes = tr.attributes.get("cost.output_bytes")
            if cpu is not None:
                model.intercept = float(cpu)
            if per_byte is not None:
                model.per_byte = float(per_byte)
            if out_bytes is not None:
                model.mean_output_bytes = int(out_bytes)
        self._models[transformation] = model
        return model

    # -- queries --------------------------------------------------------------

    def input_bytes_of(self, dv: Derivation) -> int:
        """Total declared size of a derivation's input datasets."""
        total = 0
        for name in dv.inputs():
            if self.catalog.has_dataset(name):
                total += self.catalog.get_dataset(name).size_estimate()
        return total

    def estimate_derivation(self, dv: Derivation) -> float:
        """Predicted cpu seconds for one derivation."""
        model = self.model_for(dv.transformation.name)
        if self.obs.enabled:
            self.obs.count(
                "estimator.estimates",
                fitted=model.is_fitted,
                help="cost predictions served (fitted vs hint/fallback)",
            )
        return model.predict_cpu_seconds(self.input_bytes_of(dv))

    def estimate_output_bytes(self, dv: Derivation, output: str) -> int:
        """Predicted size of one output dataset of a derivation.

        A declared dataset size wins over the model's mean.
        """
        if self.catalog.has_dataset(output):
            declared = self.catalog.get_dataset(output).size_estimate(default=0)
            if declared:
                return declared
        return self.model_for(dv.transformation.name).predict_output_bytes()

    def confidence(self, transformation: str) -> int:
        """Number of historical samples behind the model (0 = hints only)."""
        return self.model_for(transformation).samples
