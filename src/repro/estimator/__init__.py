"""Cost estimation from recorded invocations (§5.3)."""

from repro.estimator.cost import (
    Estimator,
    FALLBACK_CPU_SECONDS,
    FALLBACK_OUTPUT_BYTES,
    TransformationCostModel,
    fit_model,
)
from repro.estimator.workflow import (
    WorkflowEstimate,
    estimate_plan,
    sweep_hosts,
)

__all__ = [
    "Estimator",
    "FALLBACK_CPU_SECONDS",
    "FALLBACK_OUTPUT_BYTES",
    "TransformationCostModel",
    "WorkflowEstimate",
    "estimate_plan",
    "fit_model",
    "sweep_hosts",
]
