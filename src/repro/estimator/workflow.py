"""Whole-workflow cost estimation (§5.3).

"Given a set of alternative potential plans being evaluated by the
request planning function, the estimator must determine the cost of
executing the data derivation workflow graph of each plan (which
consists of both computation and data transfer nodes). ... interactive
users may query the estimator directly to assess whether or not a
particular desired virtual data product is feasible — whether it can be
computed in the time that the user is willing to wait for it."

:func:`estimate_plan` performs analytic list scheduling: steps are
processed in topological order onto ``host_count`` abstract hosts; each
step pays its transfer seconds then its cpu seconds.  The result is an
upper-bound-ish makespan that tracks the simulator closely (the EST
benchmark quantifies the error).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import EstimationError
from repro.planner.dag import Plan

#: Default analytic transfer rate when no topology is supplied.
DEFAULT_ANALYTIC_BANDWIDTH = 10e6


@dataclass
class WorkflowEstimate:
    """Predicted cost of executing one plan."""

    makespan_seconds: float
    total_cpu_seconds: float
    total_transfer_seconds: float
    critical_path_seconds: float
    host_count: int
    step_count: int

    def meets_deadline(self, deadline_seconds: float) -> bool:
        """The §5.3 interactive feasibility query."""
        return self.makespan_seconds <= deadline_seconds


def estimate_plan(
    plan: Plan,
    host_count: int = 1,
    input_bytes: dict[str, int] | None = None,
    bandwidth: float = DEFAULT_ANALYTIC_BANDWIDTH,
    include_intermediates: bool = False,
) -> WorkflowEstimate:
    """Analytically estimate ``plan``'s execution cost.

    ``input_bytes`` maps dataset names to sizes for transfer costing
    (the externally staged-in sources).  With
    ``include_intermediates=True``, intra-plan products are also
    charged at ``bandwidth`` when consumed — a pessimistic model for
    schedules that move every intermediate between sites.  Datasets in
    neither set are assumed local (zero transfer).
    """
    if host_count <= 0:
        raise EstimationError("host_count must be positive")
    if not plan.steps:
        return WorkflowEstimate(
            makespan_seconds=0.0,
            total_cpu_seconds=0.0,
            total_transfer_seconds=0.0,
            critical_path_seconds=0.0,
            host_count=host_count,
            step_count=0,
        )
    sizes: dict[str, int] = dict(input_bytes or {})
    if include_intermediates:
        for step in plan.steps.values():
            sizes.update(step.output_sizes)

    def step_seconds(name: str) -> tuple[float, float]:
        step = plan.steps[name]
        transfer = sum(
            sizes.get(lfn, 0) / bandwidth for lfn in step.inputs
        )
        return transfer, step.cpu_seconds

    # Critical path (infinite hosts).
    finish: dict[str, float] = {}
    for name in plan.topological_order():
        transfer, cpu = step_seconds(name)
        ready = max(
            (finish[dep] for dep in plan.dependencies[name]), default=0.0
        )
        finish[name] = ready + transfer + cpu
    critical_path = max(finish.values())

    # List scheduling on host_count hosts.
    hosts = [0.0] * host_count
    heapq.heapify(hosts)
    done_at: dict[str, float] = {}
    total_transfer = 0.0
    remaining = set(plan.steps)
    completed: set[str] = set()
    while remaining:
        ready = [
            n
            for n in sorted(remaining)
            if plan.dependencies[n] <= completed
        ]
        if not ready:
            raise EstimationError("plan has a dependency cycle")
        # Dispatch ready steps in order of their data-ready time.
        ready.sort(
            key=lambda n: (
                max(
                    (done_at[d] for d in plan.dependencies[n]),
                    default=0.0,
                ),
                n,
            )
        )
        for name in ready:
            transfer, cpu = step_seconds(name)
            data_ready = max(
                (done_at[d] for d in plan.dependencies[name]), default=0.0
            )
            host_free = heapq.heappop(hosts)
            start = max(data_ready, host_free)
            end = start + transfer + cpu
            heapq.heappush(hosts, end)
            done_at[name] = end
            total_transfer += transfer
            remaining.discard(name)
            completed.add(name)
    return WorkflowEstimate(
        makespan_seconds=max(done_at.values()),
        total_cpu_seconds=plan.total_cpu_seconds(),
        total_transfer_seconds=total_transfer,
        critical_path_seconds=critical_path,
        host_count=host_count,
        step_count=len(plan.steps),
    )


def sweep_hosts(
    plan: Plan,
    host_counts: list[int],
    input_bytes: dict[str, int] | None = None,
    bandwidth: float = DEFAULT_ANALYTIC_BANDWIDTH,
) -> dict[int, WorkflowEstimate]:
    """Estimate the plan at several concurrency levels.

    The scaling curve this produces is the planner's guide for the
    "how many hosts should this workflow get" provisioning decision.
    """
    return {
        n: estimate_plan(plan, n, input_bytes=input_bytes, bandwidth=bandwidth)
        for n in host_counts
    }
