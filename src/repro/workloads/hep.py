"""The Chimera-0 high-energy-physics challenge workload (§6).

"We were able to create Chimera database definitions for a high energy
physics collision event simulation application that consisted of four
separate program executions with intermediate and final results
passing between the stages as files.  For the last two stages the
files were in fact object-oriented database files from a commercial
OODBMS product."

The four stages are the classic HEP chain:

1. ``hepevt-gen`` — event generation (pythia-like): produces raw
   collision events from a seed;
2. ``hepevt-sim`` — detector simulation (geant-like): smears each
   event through a toy detector;
3. ``hepevt-reco`` — reconstruction: recovers physics quantities,
   writing an *object container* (our toy OODBMS stand-in);
4. ``hepevt-ana`` — analysis: applies a cut and produces a histogram.

All four have real Python bodies (registered via
:func:`register_bodies`) so the pipeline executes hermetically under
:class:`~repro.executor.local.LocalExecutor` with genuine file
contents, digests and invocation records.  The interactive
ATLAS/CMS-style analysis extension (cut-sets and per-histogram-point
lineage over multi-modal data) lives in :func:`define_analysis_chain`.
"""

from __future__ import annotations

import json
import random

from repro.catalog.base import VirtualDataCatalog
from repro.executor.local import LocalExecutor, RunContext

#: Declared cost hints (cpu seconds per simulated event) used by the
#: estimator before any history exists; loosely scaled to the era.
STAGE_COSTS = {
    "hepevt-gen": 0.002,
    "hepevt-sim": 0.02,
    "hepevt-reco": 0.008,
    "hepevt-ana": 0.001,
}

HEP_VDL = """
TR hepevt-gen( output events, none seed="1", none nevents="100" ) {
  argument = "-seed "${none:seed}" -n "${none:nevents};
  argument stdout = ${output:events};
  exec = "py:hepevt-gen";
}
TR hepevt-sim( output hits, input events, none smear="0.05" ) {
  argument = "-smear "${none:smear};
  argument stdin = ${input:events};
  argument stdout = ${output:hits};
  exec = "py:hepevt-sim";
}
TR hepevt-reco( output objects, input hits ) {
  argument stdin = ${input:hits};
  argument stdout = ${output:objects};
  exec = "py:hepevt-reco";
}
TR hepevt-ana( output histogram, input objects, none ptcut="20" ) {
  argument = "-ptcut "${none:ptcut};
  argument stdin = ${input:objects};
  argument stdout = ${output:histogram};
  exec = "py:hepevt-ana";
}
TR hepevt-chain( none seed="1", none nevents="100", none ptcut="20",
                 inout events=@{inout:"chain.events":""},
                 inout hits=@{inout:"chain.hits":""},
                 inout objects=@{inout:"chain.objects":""},
                 output histogram ) {
  hepevt-gen( events=${output:events}, seed=${seed}, nevents=${nevents} );
  hepevt-sim( hits=${output:hits}, events=${input:events} );
  hepevt-reco( objects=${output:objects}, hits=${input:hits} );
  hepevt-ana( histogram=${histogram}, objects=${input:objects}, ptcut=${ptcut} );
}
"""


def define_transformations(catalog: VirtualDataCatalog) -> None:
    """Register the four stage TRs and the 4-stage compound chain."""
    if catalog.has_transformation("hepevt-gen"):
        return
    catalog.define(HEP_VDL)
    for name, cost in STAGE_COSTS.items():
        tr = catalog.get_transformation(name)
        tr.attributes.set("cost.cpu_seconds", cost * 100)
        catalog.add_transformation(tr, replace=True)


def define_run(
    catalog: VirtualDataCatalog,
    run_id: str,
    seed: int = 1,
    events: int = 100,
    ptcut: float = 20.0,
) -> str:
    """Declare the 4-derivation chain for one run; returns the final
    histogram dataset name."""
    define_transformations(catalog)
    names = {
        "events": f"{run_id}.events",
        "hits": f"{run_id}.hits",
        "objects": f"{run_id}.objects",
        "histogram": f"{run_id}.hist",
    }
    catalog.define(
        f"""
DV {run_id}.gen->hepevt-gen(
    events=@{{output:"{names['events']}"}}, seed="{seed}", nevents="{events}" );
DV {run_id}.sim->hepevt-sim(
    hits=@{{output:"{names['hits']}"}}, events=@{{input:"{names['events']}"}} );
DV {run_id}.reco->hepevt-reco(
    objects=@{{output:"{names['objects']}"}}, hits=@{{input:"{names['hits']}"}} );
DV {run_id}.ana->hepevt-ana(
    histogram=@{{output:"{names['histogram']}"}},
    objects=@{{input:"{names['objects']}"}}, ptcut="{ptcut}" );
"""
    )
    return names["histogram"]


# ---------------------------------------------------------------------------
# Real stage bodies (hermetic Python physics)
# ---------------------------------------------------------------------------


def _gen(ctx: RunContext) -> None:
    seed = int(ctx.parameters["seed"])
    nevents = int(ctx.parameters["nevents"])
    rng = random.Random(seed)
    lines = []
    for i in range(nevents):
        pt = rng.expovariate(1 / 25.0)  # transverse momentum, GeV
        eta = rng.uniform(-2.5, 2.5)
        phi = rng.uniform(0, 6.283185)
        lines.append(f"{i} {pt:.4f} {eta:.4f} {phi:.4f}")
    ctx.write_output("events", "\n".join(lines) + "\n")


def _sim(ctx: RunContext) -> None:
    smear = float(ctx.parameters["smear"])
    rng = random.Random(1234)
    out = []
    for line in ctx.read_input("events").decode().splitlines():
        i, pt, eta, phi = line.split()
        pt_s = float(pt) * (1 + rng.gauss(0, smear))
        out.append(f"{i} {max(pt_s, 0):.4f} {eta} {phi}")
    ctx.write_output("hits", "\n".join(out) + "\n")


def _reco(ctx: RunContext) -> None:
    # Writes the toy "object container": a JSON object graph, the
    # stand-in for the OODBMS files of the paper's last two stages.
    objects = {}
    roots = []
    for line in ctx.read_input("hits").decode().splitlines():
        i, pt, eta, phi = line.split()
        oid = f"trk-{i}"
        objects[oid] = {"pt": float(pt), "eta": float(eta), "phi": float(phi)}
        roots.append(oid)
    container = {"kind": "object-container", "roots": roots, "objects": objects}
    ctx.write_output("objects", json.dumps(container))


def _ana(ctx: RunContext) -> None:
    ptcut = float(ctx.parameters["ptcut"])
    container = json.loads(ctx.read_input("objects").decode())
    bins = [0] * 10
    passed = 0
    for obj in container["objects"].values():
        if obj["pt"] < ptcut:
            continue
        passed += 1
        index = min(9, int((obj["pt"] - ptcut) / 10))
        bins[index] += 1
    histogram = {"ptcut": ptcut, "passed": passed, "bins": bins}
    ctx.write_output("histogram", json.dumps(histogram))


def register_bodies(executor: LocalExecutor) -> None:
    """Bind the four stage bodies to their ``py:`` executables."""
    executor.register("py:hepevt-gen", _gen)
    executor.register("py:hepevt-sim", _sim)
    executor.register("py:hepevt-reco", _reco)
    executor.register("py:hepevt-ana", _ana)


# ---------------------------------------------------------------------------
# Interactive multi-modal analysis (§6 last paragraph)
# ---------------------------------------------------------------------------

ANALYSIS_VDL = """
TR evt-select( output cutset, input objects, none expr="pt>30" ) {
  argument = "-cut "${none:expr};
  argument stdin = ${input:objects};
  argument stdout = ${output:cutset};
  exec = "py:evt-select";
}
TR evt-hist( output point, input cutset, none bin="0" ) {
  argument = "-bin "${none:bin};
  argument stdin = ${input:cutset};
  argument stdout = ${output:point};
  exec = "py:evt-hist";
}
TR evt-combine( output graph, input a, input b ) {
  argument = ${input:a}" "${input:b};
  argument stdout = ${output:graph};
  exec = "py:evt-combine";
}
"""


def define_analysis_chain(
    catalog: VirtualDataCatalog,
    run_id: str,
    bins: tuple[str, ...] = ("0", "1"),
    expr: str = "pt>30",
) -> str:
    """The unstructured-iteration analysis: select a cut-set from a
    run's object container, derive one histogram *point* per bin, and
    combine points into the final graph.  Returns the graph dataset.

    Every point dataset has its own derivation, so
    :func:`repro.provenance.lineage.lineage_report` on a point yields
    the paper's per-data-point lineage.
    """
    if not catalog.has_transformation("evt-select"):
        catalog.define(ANALYSIS_VDL)
    define_run(catalog, run_id)  # ensure the upstream chain exists
    cutset = f"{run_id}.cuts"
    catalog.define(
        f"""
DV {run_id}.select->evt-select(
    cutset=@{{output:"{cutset}"}},
    objects=@{{input:"{run_id}.objects"}}, expr="{expr}" );
"""
    )
    points = []
    for bin_id in bins:
        point = f"{run_id}.point{bin_id}"
        catalog.define(
            f"""
DV {run_id}.hist{bin_id}->evt-hist(
    point=@{{output:"{point}"}}, cutset=@{{input:"{cutset}"}}, bin="{bin_id}" );
"""
        )
        points.append(point)
    graph = f"{run_id}.graph"
    combined = points[0]
    for i, point in enumerate(points[1:], start=1):
        out = graph if i == len(points) - 1 else f"{run_id}.partial{i}"
        catalog.define(
            f"""
DV {run_id}.comb{i}->evt-combine(
    graph=@{{output:"{out}"}}, a=@{{input:"{combined}"}}, b=@{{input:"{point}"}} );
"""
        )
        combined = out
    if len(points) == 1:
        graph = points[0]
    return graph


def _select(ctx: RunContext) -> None:
    expr = ctx.parameters["expr"]
    field, _, threshold = expr.partition(">")
    container = json.loads(ctx.read_input("objects").decode())
    kept = {
        oid: obj
        for oid, obj in container["objects"].items()
        if obj[field] > float(threshold)
    }
    ctx.write_output("cutset", json.dumps({"expr": expr, "objects": kept}))


def _hist_point(ctx: RunContext) -> None:
    bin_id = int(ctx.parameters["bin"])
    cutset = json.loads(ctx.read_input("cutset").decode())
    lo, hi = 30 + bin_id * 20, 30 + (bin_id + 1) * 20
    count = sum(1 for o in cutset["objects"].values() if lo <= o["pt"] < hi)
    ctx.write_output("point", json.dumps({"bin": bin_id, "count": count}))


def _combine(ctx: RunContext) -> None:
    a = json.loads(ctx.read_input("a").decode())
    b = json.loads(ctx.read_input("b").decode())
    points = (a["points"] if "points" in a else [a]) + (
        b["points"] if "points" in b else [b]
    )
    ctx.write_output("graph", json.dumps({"points": points}))


def register_analysis_bodies(executor: LocalExecutor) -> None:
    executor.register("py:evt-select", _select)
    executor.register("py:evt-hist", _hist_point)
    executor.register("py:evt-combine", _combine)
