"""Synthetic workloads reproducing the paper's application experience (§6)."""

from repro.workloads import canonical, hep, sdss

__all__ = ["canonical", "hep", "sdss"]
