"""The SDSS MaxBCG galaxy-cluster-search challenge workload (§6).

"We have also addressed a larger challenge problem from astrophysics,
namely the analysis of data from the Sloan Digital Sky Survey via the
application of the MaxBCG galaxy cluster detection algorithm. ...  We
created and executed dependency graphs for searching for galaxy
clusters in the entire currently available survey, creating about 5000
derivations ... using workflow DAGs with as many as several hundred
executable nodes, across a grid consisting of almost 800 hosts spread
across four sites, and using as many as 120 hosts in a single
workflow."

Following the Annis et al. structure, each sky *field* runs a 5-stage
chain — ``sdss-extract`` (field image -> galaxy table),
``sdss-brg`` (find bright red galaxies), ``sdss-bcg`` (per-candidate
cluster likelihood), ``sdss-coalesce`` (merge with neighbouring
fields' candidates), ``sdss-catalog`` (per-stripe cluster catalog) —
so 1000 fields yield ~5000 derivations.  A stripe's workflow DAG
contains several hundred nodes, matching the paper.

Two execution modes:

* **local** — :func:`register_bodies` provides a real (simplified)
  brightest-cluster finder over synthetic galaxy tables, runnable
  hermetically on small numbers of fields;
* **grid** — cost hints let the planner/simulated grid replay the
  full 5000-derivation campaign (the SDSS benchmark).
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass

from repro.catalog.base import VirtualDataCatalog
from repro.core.dataset import Dataset
from repro.core.types import DatasetType
from repro.executor.local import LocalExecutor, RunContext

SDSS_VDL = """
TR sdss-extract( output galaxies : SDSS/Simple/ASCII,
                 input field : Image-raw/Simple/Binary ) {
  argument stdin = ${input:field};
  argument stdout = ${output:galaxies};
  exec = "py:sdss-extract";
}
TR sdss-brg( output brgs, input galaxies, none maglim="17.5" ) {
  argument = "-maglim "${none:maglim};
  argument stdin = ${input:galaxies};
  argument stdout = ${output:brgs};
  exec = "py:sdss-brg";
}
TR sdss-bcg( output candidates, input brgs, input galaxies ) {
  argument = "-g "${input:galaxies};
  argument stdin = ${input:brgs};
  argument stdout = ${output:candidates};
  exec = "py:sdss-bcg";
}
TR sdss-coalesce( output merged, input center, input left, input right ) {
  argument = ${input:left}" "${input:center}" "${input:right};
  argument stdout = ${output:merged};
  exec = "py:sdss-coalesce";
}
TR sdss-catalog( output catalog, input merged ) {
  argument stdin = ${input:merged};
  argument stdout = ${output:catalog};
  exec = "py:sdss-catalog";
}
"""

#: Declared cpu-second hints per stage (era-scaled; the exact values
#: only shape relative costs in the simulated campaign).
STAGE_COSTS = {
    "sdss-extract": 12.0,
    "sdss-brg": 4.0,
    "sdss-bcg": 45.0,
    "sdss-coalesce": 6.0,
    "sdss-catalog": 9.0,
}

#: Nominal output bytes per stage (drives transfer costs on the grid).
STAGE_OUTPUT_BYTES = {
    "sdss-extract": 40_000_000,
    "sdss-brg": 2_000_000,
    "sdss-bcg": 6_000_000,
    "sdss-coalesce": 8_000_000,
    "sdss-catalog": 10_000_000,
}

#: Size of one raw field image on the grid.
FIELD_BYTES = 60_000_000


@dataclass
class SDSSCampaign:
    """Bookkeeping for one declared cluster-search campaign."""

    fields: int
    stripes: int
    derivations: int
    targets: list[str]
    field_datasets: list[str]


def define_transformations(catalog: VirtualDataCatalog) -> None:
    if catalog.has_transformation("sdss-extract"):
        return
    catalog.types.register("content", "Galaxy-table", parent="SDSS")
    catalog.types.register("content", "Cluster-catalog", parent="SDSS")
    catalog.define(SDSS_VDL)
    for name, cost in STAGE_COSTS.items():
        tr = catalog.get_transformation(name)
        tr.attributes.set("cost.cpu_seconds", cost)
        tr.attributes.set("cost.output_bytes", STAGE_OUTPUT_BYTES[name])
        catalog.add_transformation(tr, replace=True)


def define_campaign(
    catalog: VirtualDataCatalog,
    fields: int = 1000,
    fields_per_stripe: int = 100,
) -> SDSSCampaign:
    """Declare the full cluster search over ``fields`` sky fields.

    Per field: extract, brg, bcg (3 derivations).  Per field, one
    coalesce with its neighbours; per stripe, one catalog derivation.
    1000 fields / 100-field stripes => 1000*4 + 1000 + 10 ≈ 5010
    derivations, the paper's "about 5000".
    """
    define_transformations(catalog)
    field_type = DatasetType(
        content="Image-raw", format="Simple", encoding="Binary"
    )
    stripes = max(1, math.ceil(fields / fields_per_stripe))
    field_datasets = []
    chunks: list[str] = []
    for f in range(fields):
        field = f"field{f:05d}"
        field_ds = f"{field}.img"
        field_datasets.append(field_ds)
        catalog.add_dataset(
            Dataset(
                name=field_ds,
                dataset_type=field_type,
                attributes={"size": FIELD_BYTES},
            ),
            replace=True,
        )
        chunks.append(
            f"""
DV {field}.extract->sdss-extract(
    galaxies=@{{output:"{field}.gal"}}, field=@{{input:"{field_ds}"}} );
DV {field}.brg->sdss-brg(
    brgs=@{{output:"{field}.brg"}}, galaxies=@{{input:"{field}.gal"}} );
DV {field}.bcg->sdss-bcg(
    candidates=@{{output:"{field}.cand"}},
    brgs=@{{input:"{field}.brg"}}, galaxies=@{{input:"{field}.gal"}} );
"""
        )
    # Neighbour coalescing: ring order within the whole survey.
    for f in range(fields):
        field = f"field{f:05d}"
        left = f"field{(f - 1) % fields:05d}"
        right = f"field{(f + 1) % fields:05d}"
        chunks.append(
            f"""
DV {field}.coalesce->sdss-coalesce(
    merged=@{{output:"{field}.merged"}},
    center=@{{input:"{field}.cand"}},
    left=@{{input:"{left}.cand"}}, right=@{{input:"{right}.cand"}} );
"""
        )
    targets = []
    for s in range(stripes):
        stripe = f"stripe{s:03d}"
        lo = s * fields_per_stripe
        hi = min(fields, lo + fields_per_stripe)
        # A stripe catalog consumes every merged field in its range;
        # expressed as a chain of pairwise catalog merges to keep TR
        # signatures fixed-arity (as real MaxBCG runs did).
        previous = f"field{lo:05d}.merged"
        for f in range(lo + 1, hi):
            out = (
                f"{stripe}.cat"
                if f == hi - 1
                else f"{stripe}.part{f:05d}"
            )
            chunks.append(
                f"""
DV {stripe}.merge{f:05d}->sdss-coalesce(
    merged=@{{output:"{out}"}},
    center=@{{input:"{previous}"}},
    left=@{{input:"field{f:05d}.merged"}},
    right=@{{input:"{previous}"}} );
"""
            )
            previous = out
        final = f"{stripe}.catalog"
        chunks.append(
            f"""
DV {stripe}.catalog->sdss-catalog(
    catalog=@{{output:"{final}"}}, merged=@{{input:"{previous}"}} );
"""
        )
        targets.append(final)
    catalog.define("".join(chunks))
    derivations = len(catalog.derivation_names())
    return SDSSCampaign(
        fields=fields,
        stripes=stripes,
        derivations=derivations,
        targets=targets,
        field_datasets=field_datasets,
    )


# ---------------------------------------------------------------------------
# Real (simplified) MaxBCG bodies for local execution
# ---------------------------------------------------------------------------


def synth_field(field_id: int, galaxies: int = 300) -> str:
    """A synthetic raw field: JSON galaxies with position/mag/colour.

    Clusters are injected around a few dense centres so the finder has
    real structure to recover; everything is seeded by ``field_id``.
    """
    rng = random.Random(field_id * 7919)
    rows = []
    # background galaxies
    for _ in range(galaxies):
        rows.append(
            {
                "ra": rng.uniform(0, 1),
                "dec": rng.uniform(0, 1),
                "mag": rng.uniform(16, 22),
                "color": rng.gauss(1.0, 0.4),
            }
        )
    # injected clusters: a bright central galaxy plus satellites
    for c in range(field_id % 3 + 1):
        ra0, dec0 = rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)
        rows.append({"ra": ra0, "dec": dec0, "mag": 16.2, "color": 1.8})
        for _ in range(15):
            rows.append(
                {
                    "ra": ra0 + rng.gauss(0, 0.01),
                    "dec": dec0 + rng.gauss(0, 0.01),
                    "mag": rng.uniform(17, 20),
                    "color": rng.gauss(1.8, 0.1),
                }
            )
    return json.dumps({"field": field_id, "galaxies": rows})


def _extract(ctx: RunContext) -> None:
    field = json.loads(ctx.read_input("field").decode())
    ctx.write_output("galaxies", json.dumps(field["galaxies"]))


def _brg(ctx: RunContext) -> None:
    maglim = float(ctx.parameters["maglim"])
    galaxies = json.loads(ctx.read_input("galaxies").decode())
    brgs = [
        g for g in galaxies if g["mag"] < maglim and g["color"] > 1.5
    ]
    ctx.write_output("brgs", json.dumps(brgs))


def _bcg(ctx: RunContext) -> None:
    brgs = json.loads(ctx.read_input("brgs").decode())
    galaxies = json.loads(ctx.read_input("galaxies").decode())
    candidates = []
    for brg in brgs:
        # likelihood ∝ number of red satellites within a radius
        satellites = [
            g
            for g in galaxies
            if abs(g["ra"] - brg["ra"]) < 0.02
            and abs(g["dec"] - brg["dec"]) < 0.02
            and g["color"] > 1.5
        ]
        if len(satellites) >= 5:
            candidates.append(
                {
                    "ra": brg["ra"],
                    "dec": brg["dec"],
                    "richness": len(satellites),
                }
            )
    ctx.write_output("candidates", json.dumps(candidates))


def _coalesce(ctx: RunContext) -> None:
    merged: list[dict] = []
    for formal in ("left", "center", "right"):
        merged.extend(json.loads(ctx.read_input(formal).decode()))
    # Deduplicate near-identical centres, keeping the richest.
    merged.sort(key=lambda c: -c["richness"])
    kept: list[dict] = []
    for cand in merged:
        if all(
            abs(cand["ra"] - k["ra"]) > 0.015
            or abs(cand["dec"] - k["dec"]) > 0.015
            for k in kept
        ):
            kept.append(cand)
    ctx.write_output("merged", json.dumps(kept))


def _catalog_stage(ctx: RunContext) -> None:
    merged = json.loads(ctx.read_input("merged").decode())
    merged.sort(key=lambda c: (-c["richness"], c["ra"]))
    ctx.write_output(
        "catalog", json.dumps({"clusters": merged, "count": len(merged)})
    )


def register_bodies(executor: LocalExecutor) -> None:
    """Bind the five MaxBCG stage bodies."""
    executor.register("py:sdss-extract", _extract)
    executor.register("py:sdss-brg", _brg)
    executor.register("py:sdss-bcg", _bcg)
    executor.register("py:sdss-coalesce", _coalesce)
    executor.register("py:sdss-catalog", _catalog_stage)


def materialize_fields(
    executor: LocalExecutor, campaign: SDSSCampaign, galaxies: int = 300
) -> None:
    """Write synthetic raw field files into the executor's sandbox."""
    for i, field_ds in enumerate(campaign.field_datasets):
        executor.path_for(field_ds).write_text(synth_field(i, galaxies))
