"""Canonical applications: synthetic dependency-graph generators (§6).

"We also created 'canonical' applications that could mimic arbitrary
argument passing conventions and file I/O behavior, and used these to
create large application dependency graphs to validate our provenance
tracking mechanism."

:func:`generate_graph` declares a layered random DAG of derivations
over canonical transformations with configurable node count, fan-in,
fan-out and depth — the CANON benchmark uses it to measure provenance
tracking at 10^3–10^4 nodes.  Each canonical transformation also has a
real body (concatenate-and-hash) so small instances run hermetically
under the local executor, validating that the *declared* graph equals
the *observed* graph.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.catalog.base import VirtualDataCatalog
from repro.core.dataset import Dataset
from repro.core.derivation import DatasetArg, Derivation
from repro.core.naming import VDPRef
from repro.executor.local import LocalExecutor, RunContext

#: The largest canonical arity we declare transformations for.
MAX_FANIN = 4


@dataclass
class CanonicalGraph:
    """Description of one generated dependency graph."""

    nodes: int
    layers: int
    source_datasets: list[str]
    sink_datasets: list[str]
    all_datasets: list[str]
    derivations: list[str]


def _canon_vdl(fanin: int) -> str:
    formals = ", ".join(f"input i{k}" for k in range(fanin))
    args = "".join(
        'argument = "-i "${input:i%d}; ' % k for k in range(fanin)
    )
    return (
        f"TR canon{fanin}( output o, {formals}, none tag=\"x\" ) {{ "
        f'argument = "-t "${{none:tag}}; {args}'
        f"argument stdout = ${{output:o}}; "
        f'exec = "py:canon{fanin}"; }}\n'
    )


def define_transformations(catalog: VirtualDataCatalog) -> None:
    """Register canonical TRs of every arity up to :data:`MAX_FANIN`."""
    if catalog.has_transformation("canon1"):
        return
    catalog.define("".join(_canon_vdl(k) for k in range(1, MAX_FANIN + 1)))
    catalog.define(
        'TR canon0( output o, none tag="x" ) { '
        'argument = "-t "${none:tag}; '
        "argument stdout = ${output:o}; "
        'exec = "py:canon0"; }\n'
    )


#: Node count above which :func:`generate_graph` defaults to the
#: direct-object emission path (the VDL round trip costs seconds at
#: 10^4 nodes and minutes at 10^5).
FAST_PATH_THRESHOLD = 5000


def generate_graph(
    catalog: VirtualDataCatalog,
    nodes: int = 100,
    layers: int = 10,
    max_fanin: int = 3,
    seed: int = 0,
    prefix: str = "cg",
    fast: bool | None = None,
) -> CanonicalGraph:
    """Declare a layered random DAG of ``nodes`` derivations.

    Layer 0 derivations are sources (``canon0``); later layers consume
    1..``max_fanin`` datasets drawn uniformly from earlier layers.
    Deterministic per ``seed`` — the same seed yields the same graph on
    both emission paths: ``fast=False`` routes every declaration
    through the VDL front end (parse, lower, validate), ``fast=True``
    registers equivalent :class:`~repro.core.derivation.Derivation`
    objects directly under a bulk batch.  ``fast=None`` picks the
    object path above :data:`FAST_PATH_THRESHOLD` nodes.
    """
    if max_fanin > MAX_FANIN:
        raise ValueError(f"max_fanin must be <= {MAX_FANIN}")
    with catalog.obs.phase("generate"):
        define_transformations(catalog)
        rng = random.Random(seed)
        per_layer = max(1, nodes // layers)
        datasets_by_layer: list[list[str]] = []
        #: Flattened datasets of all *completed* layers (avoids an
        #: O(n^2) re-flatten per node; sampling sees the identical
        #: list).
        earlier: list[str] = []
        #: (name, output, inputs, node_index) per derivation.
        specs: list[tuple[str, str, list[str], int]] = []
        node_index = 0
        for layer in range(layers):
            count = per_layer if layer < layers - 1 else nodes - node_index
            if count <= 0:
                break
            layer_datasets = []
            for _ in range(count):
                name = f"{prefix}.n{node_index:06d}"
                output = f"{name}.out"
                if layer == 0:
                    inputs: list[str] = []
                else:
                    fanin = rng.randint(1, min(max_fanin, len(earlier)))
                    inputs = rng.sample(earlier, fanin)
                specs.append((name, output, inputs, node_index))
                layer_datasets.append(output)
                node_index += 1
            datasets_by_layer.append(layer_datasets)
            earlier.extend(layer_datasets)
        if fast is None:
            fast = node_index >= FAST_PATH_THRESHOLD
        if fast:
            _emit_objects(catalog, specs)
        else:
            _emit_vdl(catalog, specs)
    consumed: set[str] = set()
    for _name, _output, inputs, _idx in specs:
        consumed.update(inputs)
    all_datasets = [ds for lds in datasets_by_layer for ds in lds]
    return CanonicalGraph(
        nodes=node_index,
        layers=len(datasets_by_layer),
        source_datasets=list(datasets_by_layer[0]),
        sink_datasets=[ds for ds in all_datasets if ds not in consumed],
        all_datasets=all_datasets,
        derivations=[name for name, _output, _inputs, _idx in specs],
    )


def _emit_vdl(
    catalog: VirtualDataCatalog,
    specs: list[tuple[str, str, list[str], int]],
) -> None:
    chunks = []
    for name, output, inputs, idx in specs:
        bindings = "".join(
            f'i{k}=@{{input:"{ds}"}}, ' for k, ds in enumerate(inputs)
        )
        chunks.append(
            f'DV {name}->canon{len(inputs)}( o=@{{output:"{output}"}}, '
            f'{bindings}tag="{idx}" );\n'
        )
    catalog.define("".join(chunks))


def _emit_objects(
    catalog: VirtualDataCatalog,
    specs: list[tuple[str, str, list[str], int]],
) -> None:
    """Register the graph as objects, bypassing the VDL front end.

    Emits the same derivations and produced-dataset records the VDL
    path yields; validation and auto-declaration are skipped because
    the generator guarantees well-formedness by construction (inputs
    are always earlier outputs, signatures match the canon TRs).
    """
    with catalog.bulk():
        for name, output, inputs, idx in specs:
            actuals: dict[str, str | DatasetArg] = {
                "o": DatasetArg(dataset=output, direction="output")
            }
            for k, ds in enumerate(inputs):
                actuals[f"i{k}"] = DatasetArg(dataset=ds, direction="input")
            actuals["tag"] = str(idx)
            dv = Derivation(
                name=name,
                transformation=VDPRef.parse(
                    f"canon{len(inputs)}", default_kind="transformation"
                ),
                actuals=actuals,
            )
            catalog.add_derivation(
                dv, validate=False, auto_declare=False
            )
            catalog.add_dataset(Dataset(name=output, producer=name))


def _canon_body(ctx: RunContext) -> None:
    """Concatenate inputs, mix in the tag, emit a digest chain."""
    hasher = hashlib.sha256()
    hasher.update(ctx.parameters["tag"].encode())
    for formal in sorted(ctx.input_paths):
        hasher.update(ctx.read_input(formal))
    ctx.write_output("o", hasher.hexdigest() + "\n")


def register_bodies(executor: LocalExecutor) -> None:
    for k in range(0, MAX_FANIN + 1):
        executor.register(f"py:canon{k}", _canon_body)
